#!/usr/bin/env python3
"""The Θ(log n) overhead curve (Theorems 1.1 + 1.2), measured.

Sweeps the party count n, simulates the 2n-round ``InputSet_n`` protocol
with the chunk-commit scheme over ε-noisy channels, and fits the measured
overhead (simulated rounds / noiseless rounds) to ``a + b·log₂ n``.  A
clearly positive slope with a good fit is the upper bound's shape; the
lower bound says no scheme can flatten it.

Run:  python examples/overhead_curve.py
"""

import math
import random

from repro import ChunkCommitSimulator, CorrelatedNoiseChannel, InputSetTask
from repro.analysis import ascii_plot, fit_log, format_table

NS = (4, 8, 16, 32)
EPSILON = 0.1
TRIALS = 3


def measure_overhead(n: int) -> float:
    task = InputSetTask(n)
    simulator = ChunkCommitSimulator()
    total = 0.0
    for trial in range(TRIALS):
        inputs = task.sample_inputs(random.Random(1000 * n + trial))
        channel = CorrelatedNoiseChannel(EPSILON, rng=2000 * n + trial)
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )
        total += result.metadata["report"].overhead
    return total / TRIALS


def main() -> None:
    overheads = {n: measure_overhead(n) for n in NS}
    rows = [
        [n, 2 * n, f"{overheads[n]:.1f}", f"{math.log2(n):.1f}"]
        for n in NS
    ]
    print(format_table(
        ["n", "noiseless rounds", "overhead", "log2 n"],
        rows,
        title=f"Chunk-commit overhead vs n (epsilon = {EPSILON})",
    ))
    fit = fit_log(list(NS), [overheads[n] for n in NS])
    print(f"\nfit: overhead = {fit.intercept:.1f} + {fit.slope:.1f} * log2(n)"
          f"   (R^2 = {fit.r_squared:.3f})")
    print()
    print(ascii_plot(
        list(NS),
        [overheads[n] for n in NS],
        title="overhead vs log2(n) — a straight line is Θ(log n)",
        x_label="n",
        y_label="overhead",
        log_x=True,
        width=48,
        height=10,
    ))
    print("\npositive slope + high R^2 = the Θ(log n) overhead of "
          "Theorems 1.1/1.2.")


if __name__ == "__main__":
    main()
