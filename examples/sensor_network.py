#!/usr/bin/env python3
"""Leader election in a noisy wireless sensor network.

The beeping model is the minimal abstraction of a wireless network: a node
can emit a burst of energy or listen, and carrier sensing tells everyone
whether *some* node transmitted.  This example runs the classic bit-by-bit
leader election (maximum identifier wins) over increasingly noisy channels
and compares three deployments:

* raw protocol (no protection),
* repetition simulation (footnote 1),
* the paper's chunk-commit simulation (Theorem 1.2),

including the direction-of-noise asymmetry from §1.1: suppression-only
noise (lost beeps) is far more benign for the raw protocol than phantom
beeps, and admits the constant-overhead rewind scheme.

Run:  python examples/sensor_network.py
"""

import random

from repro import (
    ChunkCommitSimulator,
    CorrelatedNoiseChannel,
    MaxIdTask,
    OneSidedNoiseChannel,
    RepetitionSimulator,
    RewindSimulator,
    SuppressionNoiseChannel,
    run_protocol,
)
from repro.analysis import estimate_success, format_table

NODES = 8
ID_BITS = 8
TRIALS = 30


def raw_executor(task, channel_factory):
    def run(inputs, trial_seed):
        return run_protocol(
            task.noiseless_protocol(), inputs, channel_factory(trial_seed)
        )

    return run


def simulated_executor(task, simulator, channel_factory):
    def run(inputs, trial_seed):
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel_factory(trial_seed)
        )

    return run


def main() -> None:
    task = MaxIdTask(NODES, id_bits=ID_BITS)
    demo_inputs = task.sample_inputs(random.Random(0))
    print(f"{NODES} sensor nodes, ids = {sorted(demo_inputs)}; "
          f"electing the max ({max(demo_inputs)}) in {ID_BITS} rounds\n")

    rows = []
    for epsilon in (0.05, 0.15, 0.25):
        raw = estimate_success(
            task,
            raw_executor(
                task, lambda s, e=epsilon: CorrelatedNoiseChannel(e, rng=s)
            ),
            trials=TRIALS,
            seed=1,
        )
        repetition = estimate_success(
            task,
            simulated_executor(
                task,
                RepetitionSimulator(),
                lambda s, e=epsilon: CorrelatedNoiseChannel(e, rng=s),
            ),
            trials=TRIALS,
            seed=2,
        )
        chunked = estimate_success(
            task,
            simulated_executor(
                task,
                ChunkCommitSimulator(),
                lambda s, e=epsilon: CorrelatedNoiseChannel(e, rng=s),
            ),
            trials=TRIALS,
            seed=3,
        )
        rows.append(
            [
                epsilon,
                f"{raw.success.value:.2f}",
                f"{repetition.success.value:.2f} (x{repetition.mean_overhead:.0f})",
                f"{chunked.success.value:.2f} (x{chunked.mean_overhead:.0f})",
            ]
        )
    print(format_table(
        ["epsilon", "raw", "repetition (overhead)", "chunk-commit (overhead)"],
        rows,
        title="Two-sided noise: success probability electing the right leader",
    ))

    # The asymmetry of §1.1: suppression noise vs phantom-beep noise.
    print("\nDirection of noise (ε = 0.2):")
    rows = []
    for label, factory in (
        ("1->0 (lost beeps)", lambda s: SuppressionNoiseChannel(0.2, rng=s)),
        ("0->1 (phantom beeps)", lambda s: OneSidedNoiseChannel(0.2, rng=s)),
    ):
        raw = estimate_success(
            task, raw_executor(task, factory), trials=TRIALS, seed=4
        )
        rewind = estimate_success(
            task,
            simulated_executor(task, RewindSimulator(), factory),
            trials=TRIALS,
            seed=5,
        )
        rows.append(
            [
                label,
                f"{raw.success.value:.2f}",
                f"{rewind.success.value:.2f} (x{rewind.mean_overhead:.0f})",
            ]
        )
    print(format_table(
        ["noise direction", "raw", "rewind scheme (overhead)"],
        rows,
    ))
    print("\nLost beeps are self-detecting (the victim knows) — the "
          "constant-overhead rewind scheme fixes them.  Phantom beeps "
          "defeat it; they need the owners machinery (chunk-commit), and "
          "Theorem 1.1 shows the Θ(log n) premium is then unavoidable.")


if __name__ == "__main__":
    main()
