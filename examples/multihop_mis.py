#!/usr/bin/env python3
"""Beeping a maximal independent set on a multi-hop network.

The paper's single-hop channel is the complete-graph case of the beeping
*network* model, whose flagship algorithm — electing a maximal independent
set with nothing but beeps — is the biological-computation result the
paper's introduction cites ([AAB⁺11/13]: the fly's sensory bristles solve
MIS).  This example:

1. runs the Luby-style MIS election on a ring, a grid and a clique;
2. draws the elected set on the grid;
3. shows what per-node noise does to it — and why noise resilience for
   *multi-hop* beeping is the open frontier (the paper's machinery needs
   the shared transcript of the single-hop correlated model).

Run:  python examples/multihop_mis.py
"""

import random

from repro.core import run_protocol
from repro.network import MISTask, complete, grid, ring

TRIALS = 40


def success_rate(task, epsilon, seed_base=0):
    wins = 0
    for trial in range(TRIALS):
        inputs = task.sample_inputs(random.Random(seed_base + trial))
        result = run_protocol(
            task.noiseless_protocol(),
            inputs,
            task.channel(epsilon=epsilon, rng=seed_base + trial),
        )
        wins += task.is_correct(inputs, result.outputs)
    return wins / TRIALS


def draw_grid(rows, columns, decisions):
    lines = []
    for row in range(rows):
        cells = []
        for column in range(columns):
            decided = decisions[row * columns + column]
            cells.append("●" if decided else "·")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def main() -> None:
    print("Maximal independent set by beeps (2 rounds per phase):\n")
    for name, adjacency in (
        ("ring of 12", ring(12)),
        ("4x5 grid", grid(4, 5)),
        ("clique of 8", complete(8)),
    ):
        task = MISTask(adjacency)
        clean = success_rate(task, epsilon=0.0)
        noisy = success_rate(task, epsilon=0.05, seed_base=1000)
        print(f"{name:12}  phases={task.phases:3}  "
              f"noiseless success={clean:.2f}   "
              f"per-node eps=0.05 success={noisy:.2f}")

    # Draw one elected set on the grid.
    rows, columns = 4, 5
    task = MISTask(grid(rows, columns))
    inputs = task.sample_inputs(random.Random(7))
    result = run_protocol(
        task.noiseless_protocol(), inputs, task.channel()
    )
    print(f"\nan elected MIS on the {rows}x{columns} grid "
          f"(● in set, · dominated):\n")
    print(draw_grid(rows, columns, result.outputs))
    print("\nNoise wrecks the election (phantom beeps suppress winners and")
    print("dominate innocent nodes) — and the paper's noise-resilient")
    print("simulation needs the single-hop shared transcript, so multi-hop")
    print("interactive coding remains the open frontier its related-work")
    print("section points to ([CHHZ17, EKS19]).")


if __name__ == "__main__":
    main()
