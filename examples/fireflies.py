#!/usr/bin/env python3
"""Firefly flash synchronisation over a noisy beeping channel.

The beeping model's biological motivation (paper §1): fireflies react to
flashes of nearby fireflies, cells to secreted chemical markers.  This
example builds a simple *phase synchronisation* protocol in the beeping
model — every firefly has a private flash phase and all must converge on a
common one — and shows that

* it works perfectly over the noiseless channel;
* ambient noise (phantom flashes) desynchronises the swarm;
* the paper's chunk-commit simulation restores synchrony at a Θ(log n)
  round cost.

Protocol ("follow the first flash"): phases live on a cycle of length P.
The swarm runs P rounds; a firefly whose phase puts its flash at round m
beeps in round m, *unless* it already heard an earlier flash — in which
case it adopts that flash's phase (snaps to the earliest flasher).  The
transcript's first 1 is therefore the agreed phase; the protocol is
adaptive (beeps depend on what was heard), exercising the simulator's
replay machinery.

Run:  python examples/fireflies.py
"""

import random
from typing import Sequence

from repro import (
    ChunkCommitSimulator,
    CorrelatedNoiseChannel,
    FunctionalProtocol,
    NoiselessChannel,
    Protocol,
    run_protocol,
)

PHASE_CYCLE = 12  # length of the flash cycle (rounds)
SWARM = 10  # number of fireflies
NOISE = 0.15  # probability of a phantom/suppressed flash per round


def firefly_protocol(n_fireflies: int, cycle: int) -> Protocol:
    """The follow-the-first-flash synchronisation protocol."""

    def broadcast(_i: int, phase: int, prefix: Sequence[int]) -> int:
        heard = [m for m, bit in enumerate(prefix) if bit == 1]
        if heard:
            return 0  # synchronised to the first flash; stay silent
        return 1 if len(prefix) == phase else 0

    def output(_i: int, phase: int, received: Sequence[int]) -> int:
        heard = [m for m, bit in enumerate(received) if bit == 1]
        return heard[0] if heard else phase

    return FunctionalProtocol(
        n_parties=n_fireflies,
        length=cycle,
        broadcast=broadcast,
        output=output,
    )


def synchronised_to_leader(outputs: Sequence[int], phases: Sequence[int]) -> bool:
    """Success: the whole swarm locked onto the true earliest flash.

    Under *correlated* noise the swarm always agrees (everyone hears the
    same phantom), so mere agreement is trivial — the failure mode is the
    whole swarm following a phantom flash that precedes every real one, or
    missing the leader's flash.  That is exactly §1.2's observation that
    correlated noise keeps transcripts shared while corrupting them.
    """
    return all(output == min(phases) for output in outputs)


def main() -> None:
    rng = random.Random(7)
    phases = [rng.randrange(PHASE_CYCLE) for _ in range(SWARM)]
    protocol = firefly_protocol(SWARM, PHASE_CYCLE)
    print(f"initial phases: {phases}  (earliest flash at {min(phases)})")

    # Noiseless: everyone locks onto the earliest flash.
    clean = run_protocol(protocol, phases, NoiselessChannel())
    print(f"\nnoiseless: phases -> {clean.outputs} "
          f"(locked to leader = "
          f"{synchronised_to_leader(clean.outputs, phases)})")

    # Noisy: a phantom flash before the true earliest one hijacks the
    # whole swarm (views stay shared under correlated noise, so they all
    # follow the same phantom together).
    trials = 200
    hijacked = 0
    for trial in range(trials):
        channel = CorrelatedNoiseChannel(NOISE, rng=trial)
        noisy = run_protocol(protocol, phases, channel)
        hijacked += 0 if synchronised_to_leader(noisy.outputs, phases) else 1
    print(f"\nunprotected over ε={NOISE} noise: swarm followed a phantom "
          f"flash in {hijacked}/{trials} trials")

    # Simulated: the chunk-commit scheme restores the true leader.
    simulator = ChunkCommitSimulator()
    sim_hijacked = 0
    sim_trials = 40
    rounds = 0
    for trial in range(sim_trials):
        channel = CorrelatedNoiseChannel(NOISE, rng=10_000 + trial)
        result = simulator.simulate(protocol, phases, channel)
        sim_hijacked += (
            0 if synchronised_to_leader(result.outputs, phases) else 1
        )
        rounds = result.rounds
    print(f"chunk-commit simulation: phantom-hijacked in "
          f"{sim_hijacked}/{sim_trials} trials "
          f"({rounds} rounds vs {PHASE_CYCLE} noiseless — "
          f"the Θ(log n) insurance premium)")


if __name__ == "__main__":
    main()
