#!/usr/bin/env python3
"""The lower-bound machinery (Appendix C) on an exactly-solvable instance.

For small n the package enumerates the *entire* joint distribution of
inputs and transcripts of the ``InputSet_n`` protocol under one-sided
ε = 1/3 noise, and computes the exact objects of the proof of Theorem C.1:

* feasible sets S^i(π) and good players G(x, π);
* the progress measure ζ(x, π) and its conditional expectation E[ζ | 𝒢];
* the Theorem C.2 pointwise cap and the Theorem C.3 correctness floor;
* the protocol's exact success probability.

It then shows the paper's squeeze: hardening the protocol by repetition
buys correctness only by growing T — and the C.2 cap, which is what an
Ω(log n) overhead means.

Run:  python examples/lower_bound_demo.py
"""

from repro import NoiseModel
from repro.analysis import format_table
from repro.lowerbound import LowerBoundAnalyzer, theory
from repro.lowerbound.feasible import feasible_set
from repro.tasks.input_set import input_set_formal_protocol

NOISE = NoiseModel.one_sided(1.0 / 3.0)


def feasible_set_demo() -> None:
    protocol = input_set_formal_protocol(3)
    print("Feasible sets after a received prefix (n = 3, universe [6]):")
    for prefix in [(), (0,), (0, 1, 0)]:
        feasible = feasible_set(protocol, 0, prefix)
        print(f"  pi = {prefix!s:12} ->  S^0(pi) = {feasible}")
    print("  (every received 0 removes one candidate value: under "
          "one-sided noise a 0 proves nobody beeped)\n")


def zeta_squeeze_demo() -> None:
    n = 2
    rows = []
    for repetitions in (1, 2, 3):
        protocol = input_set_formal_protocol(
            n, repetitions=repetitions, decision="unanimous"
        )
        analyzer = LowerBoundAnalyzer(protocol, NOISE)
        rounds = protocol.length()
        rows.append(
            [
                repetitions,
                rounds,
                f"{analyzer.correctness_probability(lambda x: frozenset(x)):.3f}",
                f"{analyzer.max_zeta_in_good():.3f}",
                f"{theory.c2_zeta_bound(n, rounds):.3g}",
            ]
        )
    print(format_table(
        ["reps", "rounds T", "Pr[correct]", "max ζ on 𝒢", "C.2 cap"],
        rows,
        title=f"Exact ζ analysis, n = {n}, one-sided ε = 1/3",
    ))
    print("  Correctness improves only as T grows; ζ stays below the C.2 "
          "cap\n  (which itself grows as 3^(4T/n)) — exactly the squeeze "
          "in the proof.\n")


def asymptotic_contradiction_demo() -> None:
    rows = []
    for n in (10**4, 10**6, 10**8):
        crossover = theory.zeta_crossover_rounds(n)
        rows.append(
            [
                f"{n:.0e}",
                f"{theory.c3_zeta_requirement(n):.2e}",
                f"{crossover:,.0f}",
                f"{crossover / n:.2f}",
                f"{theory.c1_round_threshold(n):,.0f}",
            ]
        )
    print(format_table(
        ["n", "C.3 floor n^-3/4", "C.2/C.3 crossover T", "T/n",
         "paper threshold n·log n/1000"],
        rows,
        title="Where the theorems collide (asymptotics)",
    ))
    print("  Below the crossover no protocol can be correct: T/n grows "
          "like log n —\n  the Ω(log n) overhead of Theorem 1.1.")


def main() -> None:
    feasible_set_demo()
    zeta_squeeze_demo()
    asymptotic_contradiction_demo()


if __name__ == "__main__":
    main()
