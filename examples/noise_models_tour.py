#!/usr/bin/env python3
"""A tour of every noise model in the package.

One fixed experiment — the 2n-round ``InputSet_n`` protocol, raw and under
the chunk-commit simulation — run over each channel the paper discusses
(plus the engineering extensions), with the key statistic per channel.
This is the fastest way to *see* the model zoo:

* correlated noise corrupts but keeps everyone agreeing (§1.2);
* independent noise splits the parties' views;
* one-sided up-noise fabricates set members, suppression erases them;
* the A.1.2 reduction channel behaves exactly like two-sided 1/4;
* bursty noise concentrates the damage;
* a budgeted adversary aims it.

Run:  python examples/noise_models_tour.py
"""

import random

from repro import (
    BudgetedAdversaryChannel,
    BurstNoiseChannel,
    ChunkCommitSimulator,
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    NoiseModel,
    OneSidedNoiseChannel,
    SharedFlipReductionChannel,
    SuppressionNoiseChannel,
    run_protocol,
)
from repro.analysis import format_table
from repro.tasks import InputSetTask

N = 6
EPSILON = 0.2
TRIALS = 60


def channel_zoo():
    return [
        ("noiseless", lambda s: NoiselessChannel(), None),
        (
            "correlated 0.2",
            lambda s: CorrelatedNoiseChannel(EPSILON, rng=s),
            NoiseModel.two_sided(EPSILON),
        ),
        (
            "independent 0.2",
            lambda s: IndependentNoiseChannel(EPSILON, rng=s),
            None,  # chunk simulator needs a shared transcript
        ),
        (
            "one-sided 0.2 (0->1)",
            lambda s: OneSidedNoiseChannel(EPSILON, rng=s),
            NoiseModel.one_sided(EPSILON),
        ),
        (
            "suppression 0.2 (1->0)",
            lambda s: SuppressionNoiseChannel(EPSILON, rng=s),
            NoiseModel.suppression(EPSILON),
        ),
        (
            "A.1.2 reduction (~1/4)",
            lambda s: SharedFlipReductionChannel(rng=s),
            None,  # inferred automatically
        ),
        (
            "burst avg 0.2, len 8",
            lambda s: BurstNoiseChannel.matched_to(EPSILON, 8, rng=s),
            None,
        ),
        (
            "adversary, 3 flips",
            lambda s: BudgetedAdversaryChannel(budget=3),
            NoiseModel.two_sided(EPSILON),
        ),
    ]


def main() -> None:
    task = InputSetTask(N)
    rows = []
    for label, factory, noise_model in channel_zoo():
        raw_correct = 0
        raw_agree = 0
        for trial in range(TRIALS):
            inputs = task.sample_inputs(random.Random(trial))
            result = run_protocol(
                task.noiseless_protocol(), inputs, factory(trial)
            )
            raw_agree += result.outputs_agree()
            raw_correct += task.is_correct(inputs, result.outputs)

        if label.startswith("independent"):
            simulated = "n/a (needs shared transcript)"
        else:
            simulator = ChunkCommitSimulator(noise_model=noise_model)
            wins = 0
            sim_trials = 12
            for trial in range(sim_trials):
                inputs = task.sample_inputs(random.Random(trial))
                result = simulator.simulate(
                    task.noiseless_protocol(), inputs, factory(100 + trial)
                )
                wins += task.is_correct(inputs, result.outputs)
            simulated = f"{wins / sim_trials:.2f}"
        rows.append(
            [
                label,
                f"{raw_agree / TRIALS:.2f}",
                f"{raw_correct / TRIALS:.2f}",
                simulated,
            ]
        )
    print(format_table(
        ["channel", "raw agree", "raw correct", "chunk-sim correct"],
        rows,
        title=f"InputSet_{N} across the noise-model zoo",
    ))
    print("\nNote the §1.2 signature: correlated noise keeps agreement at")
    print("1.00 while being mostly wrong; independent noise destroys even")
    print("agreement.  The chunk-commit simulation restores correctness on")
    print("every correlated channel — including the adversary.")


if __name__ == "__main__":
    main()
