#!/usr/bin/env python3
"""Quickstart: the noisy beeping model in five minutes.

Walks through the package's central objects:

1. the beeping channel (noiseless and ε-noisy);
2. a protocol — the paper's ``InputSet_n`` hard instance;
3. what noise does to an unprotected protocol;
4. the paper's noise-resilient simulation (Theorem 1.2) fixing it.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    ChunkCommitSimulator,
    CorrelatedNoiseChannel,
    InputSetTask,
    NoiselessChannel,
    RepetitionSimulator,
    run_protocol,
)


def main() -> None:
    rng = random.Random(2020)  # PODC 2020

    # ------------------------------------------------------------------
    # 1. The task: every party holds a number in [2n]; all must learn the
    #    set of numbers held (InputSet_n, Appendix A.2 of the paper).
    # ------------------------------------------------------------------
    task = InputSetTask(n_parties=8)
    inputs = task.sample_inputs(rng)
    print(f"inputs  x = {inputs}")
    print(f"target L(x) = {sorted(task.reference_output(inputs))}")

    # ------------------------------------------------------------------
    # 2. The noiseless beeping protocol: in round m, party i beeps iff
    #    x^i = m.  The transcript is the indicator vector of L(x).
    # ------------------------------------------------------------------
    protocol = task.noiseless_protocol()
    clean = run_protocol(protocol, inputs, NoiselessChannel())
    print(f"\nnoiseless run: {clean.rounds} rounds, "
          f"output correct = {task.is_correct(inputs, clean.outputs)}")

    # ------------------------------------------------------------------
    # 3. The same protocol over a noisy channel fails: each round's OR is
    #    flipped with probability ε, and all parties hear the flip.
    # ------------------------------------------------------------------
    noisy_channel = CorrelatedNoiseChannel(epsilon=0.15, rng=rng.getrandbits(32))
    noisy = run_protocol(protocol, inputs, noisy_channel)
    print(f"\nunprotected over ε=0.15 noise: "
          f"correct = {task.is_correct(inputs, noisy.outputs)} "
          f"(noise hit rounds {list(noisy.transcript.noise_positions())})")

    # ------------------------------------------------------------------
    # 4a. Footnote-1 fix: repeat every round Θ(log n) times, majority-vote.
    # ------------------------------------------------------------------
    repetition = RepetitionSimulator().simulate(
        protocol, inputs, CorrelatedNoiseChannel(0.15, rng=rng.getrandbits(32))
    )
    report = repetition.metadata["report"]
    print(f"\nrepetition simulator: correct = "
          f"{task.is_correct(inputs, repetition.outputs)}, "
          f"{repetition.rounds} rounds "
          f"(overhead ×{report.overhead:.1f}, r = {report.extra['repetitions']})")

    # ------------------------------------------------------------------
    # 4b. The paper's scheme (Theorem 1.2): chunked simulation with the
    #     finding-owners phase, so even 0→1 flips become verifiable, and
    #     rewind-if-error repair.
    # ------------------------------------------------------------------
    chunked = ChunkCommitSimulator().simulate(
        protocol, inputs, CorrelatedNoiseChannel(0.15, rng=rng.getrandbits(32))
    )
    report = chunked.metadata["report"]
    print(f"chunk-commit simulator: correct = "
          f"{task.is_correct(inputs, chunked.outputs)}, "
          f"{chunked.rounds} rounds "
          f"(overhead ×{report.overhead:.1f}, "
          f"{report.chunk_commits}/{report.chunk_attempts} chunks committed)")

    print("\nBoth schemes pay a Θ(log n) factor — Theorem 1.1 proves some "
          "such factor is unavoidable.")


if __name__ == "__main__":
    main()
