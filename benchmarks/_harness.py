"""Shared plumbing for the benchmark harness.

Each experiment Ek (see DESIGN.md §3) is a pytest-benchmark test that

1. runs its measurement sweep inside ``benchmark.pedantic`` (one round —
   the sweeps are Monte-Carlo aggregates, not microbenchmarks);
2. renders its result rows with :func:`repro.analysis.format_table`;
3. calls :func:`emit` to print the table and persist it under
   ``benchmarks/results/<id>.txt`` — the artifacts EXPERIMENTS.md quotes;
4. asserts the paper-predicted *shape* (slopes, crossovers, who wins).

Layout of ``benchmarks/results/`` (everything lives flat in this one
directory; nothing here is read back by the package at runtime):

* ``eN.txt`` — one rendered result table per experiment, written by
  :func:`emit`; quoted verbatim in EXPERIMENTS.md.
* ``BENCH_engine.json`` — fast-path vs seed-loop engine throughput
  (``bench_micro.py``), with the frozen legacy loop as drift anchor.
* ``BENCH_simulation.json`` — scalar token vs dense simulation
  throughput (``bench_micro.py --simulation``), dense path as anchor.
* ``BENCH_vectorized.json`` — trial-batched vectorized backend vs the
  scalar token engine (``bench_micro.py --vectorized``), token path as
  anchor.
* ``BENCH_sweep_cache.json`` — cold/warm sweep-service rates, written by
  CI's sweep-service smoke job.

The ``BENCH_*.json`` files share one schema convention: a ``results``
list of per-config entries, each carrying the guarded rate, an anchor
rate measured in the same process, and their ratio.  Regression floors
(``--compare``/``--tolerance``) are drift-normalized — scaled by the
anchor's measured/reference ratio, clamped to at most 1 — so a slow CI
machine lowers the floor but a change that slows only the guarded path
does not.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print a result block and persist it to ``benchmarks/results``."""
    banner = f"\n=== {experiment_id} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id.lower().replace(' ', '_')}.txt"
    path.write_text(text + "\n", encoding="utf-8")


def workers_from_env() -> int:
    """Trial-runner workers for the benchmark session.

    ``REPRO_WORKERS=N`` fans every experiment's Monte-Carlo sweeps out
    over an N-worker process pool.  Results (and hence every persisted
    table) are bitwise identical to a serial run — the per-trial seeding
    contract in :mod:`repro.parallel` guarantees it — so this is purely a
    wall-clock knob.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def runner_from_env():
    """A :class:`repro.parallel.TrialRunner` honouring ``REPRO_WORKERS``."""
    from repro.parallel import make_runner

    return make_runner(workers_from_env())
