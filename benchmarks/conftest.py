"""Benchmark-suite configuration.

The benchmarks are Monte-Carlo experiment harnesses, not microbenchmarks:
each runs once per session (``pedantic`` with one round) and its wall time
is reported by pytest-benchmark for the record.
"""
