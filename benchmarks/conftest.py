"""Benchmark-suite configuration.

The benchmarks are Monte-Carlo experiment harnesses, not microbenchmarks:
each runs once per session (``pedantic`` with one round) and its wall time
is reported by pytest-benchmark for the record.
"""

import pytest

from _harness import runner_from_env


@pytest.fixture(scope="session", autouse=True)
def _trial_runner():
    """Install the session-wide trial runner (``REPRO_WORKERS=N``).

    Experiments whose executors are picklable fan their sweeps out over
    one shared process pool; everything else transparently stays serial.
    Either way the persisted result tables are bitwise identical.
    """
    from repro.parallel import use_runner

    runner = runner_from_env()
    try:
        with use_runner(runner):
            yield runner
    finally:
        runner.close()
