"""E6 — Lemmas B.8+C.5: good players abound.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e06_good_players`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e6_good_players(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E6"), rounds=1, iterations=1
    )
    emit("E6", result.table)
    result.raise_on_failure()
