"""E11 — Energy (beeps/party) cost of noise resilience.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e11_energy`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e11_energy_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E11"), rounds=1, iterations=1
    )
    emit("E11", result.table)
    result.raise_on_failure()
