"""E8 — Rewind amortisation over long protocols + chunk ablation.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e08_long_protocols`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e8_long_protocols(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E8"), rounds=1, iterations=1
    )
    emit("E8", result.table)
    result.raise_on_failure()
