"""E3 — Section 1.1 asymmetry: 1->0 constant vs 0->1 log overhead.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e03_asymmetry`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e3_asymmetry(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E3"), rounds=1, iterations=1
    )
    emit("E3", result.table)
    result.raise_on_failure()
