"""E5 — Theorems C.2+C.3: the exact zeta squeeze.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e05_zeta`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e5_zeta_squeeze(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E5"), rounds=1, iterations=1
    )
    emit("E5", result.table)
    result.raise_on_failure()
