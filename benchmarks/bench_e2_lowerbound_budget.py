"""E2 — Theorem 1.1 shape: noisy InputSet needs n*log n rounds.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e02_budget`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e2_budget_grows_superlinearly(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E2"), rounds=1, iterations=1
    )
    emit("E2", result.table)
    result.raise_on_failure()
