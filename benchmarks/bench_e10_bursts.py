"""E10 — Bursty 'global interference' noise robustness.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e10_bursts`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e10_burst_robustness(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E10"), rounds=1, iterations=1
    )
    emit("E10", result.table)
    result.raise_on_failure()
