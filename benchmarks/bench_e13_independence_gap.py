"""E13 — Independent vs correlated noise for naive repetition.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e13_independence`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e13_independence_gap(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E13"), rounds=1, iterations=1
    )
    emit("E13", result.table)
    result.raise_on_failure()
