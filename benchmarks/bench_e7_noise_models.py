"""E7 — Section 1.2: correlated vs independent noise + A.1.2.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e07_noise_models`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e7_noise_models(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E7"), rounds=1, iterations=1
    )
    emit("E7", result.table)
    result.raise_on_failure()
