"""E1 — Theorem 1.2: Theta(log n) simulation overhead.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e01_overhead`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e1_overhead_is_logarithmic(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E1"), rounds=1, iterations=1
    )
    emit("E1", result.table)
    result.raise_on_failure()
