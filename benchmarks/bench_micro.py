"""Microbenchmarks of the hot paths (engine, channel, decoder, codebook).

Unlike E1–E12 (Monte-Carlo experiment harnesses run once), these are true
microbenchmarks: pytest-benchmark repeats them many times and reports
statistics.  They guard the wall-clock budget of the experiment suite —
the engine executes tens of thousands of rounds per simulation, so a
regression here multiplies through every experiment.
"""

from __future__ import annotations

import os
import random
import time

from repro.analysis import estimate_success
from repro.channels import CorrelatedNoiseChannel, NoiselessChannel
from repro.coding import GreedyRandomCode, MLDecoder
from repro.core import run_protocol
from repro.core.formal import NoiseModel
from repro.parallel import (
    ChannelSpec,
    ProcessPoolRunner,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.tasks import InputSetTask
from repro.simulation import ChunkCommitSimulator

N = 16


def test_engine_throughput(benchmark):
    """Rounds/second of the lock-step engine on a 16-party protocol."""
    task = InputSetTask(N)
    inputs = task.sample_inputs(random.Random(0))
    protocol = task.noiseless_protocol()
    channel = NoiselessChannel()

    def run():
        return run_protocol(protocol, inputs, channel, record_sent=False)

    result = benchmark(run)
    assert result.rounds == 2 * N


def test_noisy_channel_transmit(benchmark):
    """Cost of one correlated-noise transmission."""
    channel = CorrelatedNoiseChannel(0.1, rng=0)
    bits = (0,) * N

    def transmit():
        return channel.transmit(bits)

    outcome = benchmark(transmit)
    assert len(outcome.received) == N


def test_ml_decode(benchmark):
    """ML decoding of one owners-phase codeword."""
    code = GreedyRandomCode(N + 2, 64, seed=0)
    decoder = MLDecoder(code, NoiseModel.two_sided(0.1))
    word = code.encode(5)

    def decode():
        return decoder.decode(word)

    assert benchmark(decode) == 5


def test_codebook_construction(benchmark):
    """Greedy codebook construction (done once per simulation)."""

    def construct():
        return GreedyRandomCode(N + 2, 64, seed=1)

    code = benchmark(construct)
    assert code.num_symbols == N + 2


def test_full_simulation(benchmark):
    """One full chunk-commit simulation at n=8 (the E1 unit of work)."""
    task = InputSetTask(8)
    inputs = task.sample_inputs(random.Random(1))
    simulator = ChunkCommitSimulator()

    def simulate():
        channel = CorrelatedNoiseChannel(0.1, rng=2)
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )

    result = benchmark(simulate)
    assert task.is_correct(inputs, result.outputs)


def test_parallel_sweep_speedup():
    """Serial vs 4-worker process-pool sweep over the E1 unit of work.

    Asserts the determinism contract (byte-identical ``to_dict``) always,
    and the >= 2x wall-clock speedup at 4 workers whenever the hardware
    has the cores to show it.
    """
    task = InputSetTask(8)
    executor = SimulationExecutor(
        task=task,
        channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
        simulator=SimulatorSpec.of(ChunkCommitSimulator),
    )
    trials = 24

    start = time.perf_counter()
    serial = estimate_success(
        task, executor, trials, seed=3, runner=SerialRunner()
    )
    serial_elapsed = time.perf_counter() - start

    with ProcessPoolRunner(workers=4, chunk_size=3) as runner:
        start = time.perf_counter()
        parallel = estimate_success(
            task, executor, trials, seed=3, runner=runner
        )
        parallel_elapsed = time.perf_counter() - start
        assert runner.last_fallback_reason is None

    assert parallel.to_dict() == serial.to_dict()
    speedup = serial_elapsed / parallel_elapsed
    print(
        f"\nparallel sweep: serial {serial_elapsed:.2f}s, "
        f"4 workers {parallel_elapsed:.2f}s, speedup x{speedup:.2f}, "
        f"utilization {parallel.timing['utilization']:.2f}"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0
