"""Microbenchmarks of the hot paths (engine, channel, decoder, codebook).

Unlike E1–E12 (Monte-Carlo experiment harnesses run once), these are true
microbenchmarks: pytest-benchmark repeats them many times and reports
statistics.  They guard the wall-clock budget of the experiment suite —
the engine executes tens of thousands of rounds per simulation, so a
regression here multiplies through every experiment.

Running the module directly (``python benchmarks/bench_micro.py --quick``)
skips pytest and times the columnar fast-path engine against the seed
reference loop (:mod:`repro.core._legacy_engine`) over a correlated
channel at n ∈ {8, 32, 128}, both ``record_sent`` modes, writing
machine-readable rounds/s and speedup ratios to
``benchmarks/results/BENCH_engine.json``.  ``--compare REFERENCE_JSON``
additionally fails (exit 1) if the fast path's rounds/s drops more than
``--tolerance`` (default 5%) below the reference — CI's benchmark-smoke
job compares against the committed reference to catch instrumentation
overhead leaking into the observability-disabled path.

``--simulation`` switches to the end-to-end simulation benchmark:
trials/second of the chunk-commit and rewind simulators at
n ∈ {8, 32, 128}, batch tokens on (the sparse scheduler) versus off
(the pre-token dense path, reached via
:func:`repro.simulation.primitives.batch_tokens`), written to
``benchmarks/results/BENCH_simulation.json``.  The dense rate is the
drift anchor and the token rate the guarded quantity, with the same
``--compare``/``--tolerance`` regression floor as the engine benchmark.

``--vectorized`` benchmarks the trial-batched vectorized backend
(:mod:`repro.vectorized`) against the scalar token engine over all four
collapsed schemes (chunked, rewind, repetition, hierarchical) at
n ∈ {8, 32, 128}, writing ``benchmarks/results/BENCH_vectorized.json``.
Trial counts are derived from a wall-clock budget per configuration
(``--budget``; see :func:`repro.parallel.calibrate.trials_for_budget`) —
not hard-coded per-``n`` tables, which drifted from reality as the
engines got faster.  Each configuration also measures the calibrated
``auto`` planner against a plain serial runner (floor: never slower,
``auto_speedup >= 1.0``) and the composed ``vectorized-process`` backend
at 4 workers (floor: >= 2x single-core vectorized on chunked n=128,
enforced only when the machine has >= 4 CPUs — the payload records
``cpu_count`` so a single-core run stays honest).  The scalar token rate
is the drift anchor for the ``--compare`` regression floor, and
:func:`check_vectorized_floors` enforces the absolute floors above on
every run.

``--network`` benchmarks the graph-topology beeping engine
(:mod:`repro.network`) over three topology families — 4-neighbor grid,
random geometric (radius tracking a constant expected degree), and
Barabási–Albert scale-free — at n ∈ {10^4, 10^5, 10^6} nodes, writing
``benchmarks/results/BENCH_network.json``.  Each point times the sparse
neighborhood-OR path (:meth:`NetworkBeepingChannel.step`, the guarded
quantity) against the dense full-word :meth:`transmit` scan (the frozen
in-process drift anchor, round counts derived from a wall-clock
``--budget`` so the anchor never rests on a 3-sample mean) under a 0.1%
beeper density, plus the trial-batched vectorized kernel
(:class:`repro.vectorized.network.NetworkBatchKernel`, 64 trials per
matrix, re-planned every round) in trial-rounds/s, and records the
overhead curve of Davies' local-broadcast scheme: repetitions per
protocol round at ε = 0.1, flat in n on the bounded-degree families
versus the single-hop Θ(log n) count.  The smallest size also runs one
end-to-end noisy neighbor-OR trial through
:class:`LocalBroadcastSimulator` as a correctness canary.  The same
``--compare``/``--tolerance`` regression floor applies, drift-normalized
by the dense anchor, and :func:`check_network_floors` enforces the
batched kernel's >= 10x-over-sparse floor at 10^5 nodes on every run.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import time
from pathlib import Path

from repro.analysis import estimate_success
from repro.channels import (
    CorrelatedNoiseChannel,
    NoiselessChannel,
    SuppressionNoiseChannel,
)
from repro.coding import GreedyRandomCode, MLDecoder
from repro.core import run_protocol
from repro.core.formal import NoiseModel
from repro.parallel import (
    ChannelSpec,
    ProcessPoolRunner,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.network import (
    LocalBroadcastSimulator,
    NeighborORTask,
    NetworkBeepingChannel,
    TopologySpec,
    local_broadcast_repetitions,
    parse_topology,
)
from repro.parallel.calibrate import trials_for_budget
from repro.simulation.params import repetitions_for
from repro.tasks import InputSetTask
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.simulation.primitives import batch_tokens

N = 16


def test_engine_throughput(benchmark):
    """Rounds/second of the lock-step engine on a 16-party protocol."""
    task = InputSetTask(N)
    inputs = task.sample_inputs(random.Random(0))
    protocol = task.noiseless_protocol()
    channel = NoiselessChannel()

    def run():
        return run_protocol(protocol, inputs, channel, record_sent=False)

    result = benchmark(run)
    assert result.rounds == 2 * N


def test_noisy_channel_transmit(benchmark):
    """Cost of one correlated-noise transmission."""
    channel = CorrelatedNoiseChannel(0.1, rng=0)
    bits = (0,) * N

    def transmit():
        return channel.transmit(bits)

    outcome = benchmark(transmit)
    assert len(outcome.received) == N


def test_ml_decode(benchmark):
    """ML decoding of one owners-phase codeword."""
    code = GreedyRandomCode(N + 2, 64, seed=0)
    decoder = MLDecoder(code, NoiseModel.two_sided(0.1))
    word = code.encode(5)

    def decode():
        return decoder.decode(word)

    assert benchmark(decode) == 5


def test_codebook_construction(benchmark):
    """Greedy codebook construction (done once per simulation)."""

    def construct():
        return GreedyRandomCode(N + 2, 64, seed=1)

    code = benchmark(construct)
    assert code.num_symbols == N + 2


def test_full_simulation(benchmark):
    """One full chunk-commit simulation at n=8 (the E1 unit of work)."""
    task = InputSetTask(8)
    inputs = task.sample_inputs(random.Random(1))
    simulator = ChunkCommitSimulator()

    def simulate():
        channel = CorrelatedNoiseChannel(0.1, rng=2)
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )

    result = benchmark(simulate)
    assert task.is_correct(inputs, result.outputs)


def test_parallel_sweep_speedup():
    """Serial vs 4-worker process-pool sweep over the E1 unit of work.

    Asserts the determinism contract (byte-identical ``to_dict``) always,
    and the >= 2x wall-clock speedup at 4 workers whenever the hardware
    has the cores to show it.
    """
    task = InputSetTask(8)
    executor = SimulationExecutor(
        task=task,
        channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
        simulator=SimulatorSpec.of(ChunkCommitSimulator),
    )
    trials = 24

    start = time.perf_counter()
    serial = estimate_success(
        task, executor, trials, seed=3, runner=SerialRunner()
    )
    serial_elapsed = time.perf_counter() - start

    with ProcessPoolRunner(workers=4, chunk_size=3) as runner:
        start = time.perf_counter()
        parallel = estimate_success(
            task, executor, trials, seed=3, runner=runner
        )
        parallel_elapsed = time.perf_counter() - start
        assert runner.last_fallback_reason is None

    assert parallel.to_dict() == serial.to_dict()
    speedup = serial_elapsed / parallel_elapsed
    print(
        f"\nparallel sweep: serial {serial_elapsed:.2f}s, "
        f"4 workers {parallel_elapsed:.2f}s, speedup x{speedup:.2f}, "
        f"utilization {parallel.timing['utilization']:.2f}"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0


# ----------------------------------------------------------------------
# Standalone engine-throughput benchmark (CI benchmark-smoke job)
# ----------------------------------------------------------------------

ENGINE_BENCH_PARTIES = (8, 32, 128)


def _engine_bench_protocol(n: int, length: int):
    """A broadcast protocol whose bits depend on the received prefix, so
    the engine cannot shortcut any per-round work."""
    from repro.core import FunctionalProtocol

    return FunctionalProtocol(
        n_parties=n,
        length=length,
        broadcast=lambda index, bit, prefix: (
            bit if not prefix else bit ^ prefix[-1]
        ),
        output=lambda index, bit, received: sum(received),
    )


def _time_engine(
    engine, n: int, record_sent: bool, trials: int, length: int, repeats: int
):
    """Rounds/second of ``engine`` over a fresh correlated channel per trial
    (the Monte-Carlo access pattern).  Takes the best of ``repeats``
    measurements after one warmup trial — the standard noise shield for
    wall-clock microbenchmarks on shared machines."""
    protocol = _engine_bench_protocol(n, length)
    inputs = [i % 2 for i in range(n)]
    engine(
        protocol,
        inputs,
        CorrelatedNoiseChannel(0.1, rng=0),
        record_sent=record_sent,
    )
    best = 0.0
    for _ in range(repeats):
        total_rounds = 0
        start = time.perf_counter()
        for trial in range(trials):
            channel = CorrelatedNoiseChannel(0.1, rng=trial)
            result = engine(
                protocol, inputs, channel, record_sent=record_sent
            )
            total_rounds += result.rounds
        elapsed = time.perf_counter() - start
        best = max(best, total_rounds / elapsed)
    return best


def run_engine_benchmark(quick: bool = False) -> dict:
    """Fast-path vs reference-loop throughput; returns the results payload."""
    from repro.core import run_protocol as fast_engine
    from repro.core._legacy_engine import legacy_run_protocol as legacy_engine

    # Quick mode cuts trials/repeats but keeps the full per-trial length:
    # rounds/s amortizes per-trial setup over the trial length, so only a
    # matched length makes quick runs comparable to the archival reference
    # (the --compare guard depends on this).
    trials = 5 if quick else 30
    length = 2000
    repeats = 5
    payload: dict = {
        "benchmark": "engine_throughput",
        "channel": "CorrelatedNoiseChannel(0.1)",
        "rounds_per_trial": length,
        "trials": trials,
        "repeats": repeats,
        "results": [],
    }
    for n in ENGINE_BENCH_PARTIES:
        for record_sent in (True, False):
            legacy_rate = _time_engine(
                legacy_engine, n, record_sent, trials, length, repeats
            )
            fast_rate = _time_engine(
                fast_engine, n, record_sent, trials, length, repeats
            )
            entry = {
                "n_parties": n,
                "record_sent": record_sent,
                "legacy_rounds_per_sec": round(legacy_rate),
                "fast_rounds_per_sec": round(fast_rate),
                "speedup": round(fast_rate / legacy_rate, 2),
            }
            payload["results"].append(entry)
            print(
                f"n={n:<4} record_sent={str(record_sent):<5} "
                f"legacy {legacy_rate:>10,.0f} r/s   "
                f"fast {fast_rate:>10,.0f} r/s   "
                f"x{fast_rate / legacy_rate:.2f}"
            )
    return payload


def compare_to_reference(
    payload: dict, reference: dict, tolerance: float
) -> list[dict]:
    """Regression check of fast-path throughput against a reference run.

    Returns the payload entries whose measured ``fast_rounds_per_sec``
    fell more than ``tolerance`` below the reference's for the same
    (n_parties, record_sent) configuration.  Configurations missing from
    either side are skipped — the guard is for regressions, not coverage.

    The floor is scaled by the legacy engine's drift (measured/reference,
    clamped to at most 1): the legacy loop is frozen code measured in the
    same process, so when it runs slower than the reference did, that is
    the machine, not a regression, and the expectation shrinks with it.
    A change that slows only the fast path leaves the legacy rate — and
    therefore the floor — untouched.
    """
    by_config = {
        (entry["n_parties"], entry["record_sent"]): entry
        for entry in reference.get("results", [])
    }
    failures: list[dict] = []
    for entry in payload["results"]:
        ref = by_config.get((entry["n_parties"], entry["record_sent"]))
        if ref is None:
            continue
        measured = entry["fast_rounds_per_sec"]
        machine = min(
            1.0,
            entry["legacy_rounds_per_sec"] / ref["legacy_rounds_per_sec"],
        )
        floor = ref["fast_rounds_per_sec"] * (1.0 - tolerance) * machine
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"compare n={entry['n_parties']:<4} "
            f"record_sent={str(entry['record_sent']):<5} "
            f"measured {measured:>10,} r/s   "
            f"reference {ref['fast_rounds_per_sec']:>10,} r/s   "
            f"floor {floor:>12,.0f}   {verdict}"
        )
        if measured < floor:
            failures.append(entry)
    return failures


def check_against_reference(
    payload: dict, reference: dict, tolerance: float, attempts: int = 3
) -> list[str]:
    """``compare_to_reference`` with re-measurement of transient misses.

    A wall-clock rate on a shared machine can dip far below its true
    value whenever background load overlaps the timing window, so one
    low sample is not evidence of a regression.  Configurations that
    miss the floor are re-measured (fast path only — the guarded
    quantity) and their best-of grows across attempts; only a config
    that misses on every attempt is reported.  A genuine slowdown fails
    all attempts identically, so retries cost honest regressions
    nothing but time.
    """
    from repro.core import run_protocol as fast_engine

    trials = payload["trials"]
    length = payload["rounds_per_trial"]
    repeats = payload["repeats"]
    for attempt in range(attempts):
        failures = compare_to_reference(payload, reference, tolerance)
        if not failures:
            return []
        if attempt == attempts - 1:
            break
        print(f"re-measuring {len(failures)} config(s) that missed the floor")
        for entry in failures:
            rate = _time_engine(
                fast_engine,
                entry["n_parties"],
                entry["record_sent"],
                trials,
                length,
                repeats,
            )
            entry["fast_rounds_per_sec"] = max(
                entry["fast_rounds_per_sec"], round(rate)
            )
            entry["speedup"] = round(
                entry["fast_rounds_per_sec"]
                / entry["legacy_rounds_per_sec"],
                2,
            )
    by_config = {
        (entry["n_parties"], entry["record_sent"]): entry
        for entry in reference.get("results", [])
    }
    messages = []
    for entry in failures:
        ref = by_config[(entry["n_parties"], entry["record_sent"])]
        machine = min(
            1.0,
            entry["legacy_rounds_per_sec"] / ref["legacy_rounds_per_sec"],
        )
        messages.append(
            f"n={entry['n_parties']} record_sent={entry['record_sent']}: "
            f"{entry['fast_rounds_per_sec']:,} r/s < "
            f"{ref['fast_rounds_per_sec'] * (1 - tolerance) * machine:,.0f}"
            f" r/s (reference - {tolerance:.0%}, machine x{machine:.2f})"
        )
    return messages


# ----------------------------------------------------------------------
# Standalone end-to-end simulation benchmark (CI benchmark-smoke job)
# ----------------------------------------------------------------------

SIM_BENCH_PARTIES = (8, 32, 128)

# scheme -> (simulator factory, channel factory).  Chunk-commit and the
# shared-transcript schemes over the paper's correlated two-sided noise;
# rewind over suppression noise (its sound regime: 1 -> 0 flips only).
_SIM_SCHEMES = {
    "chunked": (
        ChunkCommitSimulator,
        lambda seed: CorrelatedNoiseChannel(0.1, rng=seed),
    ),
    "rewind": (
        RewindSimulator,
        lambda seed: SuppressionNoiseChannel(0.1, rng=seed),
    ),
    "repetition": (
        RepetitionSimulator,
        lambda seed: CorrelatedNoiseChannel(0.1, rng=seed),
    ),
    "hierarchical": (
        HierarchicalSimulator,
        lambda seed: CorrelatedNoiseChannel(0.1, rng=seed),
    ),
}

#: The --simulation benchmark's frozen grid: its committed reference and
#: the fixed trial table below predate the repetition/hierarchical
#: collapses and stay as they were measured.
_SIM_BENCH_SCHEMES = ("chunked", "rewind")

# Trials per --simulation configuration are fixed (not reduced by
# --quick) so every mode times the same per-trial work over the same
# channel seeds; only then are quick runs comparable to the archival
# reference.  Counts shrink with n because per-trial cost grows
# superlinearly — chunked at n=128 runs ~43k rounds per trial on the
# dense path.  (The --vectorized benchmark derives its counts from a
# wall-clock budget instead; see _budgeted_trials.)
_SIM_TRIALS = {
    ("chunked", 8): 20,
    ("chunked", 32): 5,
    ("chunked", 128): 2,
    ("rewind", 8): 50,
    ("rewind", 32): 20,
    ("rewind", 128): 5,
}

# Trials/second of the tree *before* the sparse batch-token engine and
# the inlined ML-decode loop (commit 62d437b), measured once on the
# machine that produced the committed reference with exactly this
# script's trial grid, seeds and best-of-2 repeats.  The in-process
# dense mode is not this baseline — it desugars the tokens but shares
# the optimized decoder — so the "before" of the before/after speedup
# is recorded here, frozen.  Meaningful only relative to the committed
# reference's dense rates (same machine); the regression floor uses the
# in-process dense anchor instead, which moves with the machine.
_PRE_PR_TRIALS_PER_SEC = {
    ("chunked", 8): 161.753,
    ("chunked", 32): 6.629,
    ("chunked", 128): 0.205,
    ("rewind", 8): 1459.653,
    ("rewind", 32): 103.360,
    ("rewind", 128): 3.333,
}


def _time_simulation(
    scheme: str, n: int, tokens: bool, trials: int, repeats: int
) -> float:
    """Trials/second of one simulation scheme at one party count.

    A fresh channel per trial (the Monte-Carlo access pattern), best of
    ``repeats`` measurements after one warmup trial.  ``tokens`` selects
    between the sparse batch-token scheduler and the desugared per-round
    dense path — the latter is the pre-token engine, so it doubles as
    the machine-drift anchor for the regression floor.
    """
    make_simulator, make_channel = _SIM_SCHEMES[scheme]
    task = InputSetTask(n)
    inputs = task.sample_inputs(random.Random(n))
    protocol = task.noiseless_protocol()
    simulator = make_simulator()
    with batch_tokens(tokens):
        simulator.simulate(
            protocol, inputs, make_channel(10_000), shared_seed=10_000
        )
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            for trial in range(trials):
                simulator.simulate(
                    protocol,
                    inputs,
                    make_channel(trial),
                    shared_seed=trial,
                )
            elapsed = time.perf_counter() - start
            best = max(best, trials / elapsed)
    return best


def run_simulation_benchmark(quick: bool = False) -> dict:
    """Token vs dense simulation throughput; returns the results payload."""
    # Quick mode only drops n=128; trials and best-of-2 repeats stay the
    # full-mode values, so the configs it does run are measured exactly
    # like the committed reference's.
    parties = SIM_BENCH_PARTIES[:2] if quick else SIM_BENCH_PARTIES
    repeats = 2
    payload: dict = {
        "benchmark": "simulation_throughput",
        "task": "InputSetTask",
        "channels": {
            "chunked": "CorrelatedNoiseChannel(0.1)",
            "rewind": "SuppressionNoiseChannel(0.1)",
        },
        "repeats": repeats,
        "results": [],
    }
    for scheme in _SIM_BENCH_SCHEMES:
        for n in parties:
            trials = _SIM_TRIALS[(scheme, n)]
            dense_rate = _time_simulation(
                scheme, n, tokens=False, trials=trials, repeats=repeats
            )
            token_rate = _time_simulation(
                scheme, n, tokens=True, trials=trials, repeats=repeats
            )
            entry = {
                "scheme": scheme,
                "n_parties": n,
                "trials": trials,
                "dense_trials_per_sec": round(dense_rate, 3),
                "token_trials_per_sec": round(token_rate, 3),
                "speedup": round(token_rate / dense_rate, 2),
            }
            pre_pr = _PRE_PR_TRIALS_PER_SEC.get((scheme, n))
            if pre_pr is not None:
                entry["pre_pr_trials_per_sec"] = pre_pr
                entry["speedup_vs_pre_pr"] = round(token_rate / pre_pr, 2)
            payload["results"].append(entry)
            print(
                f"{scheme:<8} n={n:<4} "
                f"dense {dense_rate:>9,.2f} trials/s   "
                f"tokens {token_rate:>9,.2f} trials/s   "
                f"x{token_rate / dense_rate:.2f}"
                + (
                    f"   (x{token_rate / pre_pr:.2f} vs pre-token tree)"
                    if pre_pr is not None
                    else ""
                )
            )
    return payload


def compare_simulation_to_reference(
    payload: dict, reference: dict, tolerance: float
) -> list[dict]:
    """Regression check of token-mode throughput against a reference run.

    Same shape as :func:`compare_to_reference`, keyed by
    (scheme, n_parties): the dense per-round path is frozen code measured
    in the same process, so its drift (measured/reference, clamped to at
    most 1) scales the floor down when the machine is slow, while a
    change that slows only the token scheduler leaves the anchor — and
    therefore the floor — untouched.
    """
    by_config = {
        (entry["scheme"], entry["n_parties"]): entry
        for entry in reference.get("results", [])
    }
    failures: list[dict] = []
    for entry in payload["results"]:
        ref = by_config.get((entry["scheme"], entry["n_parties"]))
        if ref is None:
            continue
        measured = entry["token_trials_per_sec"]
        machine = min(
            1.0,
            entry["dense_trials_per_sec"] / ref["dense_trials_per_sec"],
        )
        floor = ref["token_trials_per_sec"] * (1.0 - tolerance) * machine
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"compare {entry['scheme']:<8} n={entry['n_parties']:<4} "
            f"measured {measured:>9,.2f} trials/s   "
            f"reference {ref['token_trials_per_sec']:>9,.2f} trials/s   "
            f"floor {floor:>9,.2f}   {verdict}"
        )
        if measured < floor:
            failures.append(entry)
    return failures


def check_simulation_against_reference(
    payload: dict, reference: dict, tolerance: float, attempts: int = 3
) -> list[str]:
    """``compare_simulation_to_reference`` with transient-miss retries.

    Mirrors :func:`check_against_reference`: configurations that miss
    the floor re-measure the guarded quantity (token mode only) and
    keep their best-of across attempts, so one background-load dip is
    not reported while a genuine slowdown still fails every attempt.
    """
    repeats = payload["repeats"]
    for attempt in range(attempts):
        failures = compare_simulation_to_reference(
            payload, reference, tolerance
        )
        if not failures:
            return []
        if attempt == attempts - 1:
            break
        print(f"re-measuring {len(failures)} config(s) that missed the floor")
        for entry in failures:
            rate = _time_simulation(
                entry["scheme"],
                entry["n_parties"],
                tokens=True,
                trials=entry["trials"],
                repeats=repeats,
            )
            entry["token_trials_per_sec"] = max(
                entry["token_trials_per_sec"], round(rate, 3)
            )
            entry["speedup"] = round(
                entry["token_trials_per_sec"]
                / entry["dense_trials_per_sec"],
                2,
            )
    by_config = {
        (entry["scheme"], entry["n_parties"]): entry
        for entry in reference.get("results", [])
    }
    messages = []
    for entry in failures:
        ref = by_config[(entry["scheme"], entry["n_parties"])]
        machine = min(
            1.0,
            entry["dense_trials_per_sec"] / ref["dense_trials_per_sec"],
        )
        messages.append(
            f"{entry['scheme']} n={entry['n_parties']}: "
            f"{entry['token_trials_per_sec']:,} trials/s < "
            f"{ref['token_trials_per_sec'] * (1 - tolerance) * machine:,.2f}"
            f" trials/s (reference - {tolerance:.0%}, machine x{machine:.2f})"
        )
    return messages


# ----------------------------------------------------------------------
# Standalone vectorized-backend benchmark (CI benchmark-smoke job)
# ----------------------------------------------------------------------


#: scheme -> (simulator spec, channel spec): the runner-level mirror of
#: _SIM_SCHEMES, for the backends measured through run_trials.
_RUNNER_SPECS = {
    "chunked": (
        SimulatorSpec.of(ChunkCommitSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
    "rewind": (
        SimulatorSpec.of(RewindSimulator),
        ChannelSpec.of(SuppressionNoiseChannel, 0.1),
    ),
    "repetition": (
        SimulatorSpec.of(RepetitionSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
    "hierarchical": (
        SimulatorSpec.of(HierarchicalSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
}

#: Worker count of the composed-backend measurement (recorded in the
#: payload; the >= 2x floor only applies on machines with that many CPUs).
_COMPOSED_WORKERS = 4

#: Floor on auto-vs-serial throughput.  The planner's worst case is a
#: correct "stay serial" decision, where the true ratio is 1.0 and the
#: measured one is two noisy wall-clock rates divided — so the floor
#: carries the same 5% tolerance as the reference comparisons.
_AUTO_FLOOR = 0.95


def _budgeted_trials(scheme: str, n: int, budget_s: float) -> int:
    """Derive the config's trial count from a wall-clock budget.

    Times one scalar token trial (the slowest engine measured) and asks
    :func:`~repro.parallel.calibrate.trials_for_budget` how many fit —
    replacing the hard-coded trials-per-``n`` table, which under-sampled
    fast configs and over-ran slow ones as the engines evolved.
    """
    make_simulator, make_channel = _SIM_SCHEMES[scheme]
    task = InputSetTask(n)
    inputs = task.sample_inputs(random.Random(n))
    protocol = task.noiseless_protocol()
    simulator = make_simulator()
    start = time.perf_counter()
    simulator.simulate(
        protocol, inputs, make_channel(10_000), shared_seed=10_000
    )
    per_trial = time.perf_counter() - start
    return trials_for_budget(per_trial, budget_s, max_trials=200)


def _time_runner(runner, scheme: str, n: int, trials: int, repeats: int) -> float:
    """Trials/second of a TrialRunner backend over the config's executor.

    One warmup batch (pool spin-up, codebook construction, planner
    probe), then best-of-``repeats`` full batches — the same noise
    shield as every other wall-clock measurement in this module.
    """
    simulator, channel = _RUNNER_SPECS[scheme]
    task = InputSetTask(n)
    executor = SimulationExecutor(
        task=task, channel=channel, simulator=simulator
    )
    runner.run_trials(task, executor, 1, seed=10_000)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        runner.run_trials(task, executor, trials, seed=0)
        elapsed = time.perf_counter() - start
        best = max(best, trials / elapsed)
    return best


def _time_vectorized(scheme: str, n: int, trials: int, repeats: int) -> float:
    """Trials/second of the party-collapsed vectorized simulation.

    Identical access pattern to :func:`_time_simulation` — same task,
    inputs, channel seeds, shared seeds, warmup and best-of — so the rate
    is directly comparable to the scalar token rate of the same config.
    The codebook/decoder cache persists across trials, as the
    ``VectorizedRunner`` holds it across a batch.
    """
    from repro.vectorized import (
        simulate_chunked,
        simulate_hierarchical,
        simulate_repetition,
        simulate_rewind,
    )

    collapsed = {
        "chunked": simulate_chunked,
        "rewind": simulate_rewind,
        "repetition": simulate_repetition,
        "hierarchical": simulate_hierarchical,
    }[scheme]
    make_simulator, make_channel = _SIM_SCHEMES[scheme]
    task = InputSetTask(n)
    inputs = task.sample_inputs(random.Random(n))
    protocol = task.noiseless_protocol()
    simulator = make_simulator()
    cache: dict = {}
    collapsed(
        simulator,
        protocol,
        inputs,
        make_channel(10_000),
        shared_seed=10_000,
        codebook_cache=cache,
    )
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for trial in range(trials):
            collapsed(
                simulator,
                protocol,
                inputs,
                make_channel(trial),
                shared_seed=trial,
                codebook_cache=cache,
            )
        elapsed = time.perf_counter() - start
        best = max(best, trials / elapsed)
    return best


def run_vectorized_benchmark(
    quick: bool = False, budget_s: float | None = None
) -> dict:
    """Vectorized / auto / composed backends vs the scalar token engine.

    Per (scheme, n) configuration, with wall-clock-budgeted trial counts:

    * ``vectorized_trials_per_sec`` — the collapsed simulation, same
      seeds and access pattern as the scalar token rate; ``speedup`` is
      the headline per-config acceptance quantity;
    * ``serial_runner_trials_per_sec`` / ``auto_trials_per_sec`` — a
      plain :class:`SerialRunner` vs the calibrated ``auto`` planner,
      measured identically through ``run_trials``; ``auto_speedup`` must
      never drop below 1.0 (:func:`check_vectorized_floors`);
    * ``composed_trials_per_sec`` — the ``vectorized-process`` backend
      at ``_COMPOSED_WORKERS`` workers; its >= 2x-over-vectorized floor
      applies only when the machine has the cores (``cpu_count`` is
      recorded so single-core runs stay honest).

    The scalar token rate doubles as the machine-drift anchor of the
    ``--compare`` regression floor.
    """
    from repro.parallel.planner import AutoRunner
    from repro.vectorized import VectorizedProcessRunner, require_numpy

    require_numpy()
    parties = SIM_BENCH_PARTIES[:2] if quick else SIM_BENCH_PARTIES
    repeats = 2
    if budget_s is None:
        budget_s = 0.4 if quick else 1.0
    payload: dict = {
        "benchmark": "vectorized_throughput",
        "task": "InputSetTask",
        "channels": {
            "chunked": "CorrelatedNoiseChannel(0.1)",
            "rewind": "SuppressionNoiseChannel(0.1)",
            "repetition": "CorrelatedNoiseChannel(0.1)",
            "hierarchical": "CorrelatedNoiseChannel(0.1)",
        },
        "repeats": repeats,
        "budget_s": budget_s,
        "cpu_count": os.cpu_count() or 1,
        "composed_workers": _COMPOSED_WORKERS,
        "results": [],
    }
    auto_runner = AutoRunner(workers=1)
    composed_runner = VectorizedProcessRunner(workers=_COMPOSED_WORKERS)
    try:
        for scheme in sorted(_SIM_SCHEMES):
            for n in parties:
                trials = _budgeted_trials(scheme, n, budget_s)
                token_rate = _time_simulation(
                    scheme, n, tokens=True, trials=trials, repeats=repeats
                )
                vectorized_rate = _time_vectorized(
                    scheme, n, trials=trials, repeats=repeats
                )
                serial_rate = _time_runner(
                    SerialRunner(), scheme, n, trials, repeats
                )
                auto_rate = _time_runner(
                    auto_runner, scheme, n, trials, repeats
                )
                composed_rate = _time_runner(
                    composed_runner, scheme, n, trials, repeats
                )
                entry = {
                    "scheme": scheme,
                    "n_parties": n,
                    "trials": trials,
                    "token_trials_per_sec": round(token_rate, 3),
                    "vectorized_trials_per_sec": round(vectorized_rate, 3),
                    "speedup": round(vectorized_rate / token_rate, 2),
                    "serial_runner_trials_per_sec": round(serial_rate, 3),
                    "auto_trials_per_sec": round(auto_rate, 3),
                    "auto_speedup": round(auto_rate / serial_rate, 2),
                    "auto_backend": (auto_runner.last_decision or {}).get(
                        "backend"
                    ),
                    "composed_trials_per_sec": round(composed_rate, 3),
                    "composed_speedup_vs_vectorized": round(
                        composed_rate / vectorized_rate, 2
                    ),
                }
                payload["results"].append(entry)
                print(
                    f"{scheme:<12} n={n:<4} "
                    f"tokens {token_rate:>9,.2f}/s   "
                    f"vectorized {vectorized_rate:>9,.2f}/s "
                    f"(x{vectorized_rate / token_rate:.2f})   "
                    f"auto x{auto_rate / serial_rate:.2f} "
                    f"[{entry['auto_backend']}]   "
                    f"composed x{composed_rate / vectorized_rate:.2f} "
                    f"vs vec"
                )
    finally:
        auto_runner.close()
        composed_runner.close()
    return payload


def check_vectorized_floors(payload: dict, attempts: int = 3) -> list[str]:
    """The absolute acceptance floors of the vectorized matrix.

    * ``auto_speedup >= _AUTO_FLOOR`` at every configuration — the
      planner must never make a sweep materially slower than plain
      serial (this is the small-n regression guard: at points below the
      crossover it must dispatch scalar, where the true ratio sits at
      ~1.0, so the floor carries the module-standard 5% wall-clock
      tolerance — a strict 1.0 floor on a ratio of two equal rates is a
      coin flip per run);
    * repetition and hierarchical collapses >= 5x the scalar token
      engine at n=128;
    * the composed backend >= 2x single-core vectorized on chunked
      n=128 — only enforced when the machine has >= ``composed_workers``
      CPUs (a single-core runner cannot show a multicore speedup, but
      the measurement is still recorded).

    Wall-clock floors on shared machines get the same transient-miss
    protocol as the reference comparisons: a failing quantity is
    re-measured and keeps its best-of across ``attempts``.
    """
    from repro.parallel.planner import AutoRunner
    from repro.vectorized import VectorizedProcessRunner

    repeats = payload["repeats"]
    cpu_gated = payload.get("cpu_count", 1) >= payload.get(
        "composed_workers", _COMPOSED_WORKERS
    )

    def floor_misses() -> list[tuple[dict, str]]:
        misses = []
        for entry in payload["results"]:
            scheme, n = entry["scheme"], entry["n_parties"]
            if entry["auto_speedup"] < _AUTO_FLOOR:
                misses.append((entry, "auto"))
            if (
                scheme in ("repetition", "hierarchical")
                and n == 128
                and entry["speedup"] < 5.0
            ):
                misses.append((entry, "vectorized"))
            if (
                cpu_gated
                and scheme == "chunked"
                and n == 128
                and entry["composed_speedup_vs_vectorized"] < 2.0
            ):
                misses.append((entry, "composed"))
        return misses

    misses: list[tuple[dict, str]] = []
    for attempt in range(attempts):
        misses = floor_misses()
        if not misses:
            return []
        if attempt == attempts - 1:
            break
        print(f"re-measuring {len(misses)} floor miss(es)")
        for entry, quantity in misses:
            scheme, n, trials = (
                entry["scheme"],
                entry["n_parties"],
                entry["trials"],
            )
            if quantity == "auto":
                # A ratio floor near 1.0: re-measure *both* sides
                # back-to-back so one lucky scheduler spike on the
                # original serial rate cannot lock the ratio below the
                # floor (a genuinely slower planner still fails every
                # attempt).
                with AutoRunner(workers=1) as runner:
                    rate = _time_runner(runner, scheme, n, trials, repeats)
                serial_rate = _time_runner(
                    SerialRunner(), scheme, n, trials, repeats
                )
                entry["auto_trials_per_sec"] = max(
                    entry["auto_trials_per_sec"], round(rate, 3)
                )
                entry["serial_runner_trials_per_sec"] = max(
                    entry["serial_runner_trials_per_sec"],
                    round(serial_rate, 3),
                )
                entry["auto_speedup"] = round(
                    entry["auto_trials_per_sec"]
                    / entry["serial_runner_trials_per_sec"],
                    2,
                )
            elif quantity == "vectorized":
                rate = _time_vectorized(scheme, n, trials, repeats)
                entry["vectorized_trials_per_sec"] = max(
                    entry["vectorized_trials_per_sec"], round(rate, 3)
                )
                entry["speedup"] = round(
                    entry["vectorized_trials_per_sec"]
                    / entry["token_trials_per_sec"],
                    2,
                )
            else:
                with VectorizedProcessRunner(
                    workers=_COMPOSED_WORKERS
                ) as runner:
                    rate = _time_runner(runner, scheme, n, trials, repeats)
                entry["composed_trials_per_sec"] = max(
                    entry["composed_trials_per_sec"], round(rate, 3)
                )
                entry["composed_speedup_vs_vectorized"] = round(
                    entry["composed_trials_per_sec"]
                    / entry["vectorized_trials_per_sec"],
                    2,
                )
    messages = []
    for entry, quantity in misses:
        scheme, n = entry["scheme"], entry["n_parties"]
        if quantity == "auto":
            messages.append(
                f"{scheme} n={n}: auto backend x"
                f"{entry['auto_speedup']} < {_AUTO_FLOOR} vs serial "
                f"(picked {entry['auto_backend']})"
            )
        elif quantity == "vectorized":
            messages.append(
                f"{scheme} n={n}: vectorized x{entry['speedup']} < 5.0 "
                "vs scalar token engine"
            )
        else:
            messages.append(
                f"{scheme} n={n}: composed x"
                f"{entry['composed_speedup_vs_vectorized']} < 2.0 vs "
                f"single-core vectorized at "
                f"{payload['composed_workers']} workers"
            )
    return messages


def compare_vectorized_to_reference(
    payload: dict, reference: dict, tolerance: float
) -> list[dict]:
    """Regression check of vectorized throughput against a reference run.

    Same drift normalization as :func:`compare_simulation_to_reference`,
    with the scalar token engine as the in-process anchor: its drift
    (measured/reference, clamped to at most 1) scales the floor down on
    slow machines, while a change that slows only the vectorized backend
    leaves the anchor — and therefore the floor — untouched.
    """
    by_config = {
        (entry["scheme"], entry["n_parties"]): entry
        for entry in reference.get("results", [])
    }
    failures: list[dict] = []
    for entry in payload["results"]:
        ref = by_config.get((entry["scheme"], entry["n_parties"]))
        if ref is None:
            continue
        measured = entry["vectorized_trials_per_sec"]
        machine = min(
            1.0,
            entry["token_trials_per_sec"] / ref["token_trials_per_sec"],
        )
        floor = ref["vectorized_trials_per_sec"] * (1.0 - tolerance) * machine
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"compare {entry['scheme']:<8} n={entry['n_parties']:<4} "
            f"measured {measured:>9,.2f} trials/s   "
            f"reference {ref['vectorized_trials_per_sec']:>9,.2f} trials/s   "
            f"floor {floor:>9,.2f}   {verdict}"
        )
        if measured < floor:
            failures.append(entry)
    return failures


def check_vectorized_against_reference(
    payload: dict, reference: dict, tolerance: float, attempts: int = 3
) -> list[str]:
    """``compare_vectorized_to_reference`` with transient-miss retries
    (same protocol as the engine and simulation checks)."""
    repeats = payload["repeats"]
    for attempt in range(attempts):
        failures = compare_vectorized_to_reference(
            payload, reference, tolerance
        )
        if not failures:
            return []
        if attempt == attempts - 1:
            break
        print(f"re-measuring {len(failures)} config(s) that missed the floor")
        for entry in failures:
            rate = _time_vectorized(
                entry["scheme"],
                entry["n_parties"],
                trials=entry["trials"],
                repeats=repeats,
            )
            entry["vectorized_trials_per_sec"] = max(
                entry["vectorized_trials_per_sec"], round(rate, 3)
            )
            entry["speedup"] = round(
                entry["vectorized_trials_per_sec"]
                / entry["token_trials_per_sec"],
                2,
            )
    by_config = {
        (entry["scheme"], entry["n_parties"]): entry
        for entry in reference.get("results", [])
    }
    messages = []
    for entry in failures:
        ref = by_config[(entry["scheme"], entry["n_parties"])]
        machine = min(
            1.0,
            entry["token_trials_per_sec"] / ref["token_trials_per_sec"],
        )
        messages.append(
            f"{entry['scheme']} n={entry['n_parties']}: "
            f"{entry['vectorized_trials_per_sec']:,} trials/s < "
            f"{ref['vectorized_trials_per_sec'] * (1 - tolerance) * machine:,.2f}"
            f" trials/s (reference - {tolerance:.0%}, machine x{machine:.2f})"
        )
    return messages


# ----------------------------------------------------------------------
# Standalone network-topology benchmark (CI benchmark-smoke job)
# ----------------------------------------------------------------------


#: Node counts per family.  The committed reference keeps the full curve
#: through 10^6; --quick stops at 10^5 — the size the batched-kernel
#: acceptance floor is pinned at, so CI exercises it on every run.
NETWORK_BENCH_SIZES = (10_000, 100_000, 1_000_000)
_NETWORK_QUICK_SIZES = (10_000, 100_000)

_NETWORK_FAMILIES = ("grid", "geometric", "scale-free")

#: Per-node flip probability behind the local-broadcast budgets.
_NETWORK_EPSILON = 0.1

#: Fraction of nodes beeping per throughput round — the sparse regime:
#: in the schedulers' steady state few nodes beep concurrently, which is
#: exactly where the O(Σ out-degree(beepers)) path earns its keep.
_NETWORK_BEEPER_FRACTION = 0.001

#: Trial-batch width of the vectorized kernel measurement: wide enough
#: to amortize the per-round plan over the batch, small enough that a
#: 10^6-node (n x batch) matrix stays cache-friendly.
_NETWORK_VECTORIZED_BATCH = 64

#: Acceptance floor: batched trial-rounds/s over scalar sparse rounds/s
#: at the pinned size.  Both rates are measured in the same process, so
#: the ratio is machine-normalized by construction.
_NETWORK_VECTORIZED_FLOOR = 10.0
_NETWORK_FLOOR_N = 100_000


def _network_bench_spec(family: str, n: int) -> TopologySpec:
    """The benchmarked spec for one (family, n) point.

    The geometric radius tracks sqrt(8 / (pi n)), holding the expected
    degree near 8 as n grows — the bounded-degree regime where Davies'
    local-broadcast budget depends on Δ and T but never on n.
    """
    if family == "grid":
        return TopologySpec.of("grid", n=n)
    if family == "geometric":
        radius = round(math.sqrt(8.0 / (math.pi * n)), 6)
        return TopologySpec.of("geometric", n=n, radius=radius, seed=7)
    if family == "scale-free":
        return TopologySpec.of("scale-free", n=n, m=2, seed=7)
    raise ValueError(f"unknown benchmark family {family!r}")


def _network_beepers(n: int) -> list[int]:
    """Deterministic ascending beeper ids (step's draw-order contract)."""
    count = max(1, int(n * _NETWORK_BEEPER_FRACTION))
    return sorted(random.Random(1234).sample(range(n), count))


def _time_network_rounds(
    channel: NetworkBeepingChannel,
    beepers: list[int],
    rounds: int,
    repeats: int,
    sparse: bool,
) -> float:
    """Rounds/second of one channel, best of ``repeats`` after a warmup.

    ``sparse`` selects :meth:`NetworkBeepingChannel.step` (the guarded
    engine path) versus :meth:`transmit` on the full n-length word — the
    pre-existing dense scan, which doubles as the in-process
    machine-drift anchor for the regression floor.
    """
    if sparse:

        def run_round() -> None:
            channel.step(beepers)

    else:
        bits = [0] * channel.n_nodes
        for beeper in beepers:
            bits[beeper] = 1
        word = tuple(bits)

        def run_round() -> None:
            channel.transmit(word)

    run_round()  # warmup
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            run_round()
        elapsed = time.perf_counter() - start
        best = max(best, rounds / elapsed)
    return best


def _budgeted_dense_rounds(
    channel: NetworkBeepingChannel, beepers: list[int], budget_s: float
) -> int:
    """Dense-scan round count from a wall-clock budget.

    The dense path is the drift anchor of every network floor, so its
    round count must track the machine, not a hard-coded table — the old
    ``1_000_000 // n`` rule left a 10^6-node anchor resting on a 3-sample
    mean, and every speedup ratio at that size inherited its variance.
    """
    bits = [0] * channel.n_nodes
    for beeper in beepers:
        bits[beeper] = 1
    word = tuple(bits)
    channel.transmit(word)  # warmup
    start = time.perf_counter()
    channel.transmit(word)
    per_round = time.perf_counter() - start
    return trials_for_budget(
        per_round, budget_s, min_trials=3, max_trials=200
    )


def _time_network_vectorized(
    topology, beepers: list[int], rounds: int, repeats: int, batch: int
) -> float:
    """Trial-rounds/second of the batched CSR kernel, ``batch`` trials
    per matrix — directly comparable to the scalar per-trial rates.

    Every round uses a different (rotated) beeper set, so the kernel
    re-plans its gather each round: the expansion-plan cache — a real
    win for local-broadcast bursts — is deliberately kept cold here,
    since the scalar walk it is measured against gets no such reuse.
    """
    import numpy as np

    from repro.vectorized.network import NetworkBatchKernel

    kernel = NetworkBatchKernel(topology, batch)
    n = topology.n
    variants = []
    B = np.zeros((n, batch), dtype=np.uint8)
    for shift in range(8):
        ids = np.unique((np.array(beepers, dtype=np.int64) + shift) % n)
        variants.append(ids)
        B[ids] = 1
    kernel.step(B, variants[0])  # warmup
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for index in range(rounds):
            kernel.step(B, variants[index % len(variants)])
        elapsed = time.perf_counter() - start
        best = max(best, rounds * batch / elapsed)
    return best


def run_network_benchmark(
    quick: bool = False, budget_s: float | None = None
) -> dict:
    """Sparse vs dense network rounds, the batched vectorized kernel,
    and the local-broadcast overhead curve over three topology families;
    returns the results payload."""
    sizes = _NETWORK_QUICK_SIZES if quick else NETWORK_BENCH_SIZES
    repeats = 2
    if budget_s is None:
        budget_s = 0.3 if quick else 1.0
    payload: dict = {
        "benchmark": "network_topology",
        "epsilon": _NETWORK_EPSILON,
        "beeper_fraction": _NETWORK_BEEPER_FRACTION,
        "repeats": repeats,
        "dense_budget_s": budget_s,
        "vectorized_batch": _NETWORK_VECTORIZED_BATCH,
        "results": [],
    }
    for family in _NETWORK_FAMILIES:
        for n in sizes:
            spec = _network_bench_spec(family, n)
            start = time.perf_counter()
            topology = spec.build()
            build_s = time.perf_counter() - start
            channel = NetworkBeepingChannel(topology)
            beepers = _network_beepers(n)
            # The dense scan is O(n) per round: derive its round count
            # from the wall-clock budget so the anchor keeps a sane
            # sample size at every n.  Rates are rounds/s, so differing
            # counts remain comparable.
            dense_rounds = _budgeted_dense_rounds(
                channel, beepers, budget_s
            )
            sparse_rounds = 150 if quick else 300
            dense_rate = _time_network_rounds(
                channel, beepers, dense_rounds, repeats, sparse=False
            )
            sparse_rate = _time_network_rounds(
                channel, beepers, sparse_rounds, repeats, sparse=True
            )
            vectorized_rate = _time_network_vectorized(
                topology,
                beepers,
                sparse_rounds,
                repeats,
                _NETWORK_VECTORIZED_BATCH,
            )
            lb_repetitions = local_broadcast_repetitions(
                topology.max_in_degree, 1, _NETWORK_EPSILON
            )
            entry = {
                "family": family,
                "n_nodes": n,
                "label": spec.label(),
                "edges": topology.edges,
                "max_in_degree": topology.max_in_degree,
                "build_s": round(build_s, 3),
                "dense_rounds": dense_rounds,
                "sparse_rounds": sparse_rounds,
                "vectorized_rounds": sparse_rounds,
                "dense_rounds_per_sec": round(dense_rate, 1),
                "sparse_rounds_per_sec": round(sparse_rate, 1),
                "speedup": round(sparse_rate / dense_rate, 1),
                "vectorized_rounds_per_sec": round(vectorized_rate, 1),
                "vectorized_speedup_vs_sparse": round(
                    vectorized_rate / sparse_rate, 1
                ),
                # The overhead curve: local-broadcast repetitions per
                # protocol round at ε, against the single-hop Θ(log n)
                # count on the same node budget.
                "lb_repetitions": lb_repetitions,
                "single_hop_repetitions": repetitions_for(
                    n, _NETWORK_EPSILON
                ),
            }
            if n == sizes[0]:
                # Correctness canary: one end-to-end noisy neighbor-OR
                # trial through the full scheme at 10^4 nodes.
                task = NeighborORTask(topology)
                inputs = task.sample_inputs(random.Random(n))
                start = time.perf_counter()
                result = LocalBroadcastSimulator().simulate(
                    task.noiseless_protocol(),
                    inputs,
                    task.channel(epsilon=_NETWORK_EPSILON, rng=n),
                )
                entry["lb_trial_s"] = round(time.perf_counter() - start, 3)
                entry["lb_correct"] = bool(
                    task.is_correct(inputs, result.outputs)
                )
            payload["results"].append(entry)
            print(
                f"{family:<11} n={n:<9,} "
                f"dense {dense_rate:>8,.1f} rounds/s   "
                f"sparse {sparse_rate:>10,.1f} rounds/s   "
                f"x{sparse_rate / dense_rate:<7.0f} "
                f"batched {vectorized_rate:>12,.1f} rounds/s "
                f"(x{vectorized_rate / sparse_rate:.0f} vs sparse)   "
                f"lb-reps {lb_repetitions} "
                f"(single-hop {entry['single_hop_repetitions']})"
            )
    return payload


def check_network_floors(payload: dict, attempts: int = 3) -> list[str]:
    """The batched-kernel acceptance floor of the network matrix.

    The vectorized kernel must deliver >= ``_NETWORK_VECTORIZED_FLOOR``x
    the scalar sparse walk's rounds/s at 10^5 nodes on every family.
    Both rates come from the same in-process run, so the ratio needs no
    reference-file drift anchor; wall-clock floors still get the
    module-standard transient-miss protocol (the guarded quantity
    re-measures and keeps its best-of across ``attempts``).
    """
    repeats = payload["repeats"]
    batch = payload.get("vectorized_batch", _NETWORK_VECTORIZED_BATCH)

    def floor_misses() -> list[dict]:
        return [
            entry
            for entry in payload["results"]
            if entry["n_nodes"] == _NETWORK_FLOOR_N
            and "vectorized_rounds_per_sec" in entry
            and entry["vectorized_rounds_per_sec"]
            < _NETWORK_VECTORIZED_FLOOR * entry["sparse_rounds_per_sec"]
        ]

    misses: list[dict] = []
    for attempt in range(attempts):
        misses = floor_misses()
        if not misses:
            return []
        if attempt == attempts - 1:
            break
        print(f"re-measuring {len(misses)} batched-kernel floor miss(es)")
        for entry in misses:
            topology = parse_topology(entry["label"]).build()
            rate = _time_network_vectorized(
                topology,
                _network_beepers(topology.n),
                entry["vectorized_rounds"],
                repeats,
                batch,
            )
            entry["vectorized_rounds_per_sec"] = max(
                entry["vectorized_rounds_per_sec"], round(rate, 1)
            )
            entry["vectorized_speedup_vs_sparse"] = round(
                entry["vectorized_rounds_per_sec"]
                / entry["sparse_rounds_per_sec"],
                1,
            )
    return [
        f"{entry['family']} n={entry['n_nodes']}: batched kernel x"
        f"{entry['vectorized_speedup_vs_sparse']} < "
        f"{_NETWORK_VECTORIZED_FLOOR:.0f}x scalar sparse rounds/s"
        for entry in misses
    ]


def _remeasure_network_sparse(entry: dict, repeats: int) -> float:
    """Re-time one configuration's sparse path (floor-miss retries)."""
    topology = parse_topology(entry["label"]).build()
    channel = NetworkBeepingChannel(topology)
    beepers = _network_beepers(topology.n)
    return _time_network_rounds(
        channel, beepers, entry["sparse_rounds"], repeats, sparse=True
    )


def compare_network_to_reference(
    payload: dict, reference: dict, tolerance: float
) -> list[dict]:
    """Regression check of sparse-path throughput against a reference.

    Same shape as :func:`compare_simulation_to_reference`, keyed by
    (family, n_nodes): the dense full-word scan is frozen code measured
    in the same process, so its drift (measured/reference, clamped to at
    most 1) scales the floor down on a slow machine, while a change that
    slows only the sparse neighborhood walk leaves the anchor — and
    therefore the floor — untouched.
    """
    by_config = {
        (entry["family"], entry["n_nodes"]): entry
        for entry in reference.get("results", [])
    }
    failures: list[dict] = []
    for entry in payload["results"]:
        ref = by_config.get((entry["family"], entry["n_nodes"]))
        if ref is None:
            continue
        measured = entry["sparse_rounds_per_sec"]
        machine = min(
            1.0,
            entry["dense_rounds_per_sec"] / ref["dense_rounds_per_sec"],
        )
        floor = ref["sparse_rounds_per_sec"] * (1.0 - tolerance) * machine
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"compare {entry['family']:<11} n={entry['n_nodes']:<9,} "
            f"measured {measured:>10,.1f} rounds/s   "
            f"reference {ref['sparse_rounds_per_sec']:>10,.1f} rounds/s   "
            f"floor {floor:>10,.1f}   {verdict}"
        )
        if measured < floor:
            failures.append(entry)
    return failures


def check_network_against_reference(
    payload: dict, reference: dict, tolerance: float, attempts: int = 3
) -> list[str]:
    """``compare_network_to_reference`` with transient-miss retries.

    Mirrors :func:`check_simulation_against_reference`: configurations
    missing the floor re-measure the guarded quantity (sparse path only)
    and keep their best-of across attempts, so one background-load dip
    is not reported while a genuine slowdown still fails every attempt.
    Correctness canaries fail immediately — they are not timing noise.
    """
    messages = [
        f"{entry['family']} n={entry['n_nodes']}: local-broadcast canary "
        f"trial produced a wrong output"
        for entry in payload["results"]
        if entry.get("lb_correct") is False
    ]
    repeats = payload["repeats"]
    failures: list[dict] = []
    for attempt in range(attempts):
        failures = compare_network_to_reference(payload, reference, tolerance)
        if not failures:
            return messages
        if attempt == attempts - 1:
            break
        print(f"re-measuring {len(failures)} config(s) that missed the floor")
        for entry in failures:
            rate = _remeasure_network_sparse(entry, repeats)
            entry["sparse_rounds_per_sec"] = max(
                entry["sparse_rounds_per_sec"], round(rate, 1)
            )
            entry["speedup"] = round(
                entry["sparse_rounds_per_sec"]
                / entry["dense_rounds_per_sec"],
                1,
            )
    by_config = {
        (entry["family"], entry["n_nodes"]): entry
        for entry in reference.get("results", [])
    }
    for entry in failures:
        ref = by_config[(entry["family"], entry["n_nodes"])]
        machine = min(
            1.0,
            entry["dense_rounds_per_sec"] / ref["dense_rounds_per_sec"],
        )
        messages.append(
            f"{entry['family']} n={entry['n_nodes']}: "
            f"{entry['sparse_rounds_per_sec']:,} rounds/s < "
            f"{ref['sparse_rounds_per_sec'] * (1 - tolerance) * machine:,.1f}"
            f" rounds/s (reference - {tolerance:.0%}, machine x{machine:.2f})"
        )
    return messages


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Engine throughput benchmark (fast path vs seed loop)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer trials / shorter protocols (CI smoke mode)",
    )
    parser.add_argument(
        "--simulation",
        action="store_true",
        help=(
            "benchmark end-to-end simulations (token vs dense scheduling) "
            "instead of raw engine throughput"
        ),
    )
    parser.add_argument(
        "--vectorized",
        action="store_true",
        help=(
            "benchmark the trial-batched vectorized backend against the "
            "scalar token engine (requires numpy)"
        ),
    )
    parser.add_argument(
        "--network",
        action="store_true",
        help=(
            "benchmark the graph-topology beeping engine (sparse vs "
            "dense rounds, local-broadcast overhead curve) over grid, "
            "geometric and scale-free families"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "where to write the JSON results (default: "
            "results/BENCH_engine.json, or results/BENCH_simulation.json "
            "with --simulation)"
        ),
    )
    parser.add_argument(
        "--compare",
        metavar="REFERENCE_JSON",
        help=(
            "fail if fast-path throughput regresses more than --tolerance "
            "below this reference results file"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed relative throughput drop for --compare (default 0.05)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help=(
            "wall-clock seconds per --vectorized configuration (trial "
            "counts) or per --network dense anchor (round counts); "
            "default: 1.0, or 0.4 / 0.3 with --quick"
        ),
    )
    args = parser.parse_args()
    # Read the reference before running: --compare and --output may name
    # the same file, and the write below would clobber it.
    reference = (
        json.loads(Path(args.compare).read_text()) if args.compare else None
    )
    if args.network:
        payload = run_network_benchmark(
            quick=args.quick, budget_s=args.budget
        )
        check = check_network_against_reference
        default_name = "BENCH_network.json"
    elif args.vectorized:
        payload = run_vectorized_benchmark(
            quick=args.quick, budget_s=args.budget
        )
        check = check_vectorized_against_reference
        default_name = "BENCH_vectorized.json"
    elif args.simulation:
        payload = run_simulation_benchmark(quick=args.quick)
        check = check_simulation_against_reference
        default_name = "BENCH_simulation.json"
    else:
        payload = run_engine_benchmark(quick=args.quick)
        check = check_against_reference
        default_name = "BENCH_engine.json"
    failures: list[str] = []
    if reference is not None:
        # Before writing: retries fold their best-of back into the payload.
        failures = check(payload, reference, args.tolerance)
    if args.vectorized:
        # The absolute floors apply to every run, reference or not.
        failures += check_vectorized_floors(payload)
    if args.network:
        failures += check_network_floors(payload)
    output = Path(
        args.output
        if args.output
        else Path(__file__).parent / "results" / default_name
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if failures:
        print("benchmark floors missed:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    if reference is not None:
        print(
            f"throughput within {args.tolerance:.0%} of reference "
            f"({args.compare})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
