"""E9 — Appendix D.2 ablation: hierarchical vs iterative.

Thin pytest-benchmark wrapper; the measurement sweep, its result table,
and the paper-predicted shape checks live in
:mod:`repro.experiments.e09_hierarchy`.  The wrapper runs the experiment once
(it is a Monte-Carlo harness, not a microbenchmark), persists the table
under ``benchmarks/results/`` (the artifact EXPERIMENTS.md quotes), and
asserts every shape check.
"""

from _harness import emit

from repro.experiments import run_experiment


def test_e9_hierarchy_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("E9"), rounds=1, iterations=1
    )
    emit("E9", result.table)
    result.raise_on_failure()
