"""The two-sided → one-sided reduction of Appendix A.1.2.

The paper shows every protocol over the two-sided ε=1/4 channel can be run
over the *one-sided* ε=1/3 channel given shared randomness: whenever the
parties receive a 1 they flip it to 0 with probability 1/4, using the shared
random string (so all parties flip together).  The resulting received bit has
exactly the two-sided ε=1/4 distribution:

* true OR = 1: the one-sided channel delivers 1 always; the shared flip turns
  it into 0 with probability 1/4 → error probability 1/4.  ✓
* true OR = 0: the one-sided channel delivers 1 with probability 1/3, which
  survives the down-flip with probability 3/4 → received 1 with probability
  (1/3)·(3/4) = 1/4.  ✓

:class:`SharedFlipReductionChannel` packages the construction as a channel so
any protocol written for the two-sided model runs over it unchanged; the
shared down-flip coins are modelled as a dedicated RNG stream standing in for
the parties' shared random string.  Experiment E7 verifies the distributional
identity with frequency tests.
"""

from __future__ import annotations

import random

from repro.channels.base import Channel
from repro.channels.one_sided import OneSidedNoiseChannel
from repro.errors import ConfigurationError
from repro.rng import derive_seed, ensure_rng
from repro.util.bits import BitWord

__all__ = ["SharedFlipReductionChannel"]


class SharedFlipReductionChannel(Channel):
    """One-sided ε_up channel + shared down-flip with probability ``p_down``.

    With the paper's parameters (``epsilon_up=1/3``, ``p_down=1/4``) this is
    distribution-identical to ``CorrelatedNoiseChannel(1/4)``.  The general
    construction emulates a two-sided channel with

    * Pr[receive 0 | OR = 1] = ``p_down``
    * Pr[receive 1 | OR = 0] = ``epsilon_up · (1 - p_down)``

    so a symmetric ε requires ``epsilon_up = p_down / (1 - p_down)`` and
    ``p_down = ε``.

    Args:
        epsilon_up: 0→1 flip probability of the underlying one-sided channel.
        p_down: Shared-randomness probability of flipping a received 1 to 0.
        rng: Master seed; the one-sided noise and the shared coins are
            derived as independent sub-streams.
    """

    correlated = True

    def __init__(
        self,
        epsilon_up: float = 1.0 / 3.0,
        p_down: float = 1.0 / 4.0,
        rng: random.Random | int | None = None,
    ) -> None:
        if not 0.0 <= p_down < 1.0:
            raise ConfigurationError(f"p_down must be in [0, 1), got {p_down}")
        master = ensure_rng(rng)
        # Derive two decorrelated streams from one master seed so the
        # channel noise and the "shared random string" are independent.
        base_seed = master.getrandbits(64)
        super().__init__(derive_seed(base_seed, "shared-flip"))
        self.inner = OneSidedNoiseChannel(
            epsilon_up, rng=derive_seed(base_seed, "one-sided-noise")
        )
        self.epsilon_up = epsilon_up
        self.p_down = p_down

    @property
    def emulated_epsilon(self) -> tuple[float, float]:
        """(Pr[1→0], Pr[0→1]) of the emulated two-sided channel."""
        return (self.p_down, self.epsilon_up * (1.0 - self.p_down))

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        inner_outcome = self.inner.transmit(
            (or_value,) + (0,) * (n_parties - 1) if n_parties > 1 else (or_value,)
        )
        received = inner_outcome.common
        if received == 1 and self._next_noise_float() < self.p_down:
            received = 0
        return (received,) * n_parties

    def _deliver_shared(self, or_value: int) -> int:
        # Drive the inner one-sided channel through its own fast path so
        # neither layer builds a per-party tuple; inner stats accumulate
        # exactly as a width-1 transmit would record them.
        received = self.inner.transmit_shared(or_value, or_value)
        if received == 1 and self._next_noise_float() < self.p_down:
            received = 0
        return received

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedFlipReductionChannel(epsilon_up={self.epsilon_up}, "
            f"p_down={self.p_down})"
        )
