"""Independent per-party noise (§1.2).

Each party receives its *own* ε-noisy copy of the round's OR, so different
parties may witness different transcripts.  The paper's upper bound
(Theorem 1.2) still applies in this model, but the lower bound proof breaks
— indeed the paper conjectures the hard instance admits an O(log log n)
simulation here.  Experiment E7 contrasts the two noise models empirically.
"""

from __future__ import annotations

import random

from repro.channels.base import Channel
from repro.errors import ConfigurationError
from repro.util.bits import BitWord

__all__ = ["IndependentNoiseChannel"]


class IndependentNoiseChannel(Channel):
    """Every party independently receives ``OR ⊕ N_ε``.

    ``correlated`` is False: protocol code requiring a shared transcript
    (e.g. the owners phase bookkeeping) must tolerate divergent views or
    refuse to run over this channel.
    """

    correlated = False

    def __init__(
        self, epsilon: float, rng: random.Random | int | None = None
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1), got {epsilon}"
            )
        super().__init__(rng)
        self.epsilon = epsilon

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        # One block-buffered draw per party, in party order — the seed
        # engine's exact draw sequence.
        next_float = self._next_noise_float
        epsilon = self.epsilon
        return tuple(
            or_value ^ 1 if next_float() < epsilon else or_value
            for _ in range(n_parties)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndependentNoiseChannel(epsilon={self.epsilon})"
