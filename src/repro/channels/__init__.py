"""Beeping-channel substrate.

The beeping channel combines the bits beeped by the ``n`` parties with OR and
delivers (a possibly noisy version of) the result back to every party.  This
subpackage implements every channel variant the paper discusses:

* :class:`NoiselessChannel` — the classic beeping model [CK10].
* :class:`CorrelatedNoiseChannel` — the paper's main model: the OR is flipped
  with probability ε and *all* parties receive the same flipped bit.
* :class:`OneSidedNoiseChannel` — noise only turns silence into a beep
  (0→1); the model in which the lower bound (Theorem C.1) is proved.
* :class:`SuppressionNoiseChannel` — the mirror image (1→0 only), for which
  the paper notes a constant-overhead simulation exists.
* :class:`IndependentNoiseChannel` — every party receives its own
  independently ε-flipped copy of the OR (§1.2).
* :class:`CorrectingAdversaryChannel` — a two-sided channel plus an adversary
  that "corrects" a chosen direction of flips (the A.1.2 thought experiment).
* :class:`SharedFlipReductionChannel` — the A.1.2 reduction: a one-sided
  ε=1/3 channel plus shared-randomness down-flips, statistically identical to
  a two-sided ε=1/4 channel.
* :class:`BurstNoiseChannel` — Gilbert–Elliott bursty correlated noise,
  modelling §1.2's "global interferences" arriving in runs.
"""

from repro.channels.base import Channel, RoundOutcome
from repro.channels.stats import ChannelStats
from repro.channels.noiseless import NoiselessChannel
from repro.channels.correlated import CorrelatedNoiseChannel
from repro.channels.one_sided import OneSidedNoiseChannel, SuppressionNoiseChannel
from repro.channels.independent import IndependentNoiseChannel
from repro.channels.adversarial import (
    BudgetedAdversaryChannel,
    CorrectingAdversaryChannel,
)
from repro.channels.reduction import SharedFlipReductionChannel
from repro.channels.burst import BurstNoiseChannel
from repro.channels.scripted import ScriptedChannel

__all__ = [
    "Channel",
    "RoundOutcome",
    "ChannelStats",
    "NoiselessChannel",
    "CorrelatedNoiseChannel",
    "OneSidedNoiseChannel",
    "SuppressionNoiseChannel",
    "IndependentNoiseChannel",
    "CorrectingAdversaryChannel",
    "BudgetedAdversaryChannel",
    "SharedFlipReductionChannel",
    "BurstNoiseChannel",
    "ScriptedChannel",
]
