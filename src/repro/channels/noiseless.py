"""The classic noiseless beeping channel [CK10].

Every party receives exactly the OR of the beeped bits.  This is the model in
which the protocols being simulated are designed, and the ε=0 special case of
every noisy channel in this package.
"""

from __future__ import annotations

from repro.channels.base import Channel
from repro.util.bits import BitWord

__all__ = ["NoiselessChannel"]


class NoiselessChannel(Channel):
    """Delivers the true OR to every party, always."""

    correlated = True

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        return (or_value,) * n_parties

    def _deliver_shared(self, or_value: int) -> int:
        return or_value

    def _deliver_shared_run(self, or_value: int, count: int) -> bytes:
        return (b"\x01" if or_value else b"\x00") * count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NoiselessChannel()"
