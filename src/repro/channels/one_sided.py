"""One-sided noise channels (Appendix A.1.2).

The paper's lower bound is proved in the *one-sided* model, where noise can
only turn silence into a beep (0→1): when at least one party beeps, the round
is delivered faithfully; when all are silent, the parties receive 1 with
probability ε.  A received 0 is therefore always trustworthy — every party
can be certain all parties beeped 0 — which is exactly the property the
feasible-set machinery of the lower bound exploits.

The mirror-image :class:`SuppressionNoiseChannel` (1→0 only) is also
implemented: the paper observes (§1.1) that this direction of noise is *easy*
— a constant-overhead simulation exists — because the party whose beep was
suppressed always detects the error itself.  The asymmetry between the two is
the conceptual heart of the paper and is measured by experiment E3.
"""

from __future__ import annotations

import random

from repro.channels.base import Channel
from repro.errors import ConfigurationError
from repro.util.bits import BitWord

__all__ = ["OneSidedNoiseChannel", "SuppressionNoiseChannel"]


class OneSidedNoiseChannel(Channel):
    """Noise flips 0→1 only: ``π_m = OR`` if ``OR = 1``, else ``N_ε``.

    This is the model of Theorem C.1; a received 0 is always correct.
    """

    correlated = True

    def __init__(
        self, epsilon: float, rng: random.Random | int | None = None
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1), got {epsilon}"
            )
        super().__init__(rng)
        self.epsilon = epsilon

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        if or_value == 1:
            received = 1
        else:
            received = 1 if self._next_noise_float() < self.epsilon else 0
        return (received,) * n_parties

    def _deliver_shared(self, or_value: int) -> int:
        # A beep always gets through; only silent rounds draw noise (the
        # same data-dependent draw sequence as _deliver).
        if or_value == 1:
            return 1
        return 1 if self._next_noise_float() < self.epsilon else 0

    def _deliver_shared_run(self, or_value: int, count: int) -> bytes:
        # Beeping runs pass through draw-free; silent runs consume one
        # draw per round from the float blocks, same order as per-round.
        if or_value == 1:
            return b"\x01" * count
        epsilon = self.epsilon
        received = bytearray()
        extend = received.extend
        while count:
            pos = self._noise_pos
            floats = self._noise_floats
            if pos >= len(floats):
                rand = self._rng.random
                floats = [rand() for _ in range(self._NOISE_BLOCK)]
                self._noise_floats = floats
                pos = 0
            take = len(floats) - pos
            if take > count:
                take = count
            end = pos + take
            extend(
                1 if value < epsilon else 0 for value in floats[pos:end]
            )
            self._noise_pos = end
            count -= take
        return bytes(received)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OneSidedNoiseChannel(epsilon={self.epsilon})"


class SuppressionNoiseChannel(Channel):
    """Noise flips 1→0 only: a beep may be suppressed, silence never lies.

    A received 1 is always correct, so any party whose beep disappeared can
    raise a trustworthy alarm — the property behind the constant-overhead
    simulation (experiment E3).
    """

    correlated = True

    def __init__(
        self, epsilon: float, rng: random.Random | int | None = None
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1), got {epsilon}"
            )
        super().__init__(rng)
        self.epsilon = epsilon

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        if or_value == 0:
            received = 0
        else:
            received = 0 if self._next_noise_float() < self.epsilon else 1
        return (received,) * n_parties

    def _deliver_shared(self, or_value: int) -> int:
        # Silence is never flipped; only beeping rounds draw noise.
        if or_value == 0:
            return 0
        return 0 if self._next_noise_float() < self.epsilon else 1

    def _deliver_shared_run(self, or_value: int, count: int) -> bytes:
        # Silent runs pass through draw-free; beeping runs consume one
        # draw per round from the float blocks, same order as per-round.
        if or_value == 0:
            return b"\x00" * count
        epsilon = self.epsilon
        received = bytearray()
        extend = received.extend
        while count:
            pos = self._noise_pos
            floats = self._noise_floats
            if pos >= len(floats):
                rand = self._rng.random
                floats = [rand() for _ in range(self._NOISE_BLOCK)]
                self._noise_floats = floats
                pos = 0
            take = len(floats) - pos
            if take > count:
                take = count
            end = pos + take
            extend(
                0 if value < epsilon else 1 for value in floats[pos:end]
            )
            self._noise_pos = end
            count -= take
        return bytes(received)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SuppressionNoiseChannel(epsilon={self.epsilon})"
