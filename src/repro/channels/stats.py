"""Per-channel execution statistics.

Channels record one entry per transmitted round.  The counters here drive the
benchmark tables (rounds used, noise events observed, beep energy) and make
tests of the noise distribution straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ChannelStats"]


@dataclass
class ChannelStats:
    """Aggregate counters for a channel's lifetime.

    Attributes:
        rounds: Total rounds transmitted.
        beeps_sent: Total number of 1-bits beeped by parties (energy).
        or_ones: Rounds whose true OR was 1.
        flips_up: Rounds in which noise turned a 0 into a received 1
            (for independent noise: number of *party receptions* flipped up).
        flips_down: Rounds in which noise turned a 1 into a received 0
            (same convention for independent noise).
    """

    rounds: int = 0
    beeps_sent: int = 0
    or_ones: int = 0
    flips_up: int = 0
    flips_down: int = 0
    _history_enabled: bool = field(default=False, repr=False)

    @property
    def flips(self) -> int:
        """Total noise events (both directions)."""
        return self.flips_up + self.flips_down

    @property
    def empirical_flip_rate(self) -> float:
        """Fraction of rounds affected by noise (0.0 when no rounds ran)."""
        if self.rounds == 0:
            return 0.0
        return self.flips / self.rounds

    def record(
        self,
        beeps: int,
        or_value: int,
        flips_up: int,
        flips_down: int,
    ) -> None:
        """Record one transmitted round."""
        self.rounds += 1
        self.beeps_sent += beeps
        self.or_ones += or_value
        self.flips_up += flips_up
        self.flips_down += flips_down

    def reset(self) -> None:
        """Zero all counters (used between benchmark repetitions)."""
        self.rounds = 0
        self.beeps_sent = 0
        self.or_ones = 0
        self.flips_up = 0
        self.flips_down = 0

    def snapshot(self) -> "ChannelStats":
        """An independent copy of the current counters."""
        return ChannelStats(
            rounds=self.rounds,
            beeps_sent=self.beeps_sent,
            or_ones=self.or_ones,
            flips_up=self.flips_up,
            flips_down=self.flips_down,
        )

    @classmethod
    def observed_from_transcript(cls, transcript) -> "ChannelStats":
        """The counters a correlated channel recorded, re-derived from a
        transcript's columns.

        Uses the columnar noisy mask (``Transcript.noisy_count`` and
        friends) rather than materializing per-round records, so it is an
        O(T) byte scan.  ``flips`` equals ``noisy_count`` split by
        direction against the true-OR column; ``beeps_sent`` comes from
        the sent columns when they were recorded and is 0 otherwise
        (matching a ``record_sent=False`` execution's information
        content).  Serves as the drift tripwire between engine-reported
        stats deltas and what the transcript itself shows.

        Transcripts whose rounds all carried channel-accounted flip
        counts (network channels append them through ``append_raw``'s
        ``flips`` argument) are reconstructed from those totals, so the
        tripwire works even with divergent per-node views.  Otherwise
        raises :class:`~repro.errors.TranscriptError` for transcripts
        with divergent views (independent noise counts *per-party*
        flips, which a shared mask cannot reconstruct).
        """
        from repro.errors import TranscriptError

        if transcript._flip_accounted == len(transcript._or):
            or_column = transcript._or
            beeps_sent = 0
            if (
                transcript._sent_flat is not None
                and transcript._sent_recorded_total == len(or_column)
            ):
                beeps_sent = sum(transcript._sent_flat)
            return cls(
                rounds=len(or_column),
                beeps_sent=beeps_sent,
                or_ones=sum(or_column),
                flips_up=transcript._acc_flips_up,
                flips_down=transcript._acc_flips_down,
            )
        if transcript._divergent_total:
            raise TranscriptError(
                "observed_from_transcript needs a shared view; independent "
                "noise counts per-party flips"
            )
        or_column = transcript._or
        noisy_column = transcript._noisy
        flips = transcript.noisy_count
        flips_down = sum(
            1
            for or_value, noisy in zip(or_column, noisy_column)
            if noisy and or_value
        )
        beeps_sent = 0
        if (
            transcript._sent_flat is not None
            and transcript._sent_recorded_total == len(or_column)
        ):
            beeps_sent = sum(transcript._sent_flat)
        return cls(
            rounds=len(or_column),
            beeps_sent=beeps_sent,
            or_ones=sum(or_column),
            flips_up=flips - flips_down,
            flips_down=flips_down,
        )
