"""Adversarial channels.

Two adversaries live here:

* :class:`CorrectingAdversaryChannel` — the Appendix A.1.2 thought
  experiment: a two-sided ε-noisy channel plus an adversary who may
  *correct* (but never introduce) errors.  Correcting every 1→0 flip yields
  exactly the one-sided channel — a second way to see that a protocol
  robust against every adversary strategy cannot rely on the noise
  "helping" it in one direction.
* :class:`BudgetedAdversaryChannel` — the standard harder model of the
  interactive-coding literature (the paper's §1.3 cites a long line of
  adversarial-noise works): an adversary who may flip up to a *budget* of
  rounds, placed by a strategy of its choosing rather than by coins.
  Experiment E12 compares the stochastic guarantee the paper proves with
  what the same schemes deliver against budget-matched adversaries.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.channels.base import Channel
from repro.errors import ConfigurationError
from repro.util.bits import BitWord

__all__ = [
    "CorrectingAdversaryChannel",
    "BudgetedAdversaryChannel",
    "flip_zeros_strategy",
    "flip_ones_strategy",
    "periodic_strategy",
]

# A policy maps (or_value, noisy_received) -> corrected_received.  It may only
# move the received bit *toward* the true OR (correct), never away from it.
CorrectionPolicy = Callable[[int, int], int]


def _correct_downward_flips(or_value: int, received: int) -> int:
    """Default policy: undo every 1→0 flip (yields the one-sided channel)."""
    if or_value == 1 and received == 0:
        return 1
    return received


class CorrectingAdversaryChannel(Channel):
    """A two-sided ε-noisy channel whose errors may be adversarially corrected.

    Args:
        epsilon: Two-sided flip probability of the underlying noise.
        policy: Correction policy; defaults to correcting all 1→0 flips,
            which makes this channel distribution-identical to
            :class:`~repro.channels.one_sided.OneSidedNoiseChannel`.
        rng: Noise source.

    The constructor verifies the policy never *introduces* errors by spot
    checks on the four (or, received) combinations.
    """

    correlated = True

    def __init__(
        self,
        epsilon: float,
        policy: CorrectionPolicy | None = None,
        rng: random.Random | int | None = None,
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1), got {epsilon}"
            )
        super().__init__(rng)
        self.epsilon = epsilon
        self.policy = policy if policy is not None else _correct_downward_flips
        self._validate_policy()

    def _validate_policy(self) -> None:
        for or_value in (0, 1):
            # A faithful reception must be left alone: changing it would
            # introduce an error, which the adversary is not allowed to do.
            if self.policy(or_value, or_value) != or_value:
                raise ConfigurationError(
                    "correction policy introduces errors on faithful rounds"
                )
            flipped = 1 - or_value
            corrected = self.policy(or_value, flipped)
            if corrected not in (or_value, flipped):
                raise ConfigurationError(
                    "correction policy output must be the noisy bit "
                    "or the true OR"
                )

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        noise = 1 if self._next_noise_float() < self.epsilon else 0
        noisy = or_value ^ noise
        corrected = self.policy(or_value, noisy)
        return (corrected,) * n_parties

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CorrectingAdversaryChannel(epsilon={self.epsilon})"


# ----------------------------------------------------------------------
# Budgeted adversary
# ----------------------------------------------------------------------

# A strategy decides whether to spend one budget unit flipping this round,
# given (round_index, or_value, flips_remaining).
AdversaryStrategy = Callable[[int, int, int], bool]


def flip_zeros_strategy(round_index: int, or_value: int, budget: int) -> bool:
    """Spend the budget on silent rounds (0->1 flips) — the direction the
    paper shows is hard to verify (§2.1)."""
    return or_value == 0


def flip_ones_strategy(round_index: int, or_value: int, budget: int) -> bool:
    """Spend the budget suppressing beeps (1->0 flips) — the direction a
    victim always detects."""
    return or_value == 1


def periodic_strategy(period: int) -> AdversaryStrategy:
    """Flip every ``period``-th round regardless of its value (a burst-like
    deterministic jammer)."""
    if period < 1:
        raise ConfigurationError(f"period must be >= 1, got {period}")

    def strategy(round_index: int, or_value: int, budget: int) -> bool:
        return round_index % period == 0

    return strategy


class BudgetedAdversaryChannel(Channel):
    """An adversary flips up to ``budget`` rounds, chosen by ``strategy``.

    Args:
        budget: Maximum number of rounds the adversary may corrupt.
        strategy: Decides, round by round, whether to spend a budget unit
            (see the module-level strategies).  The adversary sees the true
            OR of the round — it is *rushing*, like the standard model.
        rng: Unused randomness slot kept for interface uniformity (the
            adversary here is deterministic given the strategy).

    The delivered bit is common to all parties (correlated model).
    """

    correlated = True

    def __init__(
        self,
        budget: int,
        strategy: AdversaryStrategy = flip_zeros_strategy,
        rng: random.Random | int | None = None,
    ) -> None:
        if budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
        super().__init__(rng)
        self.budget = budget
        self.strategy = strategy
        self.flips_spent = 0
        self._round = 0

    @property
    def flips_remaining(self) -> int:
        return self.budget - self.flips_spent

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        round_index = self._round
        self._round += 1
        received = or_value
        if self.flips_remaining > 0 and self.strategy(
            round_index, or_value, self.flips_remaining
        ):
            received = 1 - or_value
            self.flips_spent += 1
        return (received,) * n_parties

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BudgetedAdversaryChannel(budget={self.budget}, "
            f"spent={self.flips_spent})"
        )
