"""Bursty correlated noise (Gilbert–Elliott model).

The paper motivates correlated noise by *global interferences* — weather,
a contaminated environment (§1.2) — which in reality arrive in bursts, not
i.i.d. rounds.  :class:`BurstNoiseChannel` models this with the classic
Gilbert–Elliott two-state Markov chain: a *good* state with a low flip
probability and a *bad* state (the interference burst) with a high one.

The stationary flip rate is

    ``ε̄ = p_bad·ε_bad + (1 − p_bad)·ε_good``,
    ``p_bad = p_enter / (p_enter + p_exit)``,

so a burst channel can be matched in *average* noise to an i.i.d. channel
while concentrating its flips in runs of expected length ``1/p_exit`` —
the regime experiment E10 uses to probe whether the simulation schemes'
guarantees (proved for i.i.d. noise) survive temporal correlation.
Repetition-style voting is exactly what bursts attack: a burst longer than
the repetition block defeats the majority no matter how the votes are
counted, while the rewind machinery can re-simulate after the burst ends.
"""

from __future__ import annotations

import random

from repro.channels.base import Channel
from repro.errors import ConfigurationError
from repro.util.bits import BitWord

__all__ = ["BurstNoiseChannel"]


class BurstNoiseChannel(Channel):
    """Two-state Markov (Gilbert–Elliott) correlated noise.

    Args:
        epsilon_good: Flip probability in the good state.
        epsilon_bad: Flip probability inside a burst.
        p_enter: Per-round probability of entering a burst (good → bad).
        p_exit: Per-round probability of a burst ending (bad → good);
            expected burst length is ``1/p_exit`` rounds.
        rng: Noise source (drives both the state chain and the flips).

    Flips are two-sided (the OR is XOR-ed with the noise bit) and, as in
    the paper's model, delivered identically to every party.
    """

    correlated = True

    def __init__(
        self,
        epsilon_good: float,
        epsilon_bad: float,
        p_enter: float,
        p_exit: float,
        rng: random.Random | int | None = None,
    ) -> None:
        for name, value in (
            ("epsilon_good", epsilon_good),
            ("epsilon_bad", epsilon_bad),
        ):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1), got {value}"
                )
        for name, value in (("p_enter", p_enter), ("p_exit", p_exit)):
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in (0, 1], got {value}"
                )
        super().__init__(rng)
        self.epsilon_good = epsilon_good
        self.epsilon_bad = epsilon_bad
        self.p_enter = p_enter
        self.p_exit = p_exit
        self._in_burst = False
        self.burst_rounds = 0

    @property
    def stationary_bad_probability(self) -> float:
        """Long-run fraction of rounds spent inside bursts."""
        return self.p_enter / (self.p_enter + self.p_exit)

    @property
    def stationary_flip_rate(self) -> float:
        """Long-run average flip probability ``ε̄``."""
        p_bad = self.stationary_bad_probability
        return p_bad * self.epsilon_bad + (1.0 - p_bad) * self.epsilon_good

    @classmethod
    def matched_to(
        cls,
        average_epsilon: float,
        burst_length: float,
        epsilon_bad: float = 0.5,
        epsilon_good: float = 0.0,
        rng: random.Random | int | None = None,
    ) -> "BurstNoiseChannel":
        """A burst channel with a prescribed *average* flip rate.

        Args:
            average_epsilon: Target stationary flip rate ``ε̄``.
            burst_length: Expected burst length in rounds (``1/p_exit``).
            epsilon_bad: Flip probability inside bursts (default: 1/2, a
                fully-garbled burst).
            epsilon_good: Flip probability outside bursts (default: clean).
            rng: Noise source.

        Solves for ``p_enter`` from the stationary equation; requires
        ``epsilon_good ≤ average_epsilon < epsilon_bad``.
        """
        if burst_length < 1.0:
            raise ConfigurationError(
                f"burst_length must be >= 1, got {burst_length}"
            )
        if not epsilon_good <= average_epsilon < epsilon_bad:
            raise ConfigurationError(
                "need epsilon_good <= average_epsilon < epsilon_bad "
                f"(got {epsilon_good}, {average_epsilon}, {epsilon_bad})"
            )
        p_exit = 1.0 / burst_length
        # p_bad = (avg - good) / (bad - good); p_enter from stationarity.
        p_bad = (average_epsilon - epsilon_good) / (
            epsilon_bad - epsilon_good
        )
        if p_bad >= 1.0:
            raise ConfigurationError(
                "average noise unreachable with these state parameters"
            )
        if p_bad == 0.0:
            raise ConfigurationError(
                "average_epsilon equals epsilon_good; use a plain "
                "CorrelatedNoiseChannel instead"
            )
        p_enter = p_exit * p_bad / (1.0 - p_bad)
        return cls(
            epsilon_good=epsilon_good,
            epsilon_bad=epsilon_bad,
            p_enter=min(p_enter, 1.0),
            p_exit=p_exit,
            rng=rng,
        )

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        # Advance the interference state, then flip at the state's rate.
        # Both draws come from the block-buffered stream, in the seed
        # engine's order: state transition first, then the noise coin.
        if self._in_burst:
            if self._next_noise_float() < self.p_exit:
                self._in_burst = False
        else:
            if self._next_noise_float() < self.p_enter:
                self._in_burst = True
        if self._in_burst:
            self.burst_rounds += 1
        epsilon = self.epsilon_bad if self._in_burst else self.epsilon_good
        noise = 1 if self._next_noise_float() < epsilon else 0
        return (or_value ^ noise,) * n_parties

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BurstNoiseChannel(good={self.epsilon_good}, "
            f"bad={self.epsilon_bad}, enter={self.p_enter}, "
            f"exit={self.p_exit})"
        )
