"""Abstract channel interface.

A channel is the only shared medium in the beeping model.  Its one operation,
:meth:`Channel.transmit`, takes the bits beeped by the parties in a round and
returns a :class:`RoundOutcome` describing what each party received.

Channels own their randomness: each instance carries its own
:class:`random.Random`, seeded at construction, so that an execution is fully
reproducible from ``(protocol seed, channel seed)``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.channels.stats import ChannelStats
from repro.errors import ChannelError, TranscriptError
from repro.rng import ensure_rng
from repro.util.bits import BitWord, or_reduce, validate_bits

__all__ = ["Channel", "RoundOutcome"]


@dataclass(frozen=True)
class RoundOutcome:
    """Everything observable about one channel round.

    Attributes:
        or_value: The true OR of the beeped bits (before noise).
        received: Per-party received bits, one per party.  For correlated
            channels all entries are equal.
        flips: Optional accounted noise counts ``(flips_up, flips_down)``
            for the round.  Channels whose clean reference differs from
            the global OR (graph topologies, where each party's clean
            reception is its *neighborhood* OR) set this so that noise is
            judged against the right baseline; when absent, ``noisy``
            falls back to comparing receptions with ``or_value``.
    """

    or_value: int
    received: BitWord
    flips: tuple[int, int] | None = None

    @property
    def common(self) -> int:
        """The single received bit, valid only when all parties agree.

        Raises :class:`TranscriptError` when the views diverge (which can
        only happen under independent noise); code written for the
        correlated model should use this accessor so that accidentally
        running it over an independent-noise channel fails loudly.
        """
        first = self.received[0]
        for bit in self.received:
            if bit != first:
                raise TranscriptError(
                    "received bits diverge across parties; no common view"
                )
        return first

    @property
    def noisy(self) -> bool:
        """True when noise altered at least one party's reception.

        With accounted ``flips`` (set by topology-aware channels) this is
        exact; otherwise a party reception differing from the global OR
        counts, which is correct for every single-hop channel.
        """
        if self.flips is not None:
            return self.flips[0] + self.flips[1] > 0
        return any(bit != self.or_value for bit in self.received)


class Channel(ABC):
    """Base class for all beeping channels.

    Subclasses implement :meth:`_deliver`, mapping the true OR of a round to
    the tuple of received bits.  ``transmit`` validates inputs, computes the
    OR, delegates to ``_deliver`` and records statistics.

    Correlated channels additionally expose the block interface used by the
    engine's fast path: :meth:`transmit_shared` returns the single shared
    received bit (every party's view) without ever building the
    ``(bit,) * n`` received tuple or a :class:`RoundOutcome`.  Channels
    whose noise is driven by uniform draws consume them through
    :meth:`_next_noise_float`, which pre-draws ``random()`` values in
    fixed-size blocks.  The *call sequence* into the underlying
    :class:`random.Random` is the per-round sequence of the seed engine
    (one ``random()`` per decision, in the same order), so delivered bits
    are bitwise identical to per-round drawing for any seed.

    Attributes:
        correlated: True when all parties are guaranteed identical views.
            Protocol code that relies on a shared transcript asserts this.
        stats: Lifetime counters; see :class:`ChannelStats`.
    """

    correlated: bool = True

    #: Uniform draws pre-drawn per block; amortizes RNG attribute lookups
    #: over the Monte-Carlo hot loop without changing the draw sequence.
    _NOISE_BLOCK = 1024

    def __init__(self, rng: random.Random | int | None = None) -> None:
        self._rng = ensure_rng(rng)
        self._noise_floats: list[float] = []
        self._noise_pos = 0
        self.stats = ChannelStats()

    @abstractmethod
    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        """Map the true OR to the per-party received bits."""

    def _next_noise_float(self) -> float:
        """Next uniform draw from the block-buffered noise stream."""
        pos = self._noise_pos
        floats = self._noise_floats
        if pos >= len(floats):
            rand = self._rng.random
            floats = [rand() for _ in range(self._NOISE_BLOCK)]
            self._noise_floats = floats
            pos = 0
        self._noise_pos = pos + 1
        return floats[pos]

    def _deliver_shared(self, or_value: int) -> int:
        """The shared received bit for one round (correlated channels).

        Default: delegate to :meth:`_deliver` for a single party, which is
        draw-order identical for every correlated channel here (their
        randomness never depends on the party count).  Hot channels
        override this to skip the 1-tuple entirely.
        """
        return self._deliver(or_value, 1)[0]

    def transmit_shared(self, or_value: int, beeps: int) -> int:
        """Fast-path transmit for correlated channels — the block interface.

        The engine computes the round's true OR and beep count in its
        per-party collection loop, so this entry point skips bit
        revalidation and the OR reduction, delivers one shared bit via
        :meth:`_deliver_shared`, and records the exact statistics
        :meth:`transmit` would have recorded.

        Args:
            or_value: True OR of the round's (already validated) bits.
            beeps: Number of 1-bits beeped this round.

        Returns:
            The single received bit every party observes.

        Raises:
            ChannelError: When called on a non-correlated channel (whose
                per-party views cannot be summarized by one bit).
        """
        if not self.correlated:
            raise ChannelError(
                "transmit_shared() requires a correlated channel; use "
                "transmit() for per-party views"
            )
        received = self._deliver_shared(or_value)
        stats = self.stats
        stats.rounds += 1
        stats.beeps_sent += beeps
        stats.or_ones += or_value
        if received != or_value:
            # One shared noise event per round, counted once.
            if or_value:
                stats.flips_down += 1
            else:
                stats.flips_up += 1
        return received

    def _deliver_shared_run(self, or_value: int, count: int) -> bytes:
        """Shared received bits for ``count`` rounds with the same true OR.

        Default: ``count`` sequential :meth:`_deliver_shared` calls, which
        is draw-order identical to per-round transmission for every
        channel (including stateful ones — each round's decision happens
        in order).  Hot channels override this with a block loop over the
        buffered noise floats.
        """
        deliver = self._deliver_shared
        return bytes(bytearray(deliver(or_value) for _ in range(count)))

    def transmit_shared_run(
        self, or_value: int, beeps: int, count: int
    ) -> bytes:
        """Run-batched :meth:`transmit_shared`: ``count`` rounds in which
        the sent bits (hence the true OR and beep count) are constant.

        The engine's sparse scheduler calls this when every unfinished
        party is asleep inside a batch token.  Statistics are recorded
        exactly as ``count`` individual ``transmit_shared`` calls would
        record them, and the delivered bits consume the same RNG draws in
        the same order.

        Args:
            or_value: True OR of each round in the run.
            beeps: Number of 1-bits beeped in each round of the run.
            count: Number of rounds; must be >= 1.

        Returns:
            The shared received bit of each round, as ``bytes``.

        Raises:
            ChannelError: When called on a non-correlated channel.
        """
        if not self.correlated:
            raise ChannelError(
                "transmit_shared_run() requires a correlated channel; use "
                "transmit() for per-party views"
            )
        received = self._deliver_shared_run(or_value, count)
        stats = self.stats
        stats.rounds += count
        stats.beeps_sent += beeps * count
        stats.or_ones += or_value * count
        flipped = (count - received.count(1)) if or_value else received.count(1)
        if or_value:
            stats.flips_down += flipped
        else:
            stats.flips_up += flipped
        return received

    def transmit(self, bits: Sequence[int]) -> RoundOutcome:
        """Transmit one round: combine ``bits`` with OR, apply noise.

        Args:
            bits: One bit per party (length defines the party count for the
                round).  Must be non-empty.

        Returns:
            The :class:`RoundOutcome` with the true OR and per-party views.
        """
        word = validate_bits(bits)
        if not word:
            raise ChannelError("transmit() needs at least one party")
        or_value = or_reduce(word)
        received = self._deliver(or_value, len(word))
        if self.correlated:
            # One shared noise event per round, counted once.
            flipped = received[0] != or_value
            flips_up = 1 if flipped and or_value == 0 else 0
            flips_down = 1 if flipped and or_value == 1 else 0
        else:
            # Independent noise: count per-party reception flips.
            flips_up = sum(1 for bit in received if bit == 1 and or_value == 0)
            flips_down = sum(1 for bit in received if bit == 0 and or_value == 1)
        self.stats.record(
            beeps=sum(word),
            or_value=or_value,
            flips_up=flips_up,
            flips_down=flips_down,
        )
        return RoundOutcome(or_value=or_value, received=received)

    def reset_stats(self) -> None:
        """Clear the statistics counters without touching the noise stream."""
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
