"""The paper's main model: the ε-noisy beeping channel with correlated noise.

In every round the channel computes the OR of the beeped bits and XORs it
with an independent ε-noisy bit ``N_ε`` (``N_ε = 1`` with probability ε).
Crucially, *all* parties receive the same (possibly flipped) bit, so the
parties always share a transcript — the defining feature of correlated noise
(Appendix A.1.1).
"""

from __future__ import annotations

import random

from repro.channels.base import Channel
from repro.errors import ConfigurationError
from repro.util.bits import BitWord

__all__ = ["CorrelatedNoiseChannel"]


class CorrelatedNoiseChannel(Channel):
    """ε-noisy beeping channel: ``π_m = N_ε ⊕ OR(bits)``, shared by all.

    Args:
        epsilon: Flip probability per round; must lie in ``[0, 1)``.  The
            paper's lower bound fixes ε = 1/3 for exposition.
        rng: Noise source (seed, generator, or ``None`` for nondeterministic).
    """

    correlated = True

    def __init__(
        self, epsilon: float, rng: random.Random | int | None = None
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1), got {epsilon}"
            )
        super().__init__(rng)
        self.epsilon = epsilon

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        noise = 1 if self._next_noise_float() < self.epsilon else 0
        return (or_value ^ noise,) * n_parties

    def _deliver_shared(self, or_value: int) -> int:
        # The engine's hot path: block-buffered draw, inlined to avoid a
        # second function call per round.  Same draw sequence as _deliver.
        pos = self._noise_pos
        floats = self._noise_floats
        if pos >= len(floats):
            rand = self._rng.random
            floats = [rand() for _ in range(self._NOISE_BLOCK)]
            self._noise_floats = floats
            pos = 0
        self._noise_pos = pos + 1
        if floats[pos] < self.epsilon:
            return or_value ^ 1
        return or_value

    def _deliver_shared_run(self, or_value: int, count: int) -> bytes:
        # Run-batched delivery for the sparse scheduler: slices the
        # buffered float blocks directly, consuming exactly the draws (and
        # the order) of ``count`` _deliver_shared calls.
        epsilon = self.epsilon
        flipped = or_value ^ 1
        received = bytearray()
        extend = received.extend
        while count:
            pos = self._noise_pos
            floats = self._noise_floats
            if pos >= len(floats):
                rand = self._rng.random
                floats = [rand() for _ in range(self._NOISE_BLOCK)]
                self._noise_floats = floats
                pos = 0
            take = len(floats) - pos
            if take > count:
                take = count
            end = pos + take
            extend(
                flipped if value < epsilon else or_value
                for value in floats[pos:end]
            )
            self._noise_pos = end
            count -= take
        return bytes(received)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CorrelatedNoiseChannel(epsilon={self.epsilon})"
