"""Deterministic, scripted noise — fault injection for tests.

Statistical tests tell you a scheme *usually* survives noise; scripted
noise lets a test place one flip at an exact round and assert precisely
what the scheme does with it (a retry, a rewind, an owner mismatch).  The
engine and simulators treat :class:`ScriptedChannel` like any other
correlated channel.

Two scripting modes:

* ``flip_rounds`` — a set of absolute round indices (0-based, counted over
  the channel's lifetime) whose delivered bit is inverted;
* ``pattern`` — an explicit 0/1 noise pattern, XOR-ed round by round
  (shorter patterns leave later rounds clean; this is the "noise tape"
  view of the A.1.1 definition).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.channels.base import Channel
from repro.errors import ConfigurationError
from repro.util.bits import BitWord, validate_bits

__all__ = ["ScriptedChannel"]


class ScriptedChannel(Channel):
    """Correlated channel whose noise is a fixed script, not a coin.

    Args:
        flip_rounds: Round indices to invert (mutually exclusive with
            ``pattern``).
        pattern: Explicit per-round noise bits to XOR in.
        one_sided_up: Restrict flips to 0→1 (a scripted version of the
            one-sided model): a scheduled flip on a round whose OR is 1 is
            suppressed.
        one_sided_down: Restrict flips to 1→0 (scripted suppression noise).
    """

    correlated = True

    def __init__(
        self,
        flip_rounds: Iterable[int] | None = None,
        pattern: Sequence[int] | None = None,
        *,
        one_sided_up: bool = False,
        one_sided_down: bool = False,
    ) -> None:
        if (flip_rounds is None) == (pattern is None):
            raise ConfigurationError(
                "provide exactly one of flip_rounds or pattern"
            )
        if one_sided_up and one_sided_down:
            raise ConfigurationError(
                "a flip cannot be both 0->1-only and 1->0-only"
            )
        super().__init__(rng=0)
        if flip_rounds is not None:
            self.flip_rounds = frozenset(int(r) for r in flip_rounds)
            if any(r < 0 for r in self.flip_rounds):
                raise ConfigurationError("round indices must be >= 0")
            self.pattern: BitWord | None = None
        else:
            self.pattern = validate_bits(pattern or ())
            self.flip_rounds = frozenset()
        self.one_sided_up = one_sided_up
        self.one_sided_down = one_sided_down
        self._round = 0

    def _scheduled(self, round_index: int) -> bool:
        if self.pattern is not None:
            return (
                round_index < len(self.pattern)
                and self.pattern[round_index] == 1
            )
        return round_index in self.flip_rounds

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        flip = self._scheduled(self._round)
        self._round += 1
        if flip and self.one_sided_up and or_value == 1:
            flip = False
        if flip and self.one_sided_down and or_value == 0:
            flip = False
        received = or_value ^ (1 if flip else 0)
        return (received,) * n_parties

    @property
    def rounds_elapsed(self) -> int:
        """How many rounds this channel has carried."""
        return self._round
