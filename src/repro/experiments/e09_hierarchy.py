"""E9 — Appendix D.2 ablation: hierarchical A_l vs iterative chunk-commit."""

from __future__ import annotations

from repro.analysis import estimate_success, fit_log, format_table
from repro.channels import CorrelatedNoiseChannel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation import ChunkCommitSimulator, HierarchicalSimulator
from repro.tasks import InputSetTask

ID = "E9"
TITLE = "Appendix D.2 ablation: hierarchical vs iterative"

NS = (4, 8, 16, 32)
EPSILON = 0.15
TRIALS = 8


def _point(n, simulator, trials, seed):
    task = InputSetTask(n)

    def executor(inputs, trial_seed):
        channel = CorrelatedNoiseChannel(EPSILON, rng=trial_seed)
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )

    return estimate_success(task, executor, trials=trials, seed=seed)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(3, round(TRIALS * scale))
    rows = []
    iter_success, hier_success = [], []
    iter_overhead, hier_overhead = [], []
    for n in NS:
        iterative = _point(
            n, ChunkCommitSimulator(), trials, seed=seed + 3 * n
        )
        hierarchical = _point(
            n, HierarchicalSimulator(), trials, seed=seed + 5 * n
        )
        iter_success.append(iterative.success.value)
        hier_success.append(hierarchical.success.value)
        iter_overhead.append(iterative.mean_overhead)
        hier_overhead.append(hierarchical.mean_overhead)
        rows.append(
            [
                n,
                f"{iterative.success.value:.2f}",
                f"{iterative.mean_overhead:.1f}",
                f"{hierarchical.success.value:.2f}",
                f"{hierarchical.mean_overhead:.1f}",
            ]
        )
    iter_fit = fit_log(list(NS), iter_overhead)
    hier_fit = fit_log(list(NS), hier_overhead)
    table = format_table(
        [
            "n",
            "iterative success",
            "overhead",
            "hierarchical success",
            "overhead",
        ],
        rows,
        title=(
            f"E9  Theorem 1.2 implementations head-to-head "
            f"(epsilon={EPSILON}, {trials} trials/point)"
        ),
    )
    table += (
        f"\niterative    overhead log-slope: {iter_fit.slope:.1f}"
        f"\nhierarchical overhead log-slope: {hier_fit.slope:.1f}"
    )
    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "ns": list(NS),
            "iter_overhead": iter_overhead,
            "hier_overhead": hier_overhead,
        },
    )
    result.check(
        "iterative variant succeeds everywhere (>= 0.8)",
        min(iter_success) >= 0.8,
    )
    result.check(
        "hierarchical variant succeeds everywhere (>= 0.8)",
        min(hier_success) >= 0.8,
    )
    result.check("iterative overhead is log-shaped", iter_fit.slope > 5.0)
    result.check(
        "hierarchical overhead is log-shaped", hier_fit.slope > 5.0
    )
    result.check(
        "the two overheads are within a small constant factor",
        all(
            0.4 <= hierarchical / iterative <= 2.5
            for iterative, hierarchical in zip(
                iter_overhead, hier_overhead
            )
        ),
    )
    return result
