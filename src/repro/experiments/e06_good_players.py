"""E6 — Lemmas B.8 + C.5: good players abound for short protocols."""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.channels import OneSidedNoiseChannel
from repro.core import run_protocol
from repro.experiments.base import ExperimentResult, validate_scale
from repro.lowerbound.feasible import feasible_sizes
from repro.lowerbound.good_players import (
    large_feasible_players,
    lemma_b8_bound,
    sample_unique_counts,
    unique_input_players,
)
from repro.tasks import InputSetTask
from repro.tasks.input_set import input_set_formal_protocol

ID = "E6"
TITLE = "Lemmas B.8+C.5: good players abound"

NS = (8, 16, 32)
EPSILON = 1.0 / 3.0
B8_TRIALS = 2000
EXEC_TRIALS = 40


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    b8_trials = max(200, round(B8_TRIALS * scale))
    exec_trials = max(10, round(EXEC_TRIALS * scale))

    b8_rows = []
    margins = []
    for n in NS:
        counts = sample_unique_counts(
            n, 2 * n, trials=b8_trials, rng=seed + n
        )
        tail = sum(1 for c in counts if c <= n / 3) / len(counts)
        bound = lemma_b8_bound(n, 2 * n)
        mean_unique = sum(counts) / len(counts) / n
        margins.append(bound - tail)
        b8_rows.append(
            [n, f"{mean_unique:.3f}", f"{tail:.4f}", f"{bound:.3f}"]
        )

    gp_rows = []
    good_rates = []
    for n in NS:
        task = InputSetTask(n)
        formal = input_set_formal_protocol(n)
        good_event = 0
        mean_feasible = 0.0
        for trial in range(exec_trials):
            inputs = task.sample_inputs(random.Random(seed + 1000 + trial))
            channel = OneSidedNoiseChannel(
                EPSILON, rng=seed + 2000 + trial
            )
            result = run_protocol(
                task.noiseless_protocol(), inputs, channel
            )
            pi = result.transcript.common_view()
            sizes = feasible_sizes(formal, pi)
            mean_feasible += sum(sizes) / len(sizes)
            good = unique_input_players(inputs) & large_feasible_players(
                formal, pi
            )
            good_event += len(good) >= n / 4
        good_rates.append(good_event / exec_trials)
        gp_rows.append(
            [
                n,
                f"{mean_feasible / exec_trials:.1f}",
                2 * n,
                f"{good_event / exec_trials:.2f}",
            ]
        )

    table = format_table(
        ["n", "mean unique frac", "Pr[|I| <= n/3]", "B.8 bound"],
        b8_rows,
        title=f"E6a  Lemma B.8 Monte Carlo ({b8_trials} trials/point)",
    )
    table += "\n\n" + format_table(
        ["n", "mean |S^i(pi)|", "universe 2n", "Pr[|G| >= n/4]"],
        gp_rows,
        title=(
            "E6b  good players after noisy InputSet executions "
            f"(one-sided epsilon=1/3, {exec_trials} trials/point)"
        ),
    )
    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "ns": list(NS),
            "b8_margins": margins,
            "good_rates": good_rates,
        },
    )
    result.check(
        "Lemma B.8 bound respected with margin",
        all(margin > 0 for margin in margins),
    )
    result.check(
        "good event far above Lemma C.5's 1/3 floor",
        all(rate >= 1 / 3 for rate in good_rates),
    )
    return result
