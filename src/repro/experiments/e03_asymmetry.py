"""E3 — §1.1 asymmetry: 1→0 noise is constant-overhead simulable, 0→1 not.

The rewind scheme over suppression noise succeeds at an overhead flat in
n; the identical scheme under 0→1 noise degrades; the chunk-commit scheme
restores success under 0→1 noise at a Θ(log n) overhead.
"""

from __future__ import annotations

from repro.analysis import estimate_success, fit_log, format_table
from repro.channels import OneSidedNoiseChannel, SuppressionNoiseChannel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation import ChunkCommitSimulator, RewindSimulator
from repro.tasks import InputSetTask

ID = "E3"
TITLE = "Section 1.1 asymmetry: 1->0 constant vs 0->1 log overhead"

NS = (4, 8, 16)
EPSILON = 0.2
TRIALS = 10


def _point(task, simulator, channel_factory, trials, seed):
    def executor(inputs, trial_seed):
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel_factory(trial_seed)
        )

    return estimate_success(task, executor, trials=trials, seed=seed)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(3, round(TRIALS * scale))
    rows = []
    down_success, down_overhead = [], []
    up_success = []
    fix_success, fix_overhead = [], []
    for n in NS:
        task = InputSetTask(n)
        down = _point(
            task,
            RewindSimulator(),
            lambda s: SuppressionNoiseChannel(EPSILON, rng=s),
            trials,
            seed=seed + 3 * n,
        )
        up = _point(
            task,
            RewindSimulator(),
            lambda s: OneSidedNoiseChannel(EPSILON, rng=s),
            trials,
            seed=seed + 5 * n,
        )
        fix = _point(
            task,
            ChunkCommitSimulator(),
            lambda s: OneSidedNoiseChannel(EPSILON, rng=s),
            trials,
            seed=seed + 7 * n,
        )
        down_success.append(down.success.value)
        down_overhead.append(down.mean_overhead)
        up_success.append(up.success.value)
        fix_success.append(fix.success.value)
        fix_overhead.append(fix.mean_overhead)
        rows.append(
            [
                n,
                f"{down.success.value:.2f}",
                f"{down.mean_overhead:.1f}",
                f"{up.success.value:.2f}",
                f"{fix.success.value:.2f}",
                f"{fix.mean_overhead:.1f}",
            ]
        )
    down_fit = fit_log(list(NS), down_overhead)
    fix_fit = fit_log(list(NS), fix_overhead)
    table = format_table(
        [
            "n",
            "rewind/1->0 success",
            "overhead",
            "rewind/0->1 success",
            "chunk/0->1 success",
            "overhead",
        ],
        rows,
        title=(
            f"E3  noise-direction asymmetry (epsilon={EPSILON}, "
            f"{trials} trials/point)"
        ),
    )
    table += (
        f"\nrewind overhead log-slope: {down_fit.slope:.2f} "
        f"(constant-overhead scheme)"
        f"\nchunk  overhead log-slope: {fix_fit.slope:.2f} "
        f"(Theta(log n) scheme)"
    )
    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "ns": list(NS),
            "down_success": down_success,
            "down_overhead": down_overhead,
            "up_success": up_success,
            "fix_success": fix_success,
            "fix_overhead": fix_overhead,
        },
    )
    result.check(
        "rewind over 1->0 noise succeeds everywhere (>= 0.8)",
        min(down_success) >= 0.8,
    )
    result.check(
        "rewind over 0->1 noise degrades (mean <= 0.6)",
        sum(up_success) / len(up_success) <= 0.6,
    )
    result.check(
        "chunk-commit fixes 0->1 noise (>= 0.8 everywhere)",
        min(fix_success) >= 0.8,
    )
    result.check(
        "chunk overhead grows logarithmically (slope > 5)",
        fix_fit.slope > 5.0,
    )
    result.check(
        "rewind overhead does not grow with n (slope < 1)",
        down_fit.slope < 1.0,
    )
    return result
