"""E12 — budget-matched adversarial noise (the §1.3 adversarial setting)."""

from __future__ import annotations

import math
import random

from repro.analysis import format_table
from repro.channels import BudgetedAdversaryChannel
from repro.channels.adversarial import (
    flip_ones_strategy,
    flip_zeros_strategy,
    periodic_strategy,
)
from repro.core import run_protocol
from repro.core.formal import NoiseModel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation import ChunkCommitSimulator
from repro.tasks import InputSetTask

ID = "E12"
TITLE = "Budget-matched adversarial noise"

N = 6
EPSILON = 0.1
TRIALS = 10

STRATEGIES = {
    "flip-zeros": lambda: flip_zeros_strategy,
    "flip-ones": lambda: flip_ones_strategy,
    "periodic(7)": lambda: periodic_strategy(7),
}


def _estimate_simulated_rounds(seed: int) -> int:
    task = InputSetTask(N)
    inputs = task.sample_inputs(random.Random(seed))
    channel = BudgetedAdversaryChannel(budget=0)
    result = ChunkCommitSimulator(
        noise_model=NoiseModel.two_sided(EPSILON)
    ).simulate(task.noiseless_protocol(), inputs, channel)
    return result.rounds


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(4, round(TRIALS * scale))
    task = InputSetTask(N)
    rounds = _estimate_simulated_rounds(seed)
    budget = math.ceil(EPSILON * rounds)

    rows = []
    scheme_success = {}
    for label, make_strategy in STRATEGIES.items():
        wins = 0
        spent = 0
        for trial in range(trials):
            inputs = task.sample_inputs(random.Random(seed + trial))
            channel = BudgetedAdversaryChannel(
                budget=budget, strategy=make_strategy()
            )
            result = ChunkCommitSimulator(
                noise_model=NoiseModel.two_sided(EPSILON)
            ).simulate(task.noiseless_protocol(), inputs, channel)
            wins += task.is_correct(inputs, result.outputs)
            spent = channel.flips_spent
        scheme_success[label] = wins / trials
        rows.append([label, budget, spent, f"{wins / trials:.2f}"])

    raw_failures = 0
    for trial in range(trials):
        inputs = task.sample_inputs(random.Random(seed + trial))
        channel = BudgetedAdversaryChannel(
            budget=1, strategy=flip_zeros_strategy
        )
        result = run_protocol(
            task.noiseless_protocol(), inputs, channel
        )
        raw_failures += not task.is_correct(inputs, result.outputs)

    table = format_table(
        ["strategy", "budget", "spent (last run)", "chunk success"],
        rows,
        title=(
            f"E12  chunk-commit vs budget-matched adversaries "
            f"(n={N}, budget = {EPSILON} x rounds, {trials} trials)"
        ),
    )
    table += (
        f"\nunprotected protocol vs budget 1 zero-flipper: "
        f"{raw_failures}/{trials} failures"
    )
    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "budget": budget,
            "scheme_success": scheme_success,
            "raw_failures": raw_failures,
            "trials": trials,
        },
    )
    result.check(
        "one adversarial flip kills the unprotected protocol every time",
        raw_failures == trials,
    )
    result.check(
        "chunk scheme survives every budget-matched strategy (>= 0.8)",
        all(rate >= 0.8 for rate in scheme_success.values()),
    )
    return result
