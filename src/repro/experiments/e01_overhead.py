"""E1 — Theorem 1.2: the chunk-commit simulation costs Θ(log n) overhead.

Sweep the party count n, simulate the 2n-round ``InputSet_n`` protocol
with the chunk-commit scheme over two-sided ε-noise, and fit the measured
overhead against log₂ n.  Predicted shape: overhead ≈ a + b·log₂ n with
b > 0 and an excellent fit; success near 1 throughout.
"""

from __future__ import annotations

from repro.analysis import estimate_success, fit_log, format_table
from repro.channels import CorrelatedNoiseChannel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.parallel import ChannelSpec, SimulationExecutor, SimulatorSpec
from repro.simulation import ChunkCommitSimulator
from repro.tasks import InputSetTask

ID = "E1"
TITLE = "Theorem 1.2: Theta(log n) simulation overhead"

NS = (4, 8, 16, 32, 64)
EPSILON = 0.1
TRIALS = 3


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(1, round(TRIALS * scale))
    ns = NS if scale >= 1.0 else NS[: max(2, int(len(NS) * scale) + 1)]

    rows = []
    overheads = []
    successes = []
    for n in ns:
        task = InputSetTask(n)
        # Picklable executor: the sweep can fan trials out to a process
        # pool (``--workers``) with bitwise-identical results.
        executor = SimulationExecutor(
            task=task,
            channel=ChannelSpec.of(CorrelatedNoiseChannel, EPSILON),
            simulator=SimulatorSpec.of(ChunkCommitSimulator),
        )

        point = estimate_success(
            task,
            executor,
            trials=trials,
            seed=seed + 100 + n,
            params={"n": n},
        )
        overheads.append(point.mean_overhead)
        successes.append(point.success.value)
        rows.append(
            [
                n,
                2 * n,
                round(point.mean_rounds),
                f"{point.mean_overhead:.1f}",
                f"{point.success.value:.2f}",
            ]
        )
    fit = fit_log(list(ns), overheads)
    table = format_table(
        ["n", "noiseless T", "simulated rounds", "overhead", "success"],
        rows,
        title=(
            f"E1  chunk-commit overhead vs n (epsilon={EPSILON}, "
            f"{trials} trials/point)"
        ),
    )
    table += (
        f"\nfit: overhead = {fit.intercept:.1f} + {fit.slope:.1f}"
        f" * log2(n)   R^2 = {fit.r_squared:.3f}"
    )

    # E1b — the verification-repetition ablation (DESIGN.md §5): fewer
    # votes per chunk verdict cost less but let bad chunks commit (and
    # good ones rewind); the derived Θ(log n) choice buys reliability at
    # marginal round cost.
    ablation_rows = []
    ablation = {}
    ablation_n = 8
    for label, votes in (("1", 1), ("3", 3), ("derived", None)):
        task = InputSetTask(ablation_n)
        from repro.simulation import SimulationParameters

        params = (
            SimulationParameters(verification_repetitions=votes)
            if votes is not None
            else SimulationParameters()
        )
        executor = SimulationExecutor(
            task=task,
            channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.25),
            simulator=SimulatorSpec.of(ChunkCommitSimulator, params),
        )

        point = estimate_success(
            task,
            executor,
            trials=max(6, 2 * trials),
            seed=seed + 555 + (votes or 0),
        )
        ablation[label] = point
        ablation_rows.append(
            [
                label,
                f"{point.success.value:.2f}",
                f"{point.mean_overhead:.1f}",
                f"{point.extras.get('mean_chunk_attempts', 0):.1f}",
            ]
        )
    table += "\n\n" + format_table(
        ["verify votes r_v", "success", "overhead", "mean attempts"],
        ablation_rows,
        title=(
            f"E1b  verification-vote ablation (n={ablation_n}, "
            "epsilon=0.25)"
        ),
    )

    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "ns": list(ns),
            "overheads": overheads,
            "successes": successes,
            "fit": {
                "intercept": fit.intercept,
                "slope": fit.slope,
                "r_squared": fit.r_squared,
            },
            "verification_ablation": {
                label: point.success.value
                for label, point in ablation.items()
            },
        },
    )
    result.check(
        "derived verification votes at least match the 1-vote ablation",
        ablation["derived"].success.value
        >= ablation["1"].success.value - 0.1,
    )
    result.check("log slope is clearly positive (> 5)", fit.slope > 5.0)
    result.check("log fit explains the curve (R^2 > 0.9)", fit.r_squared > 0.9)
    result.check(
        "simulation succeeds throughout (>= 0.65 each point)",
        all(success >= 0.65 for success in successes),
    )
    result.check(
        "overhead grows sublinearly in n",
        overheads[-1] < overheads[0] * (ns[-1] / ns[0]),
    )
    return result
