"""E7 — §1.2: correlated vs independent noise + the A.1.2 reduction."""

from __future__ import annotations

import random

from repro.analysis import estimate_success, format_table
from repro.channels import (
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    SharedFlipReductionChannel,
)
from repro.core import run_protocol
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation import RepetitionSimulator
from repro.tasks import InputSetTask

ID = "E7"
TITLE = "Section 1.2: correlated vs independent noise + A.1.2"

N = 8
EPSILON = 0.15
TRIALS = 40
FREQ_TRIALS = 6000


def _agreement_and_success(channel_factory, trials, seed):
    task = InputSetTask(N)
    agree = 0
    correct = 0
    for trial in range(trials):
        inputs = task.sample_inputs(random.Random(seed + trial))
        result = run_protocol(
            task.noiseless_protocol(), inputs, channel_factory(seed + trial)
        )
        agree += result.outputs_agree()
        correct += task.is_correct(inputs, result.outputs)
    return agree / trials, correct / trials


def _simulated_success(channel_factory, trials, seed):
    task = InputSetTask(N)
    simulator = RepetitionSimulator()

    def executor(inputs, trial_seed):
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel_factory(trial_seed)
        )

    return estimate_success(task, executor, trials=trials, seed=seed)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(10, round(TRIALS * scale))
    sim_trials = max(5, round(20 * scale))
    freq_trials = max(1000, round(FREQ_TRIALS * scale))

    corr_agree, corr_correct = _agreement_and_success(
        lambda s: CorrelatedNoiseChannel(EPSILON, rng=s), trials, seed
    )
    ind_agree, ind_correct = _agreement_and_success(
        lambda s: IndependentNoiseChannel(EPSILON, rng=s), trials, seed + 1
    )
    sim_corr = _simulated_success(
        lambda s: CorrelatedNoiseChannel(EPSILON, rng=s),
        sim_trials,
        seed=seed + 11,
    )
    sim_ind = _simulated_success(
        lambda s: IndependentNoiseChannel(EPSILON, rng=s),
        sim_trials,
        seed=seed + 13,
    )
    table = format_table(
        ["noise model", "raw agree", "raw correct", "repetition-sim correct"],
        [
            [
                "correlated",
                f"{corr_agree:.2f}",
                f"{corr_correct:.2f}",
                f"{sim_corr.success.value:.2f}",
            ],
            [
                "independent",
                f"{ind_agree:.2f}",
                f"{ind_correct:.2f}",
                f"{sim_ind.success.value:.2f}",
            ],
        ],
        title=(
            f"E7a  correlated vs independent noise, InputSet_{N}, "
            f"epsilon={EPSILON}"
        ),
    )

    reduction = SharedFlipReductionChannel(rng=seed + 1)
    direct = CorrelatedNoiseChannel(0.25, rng=seed + 2)
    freq_rows = []
    deltas = []
    for label, pattern in (("OR=0", (0,) * 4), ("OR=1", (1,) + (0,) * 3)):
        reduced = (
            sum(
                reduction.transmit(pattern).common
                for _ in range(freq_trials)
            )
            / freq_trials
        )
        direct_rate = (
            sum(direct.transmit(pattern).common for _ in range(freq_trials))
            / freq_trials
        )
        deltas.append(abs(reduced - direct_rate))
        freq_rows.append([label, f"{reduced:.3f}", f"{direct_rate:.3f}"])
    table += "\n\n" + format_table(
        ["condition", "reduction Pr[receive 1]", "direct eps=1/4"],
        freq_rows,
        title="E7b  A.1.2 reduction vs direct two-sided channel "
        f"({freq_trials} rounds/cell)",
    )

    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "corr_agree": corr_agree,
            "ind_agree": ind_agree,
            "sim_corr": sim_corr.success.value,
            "sim_ind": sim_ind.success.value,
            "reduction_deltas": deltas,
        },
    )
    result.check(
        "correlated noise keeps a shared transcript (agree = 1.0)",
        corr_agree == 1.0,
    )
    result.check(
        "independent noise breaks agreement (< 0.9)", ind_agree < 0.9
    )
    result.check(
        "repetition simulator works under both models (>= 0.85)",
        sim_corr.success.value >= 0.85
        and sim_ind.success.value >= 0.85,
    )
    result.check(
        "A.1.2 reduction matches the direct channel (deltas < 0.03)",
        all(delta < 0.03 for delta in deltas),
    )
    return result
