"""E10 — bursty "global interference" noise at matched average rate."""

from __future__ import annotations

from repro.analysis import estimate_success, format_table
from repro.channels import BurstNoiseChannel, CorrelatedNoiseChannel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation import ChunkCommitSimulator, RepetitionSimulator
from repro.tasks import InputSetTask

ID = "E10"
TITLE = "Bursty 'global interference' noise robustness"

N = 8
AVERAGE_EPSILON = 0.12
BURST_LENGTHS = (1, 4, 16, 64)
TRIALS = 12


def _channel_factory(burst_length):
    if burst_length == 1:
        return lambda seed: CorrelatedNoiseChannel(
            AVERAGE_EPSILON, rng=seed
        )
    return lambda seed: BurstNoiseChannel.matched_to(
        AVERAGE_EPSILON, burst_length=burst_length, rng=seed
    )


def _point(simulator, burst_length, trials, seed):
    task = InputSetTask(N)
    factory = _channel_factory(burst_length)

    def executor(inputs, trial_seed):
        return simulator.simulate(
            task.noiseless_protocol(), inputs, factory(trial_seed)
        )

    return estimate_success(task, executor, trials=trials, seed=seed)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(4, round(TRIALS * scale))
    rows = []
    repetition_success = []
    chunk_success = []
    chunk_attempts = []
    for burst_length in BURST_LENGTHS:
        repetition = _point(
            RepetitionSimulator(),
            burst_length,
            trials,
            seed=seed + 3 * burst_length,
        )
        chunked = _point(
            ChunkCommitSimulator(),
            burst_length,
            trials,
            seed=seed + 5 * burst_length,
        )
        repetition_success.append(repetition.success.value)
        chunk_success.append(chunked.success.value)
        chunk_attempts.append(
            chunked.extras.get("mean_chunk_attempts", 0.0)
        )
        rows.append(
            [
                burst_length,
                f"{repetition.success.value:.2f}",
                f"{chunked.success.value:.2f}",
                f"{chunked.extras.get('mean_chunk_attempts', 0):.1f}",
            ]
        )
    table = format_table(
        [
            "burst length",
            "repetition success",
            "chunk-commit success",
            "chunk attempts",
        ],
        rows,
        title=(
            f"E10  bursty noise at equal average rate "
            f"(n={N}, avg epsilon={AVERAGE_EPSILON}, {trials} trials/point)"
        ),
    )
    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "burst_lengths": list(BURST_LENGTHS),
            "repetition_success": repetition_success,
            "chunk_success": chunk_success,
            "chunk_attempts": chunk_attempts,
        },
    )
    result.check(
        "burst length 1 reproduces the i.i.d. results (both >= 0.9)",
        repetition_success[0] >= 0.9 and chunk_success[0] >= 0.9,
    )
    result.check(
        "chunk scheme degrades no worse than repetition at long bursts",
        chunk_success[-1] >= repetition_success[-1],
    )
    result.check(
        "the chunk scheme's defence shows up as retries (or is unneeded)",
        any(attempts > 2.05 for attempts in chunk_attempts)
        or min(chunk_success) == 1.0,
    )
    return result
