"""Experiment infrastructure: typed results with named shape checks.

Every experiment Ek is a function ``run(seed=..., scale=...) ->
ExperimentResult``.  The result carries the rendered table (what
EXPERIMENTS.md quotes), the raw data series, and a list of named *checks*
— the paper-predicted shape assertions.  The pytest-benchmark harness and
the CLI both consume this one object: the harness asserts
``result.all_passed``, the CLI prints the table and the check verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["Check", "ExperimentResult", "validate_scale"]


@dataclass(frozen=True)
class Check:
    """One shape assertion with a human-readable description."""

    description: str
    passed: bool


@dataclass
class ExperimentResult:
    """The outcome of one experiment run.

    Attributes:
        experiment_id: "E1" .. "E13".
        title: One-line claim under test.
        table: The rendered result table(s).
        data: Raw series keyed by name (JSON-serialisable).
        checks: Shape assertions with verdicts.
    """

    experiment_id: str
    title: str
    table: str
    data: dict[str, Any] = field(default_factory=dict)
    checks: list[Check] = field(default_factory=list)

    def check(self, description: str, passed: bool) -> None:
        """Record one named shape check."""
        self.checks.append(Check(description, bool(passed)))

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        """Table plus per-check verdicts (the CLI's output)."""
        lines = [self.table, ""]
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"[{mark}] {check.description}")
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        """Raise when any check failed (benchmark-harness hook)."""
        if not self.all_passed:
            failed = "; ".join(
                check.description for check in self.failures
            )
            raise AssertionError(
                f"{self.experiment_id} shape checks failed: {failed}"
            )


def validate_scale(scale: float) -> float:
    """Shared validation for experiments' ``scale`` knob (trial
    multiplier; 1.0 = the published configuration)."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    return scale
