"""E8 — Theorem 1.2 amortisation: overhead flat in protocol length T,
plus the chunk-length ablation (paper: chunk = n)."""

from __future__ import annotations

from repro.analysis import estimate_success, format_table
from repro.channels import CorrelatedNoiseChannel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation import ChunkCommitSimulator, SimulationParameters
from repro.tasks import MaxIdTask

ID = "E8"
TITLE = "Rewind amortisation over long protocols + chunk ablation"

N = 8
EPSILON = 0.15
LENGTHS = (8, 16, 32, 64)  # id_bits == protocol length T
TRIALS = 5


def _point(id_bits, params, trials, seed):
    task = MaxIdTask(N, id_bits=id_bits)
    simulator = ChunkCommitSimulator(params)

    def executor(inputs, trial_seed):
        channel = CorrelatedNoiseChannel(EPSILON, rng=trial_seed)
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )

    return estimate_success(task, executor, trials=trials, seed=seed)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(2, round(TRIALS * scale))

    rows = []
    overheads = []
    completion = []
    for id_bits in LENGTHS:
        point = _point(
            id_bits, SimulationParameters(), trials, seed=seed + 3 * id_bits
        )
        overheads.append(point.mean_overhead)
        completion.append(point.extras.get("completion_rate", 0.0))
        rows.append(
            [
                id_bits,
                f"{point.success.value:.2f}",
                f"{point.mean_overhead:.1f}",
                f"{point.extras.get('mean_chunk_attempts', 0):.1f}",
                f"{point.extras.get('completion_rate', 0):.2f}",
            ]
        )
    table = format_table(
        ["T", "success", "overhead", "mean attempts", "completed"],
        rows,
        title=(
            f"E8a  chunk-commit vs protocol length (n={N}, "
            f"epsilon={EPSILON}, {trials} trials/point)"
        ),
    )

    ablation_rows = []
    ablation_success = []
    for chunk in (N // 2, N, 2 * N):
        point = _point(
            32,
            SimulationParameters(chunk_length=chunk),
            trials,
            seed=seed + 7 * chunk,
        )
        ablation_success.append(point.success.value)
        ablation_rows.append(
            [
                chunk,
                f"{point.success.value:.2f}",
                f"{point.mean_overhead:.1f}",
                f"{point.extras.get('mean_chunk_attempts', 0):.1f}",
            ]
        )
    table += "\n\n" + format_table(
        ["chunk length", "success", "overhead", "mean attempts"],
        ablation_rows,
        title="E8b  chunk-length ablation at T=32 (paper: chunk = n)",
    )

    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "lengths": list(LENGTHS),
            "overheads": overheads,
            "completion": completion,
            "ablation_success": ablation_success,
        },
    )
    result.check(
        "overhead flat in T (longest within 35% of shortest)",
        overheads[-1] <= overheads[0] * 1.35,
    )
    result.check(
        "completion near-certain at every length (>= 0.8)",
        all(rate >= 0.8 for rate in completion),
    )
    result.check(
        "every ablated chunk length still succeeds (>= 0.6)",
        all(success >= 0.6 for success in ablation_success),
    )
    return result
