"""E11 — the energy (beeps per party) price of noise resilience."""

from __future__ import annotations

import random

from repro.analysis import fit_log, format_table
from repro.channels import CorrelatedNoiseChannel, NoiselessChannel
from repro.core import run_protocol
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation import ChunkCommitSimulator, RepetitionSimulator
from repro.tasks import InputSetTask

ID = "E11"
TITLE = "Energy (beeps/party) cost of noise resilience"

NS = (4, 8, 16, 32, 64)
EPSILON = 0.1
TRIALS = 3


def _mean_energy(n, simulator, trials, seed):
    task = InputSetTask(n)
    total = 0.0
    for trial in range(trials):
        inputs = task.sample_inputs(random.Random(seed + trial))
        if simulator is None:
            result = run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )
        else:
            channel = CorrelatedNoiseChannel(
                EPSILON, rng=seed + 977 * trial
            )
            result = simulator.simulate(
                task.noiseless_protocol(), inputs, channel
            )
        total += result.total_energy / n
    return total / trials


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(1, round(TRIALS * scale))
    ns = NS if scale >= 1.0 else NS[: max(2, int(len(NS) * scale) + 1)]

    rows = []
    repetition_energy = []
    chunk_energy = []
    for n in ns:
        baseline = _mean_energy(n, None, trials, seed=seed + n)
        repetition = _mean_energy(
            n, RepetitionSimulator(), trials, seed=seed + 2 * n
        )
        chunked = _mean_energy(
            n, ChunkCommitSimulator(), trials, seed=seed + 3 * n
        )
        repetition_energy.append(repetition)
        chunk_energy.append(chunked)
        rows.append(
            [n, f"{baseline:.1f}", f"{repetition:.1f}", f"{chunked:.1f}"]
        )
    repetition_fit = fit_log(list(ns), repetition_energy)
    chunk_fit = fit_log(list(ns), chunk_energy)
    table = format_table(
        [
            "n",
            "noiseless beeps/party",
            "repetition beeps/party",
            "chunk-commit beeps/party",
        ],
        rows,
        title=(
            f"E11  energy per party on InputSet_n "
            f"(epsilon={EPSILON}, {trials} trials/point)"
        ),
    )
    table += (
        f"\nrepetition energy log-slope: {repetition_fit.slope:.1f}"
        f"\nchunk       energy log-slope: {chunk_fit.slope:.1f}"
    )
    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "ns": list(ns),
            "repetition_energy": repetition_energy,
            "chunk_energy": chunk_energy,
        },
    )
    result.check(
        "repetition energy grows logarithmically (slope > 1)",
        repetition_fit.slope > 1.0,
    )
    result.check(
        "chunk energy grows logarithmically (slope > 1)",
        chunk_fit.slope > 1.0,
    )
    result.check(
        "chunk energy stays sublinear in n",
        chunk_energy[-1] < chunk_energy[0] * (ns[-1] / ns[0]),
    )
    result.check(
        "the owners phase makes the chunk scheme costlier",
        all(
            chunk >= repetition
            for chunk, repetition in zip(chunk_energy, repetition_energy)
        ),
    )
    return result
