"""E5 — Theorems C.2 + C.3: the ζ squeeze — exact at n ≤ 3, Monte-Carlo
pointwise beyond."""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.formal import NoiseModel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.lowerbound import LowerBoundAnalyzer, estimate_zeta, theory
from repro.tasks.input_set import input_set_formal_protocol

ID = "E5"
TITLE = "Theorems C.2+C.3: the exact zeta squeeze"

NOISE = NoiseModel.one_sided(1.0 / 3.0)
INSTANCES = [(2, 1), (2, 2), (2, 3), (3, 1)]  # (n, repetitions)
MC_NS = (4, 8, 12)
MC_SAMPLES = 250


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    samples = max(50, round(MC_SAMPLES * scale))

    rows = []
    caps_hold = []
    correctness = {}
    masses = []
    for n, repetitions in INSTANCES:
        protocol = input_set_formal_protocol(
            n, repetitions=repetitions, decision="unanimous"
        )
        analyzer = LowerBoundAnalyzer(protocol, NOISE)
        summary = analyzer.summary(reference=lambda x: frozenset(x))
        rounds = protocol.length()
        cap = theory.c2_zeta_bound(n, rounds)
        caps_hold.append(summary.max_zeta_in_good <= cap * (1 + 1e-9))
        correctness[(n, repetitions)] = summary.correctness_probability
        masses.append(summary.total_mass)
        rows.append(
            [
                n,
                repetitions,
                rounds,
                f"{summary.correctness_probability:.3f}",
                f"{summary.good_event_probability:.3f}",
                f"{summary.expected_zeta_given_good:.3f}",
                f"{summary.max_zeta_in_good:.3f}",
                f"{cap:.3g}",
                f"{summary.total_mass:.4f}",
            ]
        )
    table = format_table(
        [
            "n",
            "reps",
            "T",
            "Pr[correct]",
            "Pr(G)",
            "E[zeta|G]",
            "max zeta on G",
            "C.2 cap",
            "mass",
        ],
        rows,
        title="E5a  exact zeta squeeze, one-sided epsilon=1/3",
    )

    mc_rows = []
    mc_violations = []
    for n in MC_NS:
        protocol = input_set_formal_protocol(n)
        cap = theory.c2_zeta_bound(n, protocol.length())
        summary = estimate_zeta(
            protocol,
            1.0 / 3.0,
            samples=samples,
            seed=seed + 17 * n,
            c2_cap=cap,
        )
        mc_violations.append(summary.c2_violations)
        mc_rows.append(
            [
                n,
                protocol.length(),
                f"{summary.good_event_rate:.2f}",
                f"{summary.mean_zeta_given_good:.3f}",
                f"{summary.max_zeta_in_good:.3f}",
                f"{cap:.3g}",
                summary.c2_violations,
            ]
        )
    table += "\n\n" + format_table(
        [
            "n",
            "T",
            "Pr(G) est",
            "E[zeta|G] est",
            "max zeta seen",
            "C.2 cap",
            "violations",
        ],
        mc_rows,
        title=(
            f"E5b  Monte-Carlo C.2 check ({samples} sampled "
            "(x,pi) pairs/point)"
        ),
    )

    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "instances": [list(instance) for instance in INSTANCES],
            "correctness": {
                f"{n}x{r}": value
                for (n, r), value in correctness.items()
            },
            "mc_violations": mc_violations,
        },
    )
    result.check(
        "C.2 cap holds pointwise on every exact instance", all(caps_hold)
    )
    result.check(
        "C.2 cap holds on every Monte-Carlo sample",
        all(count == 0 for count in mc_violations),
    )
    result.check(
        "correctness monotone in the round budget (n=2 family)",
        correctness[(2, 1)] < correctness[(2, 2)] < correctness[(2, 3)],
    )
    result.check(
        "unprotected protocol below C.3's 2/3 precondition",
        correctness[(2, 1)] < 2 / 3 and correctness[(3, 1)] < 2 / 3,
    )
    result.check(
        "exact enumeration conserves probability mass",
        all(abs(mass - 1.0) < 1e-6 for mass in masses),
    )
    return result
