"""The experiment suite E1–E13, as importable functions.

Each module ``eNN_*`` exposes ``run(seed=0, scale=1.0) ->
ExperimentResult``: the measurement sweep, its rendered table, and the
paper-predicted shape checks.  ``scale`` multiplies trial counts (use
< 1.0 for quick looks, > 1.0 for tighter confidence intervals) — 1.0 is
the published configuration recorded in EXPERIMENTS.md.

Consumers:

* the pytest-benchmark harness (``benchmarks/bench_*.py``) runs each
  experiment once, persists its table under ``benchmarks/results/``, and
  asserts every check;
* the CLI (``python -m repro run-experiment E1``) runs one on demand;
* library users import :data:`REGISTRY` and call ``run`` directly.
"""

from __future__ import annotations

from types import ModuleType

from repro.errors import ConfigurationError
from repro.experiments import (
    e01_overhead,
    e02_budget,
    e03_asymmetry,
    e04_owners,
    e05_zeta,
    e06_good_players,
    e07_noise_models,
    e08_long_protocols,
    e09_hierarchy,
    e10_bursts,
    e11_energy,
    e12_adversary,
    e13_independence,
)
from repro.experiments.base import Check, ExperimentResult

__all__ = [
    "Check",
    "ExperimentResult",
    "REGISTRY",
    "get_experiment",
    "run_experiment",
]

_MODULES: tuple[ModuleType, ...] = (
    e01_overhead,
    e02_budget,
    e03_asymmetry,
    e04_owners,
    e05_zeta,
    e06_good_players,
    e07_noise_models,
    e08_long_protocols,
    e09_hierarchy,
    e10_bursts,
    e11_energy,
    e12_adversary,
    e13_independence,
)

REGISTRY: dict[str, ModuleType] = {
    module.ID: module for module in _MODULES
}


def get_experiment(experiment_id: str) -> ModuleType:
    """The experiment module for ``experiment_id`` (case-insensitive)."""
    key = experiment_id.upper().strip()
    if key not in REGISTRY:
        known = ", ".join(sorted(REGISTRY, key=lambda e: int(e[1:])))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    return REGISTRY[key]


def run_experiment(
    experiment_id: str, seed: int = 0, scale: float = 1.0
) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id).run(seed=seed, scale=scale)
