"""The experiment suite E1–E13, as importable functions.

Each module ``eNN_*`` exposes ``run(seed=0, scale=1.0) ->
ExperimentResult``: the measurement sweep, its rendered table, and the
paper-predicted shape checks.  ``scale`` multiplies trial counts (use
< 1.0 for quick looks, > 1.0 for tighter confidence intervals) — 1.0 is
the published configuration recorded in EXPERIMENTS.md.

Consumers:

* the pytest-benchmark harness (``benchmarks/bench_*.py``) runs each
  experiment once, persists its table under ``benchmarks/results/``, and
  asserts every check;
* the CLI (``python -m repro run-experiment E1``) runs one on demand;
* library users import :data:`REGISTRY` and call ``run`` directly.
"""

from __future__ import annotations

from types import ModuleType
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.runner import TrialRunner
from repro.experiments import (
    e01_overhead,
    e02_budget,
    e03_asymmetry,
    e04_owners,
    e05_zeta,
    e06_good_players,
    e07_noise_models,
    e08_long_protocols,
    e09_hierarchy,
    e10_bursts,
    e11_energy,
    e12_adversary,
    e13_independence,
)
from repro.experiments.base import Check, ExperimentResult

__all__ = [
    "Check",
    "ExperimentResult",
    "REGISTRY",
    "get_experiment",
    "run_experiment",
]

_MODULES: tuple[ModuleType, ...] = (
    e01_overhead,
    e02_budget,
    e03_asymmetry,
    e04_owners,
    e05_zeta,
    e06_good_players,
    e07_noise_models,
    e08_long_protocols,
    e09_hierarchy,
    e10_bursts,
    e11_energy,
    e12_adversary,
    e13_independence,
)

REGISTRY: dict[str, ModuleType] = {
    module.ID: module for module in _MODULES
}


def get_experiment(experiment_id: str) -> ModuleType:
    """The experiment module for ``experiment_id`` (case-insensitive)."""
    key = experiment_id.upper().strip()
    if key not in REGISTRY:
        known = ", ".join(sorted(REGISTRY, key=lambda e: int(e[1:])))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    return REGISTRY[key]


def run_experiment(
    experiment_id: str,
    seed: int = 0,
    scale: float = 1.0,
    *,
    workers: int = 1,
    runner: "TrialRunner | None" = None,
) -> ExperimentResult:
    """Run one experiment by id.

    ``workers > 1`` fans the experiment's Monte-Carlo sweeps out over a
    process pool (``runner`` passes an existing
    :class:`~repro.parallel.runner.TrialRunner` instead; the caller then
    owns its lifetime).  Results are bitwise identical either way — the
    per-trial seeding contract makes the backend invisible to the data.
    """
    from repro.parallel import make_runner, use_runner

    module = get_experiment(experiment_id)
    active = runner if runner is not None else make_runner(workers)
    try:
        with use_runner(active):
            return module.run(seed=seed, scale=scale)
    finally:
        if runner is None:
            active.close()
