"""E2 — Theorem 1.1/C.1 shape: noisy ``InputSet_n`` needs ~n·log n rounds.

For each n, run the repetition-hardened ``InputSet`` protocol (with the
one-sided-optimal unanimous rule) over the one-sided ε = 1/3 channel —
Theorem C.1's exact model — and find the smallest repetition count r
(round budget T = 2n·r) reaching 75% success.  Predicted shape: the naive
2n-round protocol collapses; r* grows with n, tracking log₂(2n).
"""

from __future__ import annotations

import math
import random

from repro.analysis import format_table
from repro.channels import OneSidedNoiseChannel
from repro.core import run_protocol
from repro.experiments.base import ExperimentResult, validate_scale
from repro.tasks import InputSetTask
from repro.tasks.input_set import input_set_formal_protocol

ID = "E2"
TITLE = "Theorem 1.1 shape: noisy InputSet needs n*log n rounds"

NS = (4, 8, 16, 32)
EPSILON = 1.0 / 3.0
TRIALS = 60
TARGET = 0.75
MAX_REPS = 16


def _success_rate(
    n: int, repetitions: int, trials: int, seed: int
) -> float:
    task = InputSetTask(n)
    protocol = input_set_formal_protocol(
        n, repetitions=repetitions, decision="unanimous"
    )
    wins = 0
    for trial in range(trials):
        inputs = task.sample_inputs(random.Random(seed + trial))
        channel = OneSidedNoiseChannel(EPSILON, rng=seed + 7919 * trial)
        result = run_protocol(protocol, inputs, channel)
        wins += task.is_correct(inputs, result.outputs)
    return wins / trials


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(10, round(TRIALS * scale))
    rows = []
    minimal_reps = []
    naive_success = []
    for n in NS:
        base = _success_rate(n, 1, trials, seed=seed + 17 * n)
        naive_success.append(base)
        needed = None
        for repetitions in range(1, MAX_REPS + 1):
            rate = _success_rate(
                n, repetitions, trials, seed=seed + 31 * n + repetitions
            )
            if rate >= TARGET:
                needed = repetitions
                break
        minimal_reps.append(needed if needed is not None else MAX_REPS + 1)
        rows.append(
            [
                n,
                2 * n,
                f"{base:.2f}",
                needed if needed is not None else f">{MAX_REPS}",
                2 * n * (needed or MAX_REPS + 1),
                f"{math.log2(2 * n):.1f}",
            ]
        )
    table = format_table(
        [
            "n",
            "noiseless T",
            "naive success",
            "min reps r*",
            "T_min = 2n*r*",
            "log2(2n)",
        ],
        rows,
        title=(
            "E2  minimal round budget for 75% success on InputSet_n, "
            f"one-sided epsilon=1/3 ({trials} trials/point)"
        ),
    )
    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "ns": list(NS),
            "naive_success": naive_success,
            "minimal_reps": minimal_reps,
        },
    )
    result.check(
        "unprotected protocol collapses at the largest n (< 0.2)",
        naive_success[-1] < 0.2,
    )
    result.check(
        "unprotected success does not improve with n",
        naive_success[-1] <= naive_success[0] + 0.05,
    )
    result.check(
        "required repetition factor grows with n",
        minimal_reps[-1] > minimal_reps[0],
    )
    result.check(
        "required factor stays logarithmic (<= 4 log2(2n))",
        minimal_reps[-1] <= 4 * math.log2(2 * NS[-1]),
    )
    return result
