"""E4 — Theorem D.1: the finding-owners phase works w.h.p. at Θ(log n)
per-codeword cost, with ML no worse than min-distance decoding.
"""

from __future__ import annotations

import math
import random

from repro.analysis import format_table
from repro.channels import CorrelatedNoiseChannel
from repro.coding import MinDistanceDecoder
from repro.core import run_protocol
from repro.core.formal import NoiseModel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation.owners import OwnersProtocol, build_owners_code

ID = "E4"
TITLE = "Theorem D.1: finding-owners phase"

NS = (4, 8, 16)
EPSILON = 0.2
TRIALS = 25
RATE_CONSTANT = 16.0


def _perfect_rate(
    n: int, decoder_kind: str, trials: int, seed: int
) -> tuple[float, int]:
    rng = random.Random(seed)
    code = build_owners_code(n, rate_constant=RATE_CONSTANT)
    perfect = 0
    rounds = 0
    for trial in range(trials):
        bits = [
            tuple(rng.getrandbits(1) for _ in range(n)) for _ in range(n)
        ]
        pi = tuple(max(column) for column in zip(*bits))
        protocol = OwnersProtocol(
            n, pi, NoiseModel.two_sided(EPSILON), code=code
        )
        if decoder_kind == "min-distance":
            protocol.decoder = MinDistanceDecoder(code)  # type: ignore[assignment]
        channel = CorrelatedNoiseChannel(EPSILON, rng=seed + 101 * trial)
        result = run_protocol(protocol, bits, channel)
        rounds = result.rounds
        reference = result.outputs[0].owners
        consistent = all(out.owners == reference for out in result.outputs)
        valid = all(
            bits[owner][pos] == 1 for pos, owner in reference.items()
        )
        covering = set(reference) == {m for m in range(n) if pi[m] == 1}
        perfect += consistent and valid and covering
    return perfect / trials, rounds


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(5, round(TRIALS * scale))
    rows = []
    ml_rates = []
    md_rates = []
    ratios = []
    for n in NS:
        ml_rate, rounds = _perfect_rate(n, "ml", trials, seed=seed + 11 * n)
        md_rate, _ = _perfect_rate(
            n, "min-distance", trials, seed=seed + 11 * n
        )
        code = build_owners_code(n, rate_constant=RATE_CONSTANT)
        ml_rates.append(ml_rate)
        md_rates.append(md_rate)
        ratio = code.codeword_length / math.log2(n + 2)
        ratios.append(ratio)
        rows.append(
            [
                n,
                code.codeword_length,
                f"{ratio:.1f}",
                rounds,
                f"{ml_rate:.2f}",
                f"{md_rate:.2f}",
            ]
        )
    table = format_table(
        [
            "n",
            "codeword L",
            "L / log2(n+2)",
            "rounds (last run)",
            "perfect (ML)",
            "perfect (min-dist)",
        ],
        rows,
        title=(
            f"E4  finding-owners phase, two-sided epsilon={EPSILON}, "
            f"c={RATE_CONSTANT} ({trials} trials/point)"
        ),
    )
    # E4b — code-family ablation at n = 8: the Θ(log n)-length greedy
    # random code vs the Hadamard code (distance 1/2 but length Θ(n)) vs
    # a bare repetition code at matched length.
    from repro.coding import HadamardCode, RepetitionCode
    from repro.simulation.owners import position_symbol

    ablation_rows = []
    ablation_rates = {}
    n = 8
    # Alphabet: n positions plus the SILENCE/NEXT sentinels.
    alphabet = position_symbol(n)
    random_code = build_owners_code(n, rate_constant=RATE_CONSTANT)
    codes = {
        "greedy random": random_code,
        "hadamard": HadamardCode(alphabet),
        "repetition": RepetitionCode(
            alphabet,
            repetitions=max(
                1, random_code.codeword_length // alphabet.bit_length()
            ),
        ),
    }
    rng = random.Random(seed + 999)
    for label, code in codes.items():
        perfect = 0
        for trial in range(trials):
            bits = [
                tuple(rng.getrandbits(1) for _ in range(n))
                for _ in range(n)
            ]
            pi = tuple(max(column) for column in zip(*bits))
            protocol = OwnersProtocol(
                n, pi, NoiseModel.two_sided(EPSILON), code=code
            )
            channel = CorrelatedNoiseChannel(
                EPSILON, rng=seed + 7001 + trial
            )
            execution = run_protocol(protocol, bits, channel)
            reference = execution.outputs[0].owners
            ok = (
                all(
                    out.owners == reference
                    for out in execution.outputs
                )
                and all(
                    bits[owner][pos] == 1
                    for pos, owner in reference.items()
                )
                and set(reference)
                == {m for m in range(n) if pi[m] == 1}
            )
            perfect += ok
        ablation_rates[label] = perfect / trials
        ablation_rows.append(
            [
                label,
                code.codeword_length,
                code.min_distance(),
                f"{perfect / trials:.2f}",
            ]
        )
    table += "\n\n" + format_table(
        ["code family", "length L", "min distance", "perfect rate"],
        ablation_rows,
        title=f"E4b  owners-code family ablation (n={n}, "
        f"epsilon={EPSILON})",
    )

    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "ns": list(NS),
            "ml_rates": ml_rates,
            "md_rates": md_rates,
            "code_ablation": ablation_rates,
        },
    )
    result.check(
        "the greedy random code matches or beats bare repetition",
        ablation_rates["greedy random"]
        >= ablation_rates["repetition"] - 0.1,
    )
    result.check(
        "perfect-run rate near 1 at every n (>= 0.8)",
        min(ml_rates) >= 0.8,
    )
    result.check(
        "ML decoding no worse than min-distance",
        all(ml >= md - 0.1 for ml, md in zip(ml_rates, md_rates)),
    )
    result.check(
        "codeword length is Theta(log n) (constant L/log ratio)",
        max(ratios) - min(ratios) < 4.0,
    )
    return result
