"""E13 — §1.2's open problem: naive repetition gains nothing from
independent noise."""

from __future__ import annotations

from repro.analysis import estimate_success, format_table
from repro.channels import CorrelatedNoiseChannel, IndependentNoiseChannel
from repro.experiments.base import ExperimentResult, validate_scale
from repro.simulation import RepetitionSimulator, SimulationParameters
from repro.tasks import InputSetTask

ID = "E13"
TITLE = "Independent vs correlated noise for naive repetition"

N = 8
EPSILON = 0.2
REPETITIONS = (3, 5, 9, 15, 25)
TRIALS = 30


def _point(repetitions, channel_factory, trials, seed):
    task = InputSetTask(N)
    simulator = RepetitionSimulator(
        SimulationParameters(repetitions=repetitions)
    )

    def executor(inputs, trial_seed):
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel_factory(trial_seed)
        )

    return estimate_success(task, executor, trials=trials, seed=seed)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    validate_scale(scale)
    trials = max(10, round(TRIALS * scale))
    rows = []
    correlated_success = []
    independent_success = []
    for repetitions in REPETITIONS:
        correlated = _point(
            repetitions,
            lambda s: CorrelatedNoiseChannel(EPSILON, rng=s),
            trials,
            seed=seed + 3 * repetitions,
        )
        independent = _point(
            repetitions,
            lambda s: IndependentNoiseChannel(EPSILON, rng=s),
            trials,
            seed=seed + 5 * repetitions,
        )
        correlated_success.append(correlated.success.value)
        independent_success.append(independent.success.value)
        rows.append(
            [
                repetitions,
                N * 2 * repetitions,
                f"{correlated.success.value:.2f}",
                f"{independent.success.value:.2f}",
            ]
        )
    table = format_table(
        ["reps r", "rounds", "correlated success", "independent success"],
        rows,
        title=(
            f"E13  repetition scheme under the two noise models "
            f"(n={N}, epsilon={EPSILON}, {trials} trials/point)"
        ),
    )
    result = ExperimentResult(
        experiment_id=ID,
        title=TITLE,
        table=table,
        data={
            "repetitions": list(REPETITIONS),
            "correlated_success": correlated_success,
            "independent_success": independent_success,
        },
    )
    result.check(
        "enough repetition solves both models",
        correlated_success[-1] >= 0.9
        and independent_success[-1] >= 0.8,
    )
    result.check(
        "independence gives the naive scheme no edge anywhere",
        all(
            independent <= correlated + 0.15
            for correlated, independent in zip(
                correlated_success, independent_success
            )
        ),
    )
    return result
