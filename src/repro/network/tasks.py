"""Multi-hop network tasks: flooding broadcast, neighborhood OR, and
network-size estimation over an arbitrary topology.

These are the graph-model counterparts of the single-hop task suite:

* :class:`BroadcastTask` — the canonical multi-hop primitive: node 0
  floods one bit; a node beeps forever once informed, so the beep front
  advances one hop per round and node ``i`` learns the bit after
  ``dist(0, i)`` rounds.  This is the local-broadcast building block
  whose noisy-version cost is the subject of Davies (2023).
* :class:`NeighborORTask` — one round: every node beeps its input bit
  and outputs what it heard (its clean neighborhood OR).  The cheapest
  possible network task, used as the inner protocol for overhead
  benchmarking of the local-broadcast scheme.
* :class:`NetworkSizeEstimateTask` — the multi-hop port of
  :class:`~repro.tasks.counting.SizeEstimateTask` ([BKK⁺16]): in phase
  ``k`` each node holds a ``Bernoulli(2^{-k})`` coin, and the phase's OR
  is *flooded* for a fixed window so that every node (not just the
  beeper's neighbors) learns whether the phase was silent.  The first
  silent phase ``k*`` gives the estimate ``2^{k*} ≈ n``.

All three model private randomness the package's standard way — any coins
are part of the task-sampled *input*, keeping protocols deterministic —
and all use the classic ``hear_self=False`` network convention, built via
:meth:`channel` on each task.  Parties yield
:class:`~repro.core.party.Burst`/:class:`~repro.core.party.Silence`
tokens for their structured stretches (informed flooders, silent
listeners), so executions run on the engine's sparse scheduler and the
per-round cost tracks the contended frontier rather than n.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.party import Burst, Party
from repro.core.protocol import Protocol
from repro.errors import ConfigurationError, TaskError
from repro.network.channel import NetworkBeepingChannel
from repro.network.topology import Topology
from repro.tasks.base import Task
from repro.tasks.counting import SizeEstimateTask

__all__ = ["BroadcastTask", "NeighborORTask", "NetworkSizeEstimateTask"]


def _as_topology(topology: Topology | Sequence[Sequence[int]]) -> Topology:
    if isinstance(topology, Topology):
        return topology
    return Topology.from_adjacency(topology)


class _NetworkTask(Task):
    """Shared base: topology storage + the matching network channel."""

    def __init__(self, topology: Topology | Sequence[Sequence[int]]) -> None:
        topology = _as_topology(topology)
        super().__init__(topology.n)
        self.topology = topology

    def channel(
        self,
        epsilon: float = 0.0,
        rng: random.Random | int | None = None,
        *,
        edge_epsilon: float = 0.0,
    ) -> NetworkBeepingChannel:
        """The matching network channel (classic no-self-hearing model)."""
        return NetworkBeepingChannel(
            self.topology,
            epsilon=epsilon,
            hear_self=False,
            rng=rng,
            edge_epsilon=edge_epsilon,
        )


# ----------------------------------------------------------------------
# Flooding broadcast
# ----------------------------------------------------------------------


class _BroadcastParty(Party):
    def __init__(self, is_source: bool, bit: int, rounds: int) -> None:
        self.is_source = is_source
        self.bit = bit
        self.rounds = rounds

    def run(self):
        if self.is_source:
            # The source knows its bit; it floods or stays silent and
            # never needs to listen.
            yield Burst(self.bit, self.rounds)
            return self.bit
        elapsed = 0
        while elapsed < self.rounds:
            heard = yield 0
            elapsed += 1
            if heard:
                remaining = self.rounds - elapsed
                if remaining:
                    yield Burst(1, remaining)
                return 1
        return 0


class _BroadcastProtocol(Protocol):
    def __init__(self, n_nodes: int, rounds: int) -> None:
        super().__init__(n_nodes)
        self.rounds = rounds

    def length(self) -> int:
        return self.rounds

    def create_parties(self, inputs, shared_seed: int | None = None):
        self._check_inputs(inputs)
        return [
            _BroadcastParty(index == 0, inputs[index], self.rounds)
            for index in range(self.n_parties)
        ]


class BroadcastTask(_NetworkTask):
    """Flood node 0's bit through the network.

    Once a node hears a beep it beeps for the rest of the execution, so
    beeps spread one hop per round: after ``r`` rounds exactly the nodes
    within distance ``r`` of the source are informed (noiselessly).

    Args:
        topology: The graph; reachability is judged along the *out*
            edges of the beep relation (whose beeps reach whom), so
            directed topologies work.
        rounds: Flooding rounds (``None``: the source's eccentricity —
            just enough for every reachable node, the noiseless optimum).

    Success (:meth:`is_correct`): node ``i`` outputs the bit when it is
    within ``rounds`` hops of the source, and 0 otherwise.  Under noise a
    phantom beep can inform the whole network of a bit nobody sent —
    which is exactly the event the repetition-coded local-broadcast
    scheme suppresses.
    """

    def __init__(
        self,
        topology: Topology | Sequence[Sequence[int]],
        rounds: int | None = None,
    ) -> None:
        super().__init__(topology)
        self.distances = self.topology.bfs_distances(0)
        if rounds is None:
            rounds = max(1, max(self.distances))
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def sample_inputs(self, rng: random.Random) -> list[int]:
        """Node 0 gets a uniform bit; everyone else gets 0."""
        return [rng.randint(0, 1)] + [0] * (self.n_parties - 1)

    def reference_output(self, inputs: Sequence[int]) -> int:
        """The source bit (what every *reachable* node should output)."""
        return int(inputs[0])

    def is_correct(
        self, inputs: Sequence[int], outputs: Sequence[int]
    ) -> bool:
        """Reachable-in-time nodes hold the bit; the rest hold 0."""
        if len(outputs) != self.n_parties:
            return False
        bit = int(inputs[0])
        for node, output in enumerate(outputs):
            distance = self.distances[node]
            expected = bit if 0 <= distance <= self.rounds else 0
            if output != expected:
                return False
        return True

    def noiseless_protocol(self) -> Protocol:
        return _BroadcastProtocol(self.n_parties, self.rounds)


# ----------------------------------------------------------------------
# One-round neighborhood OR
# ----------------------------------------------------------------------


class _NeighborORParty(Party):
    def __init__(self, bit: int) -> None:
        self.bit = bit

    def run(self):
        heard = yield self.bit
        return heard


class _NeighborORProtocol(Protocol):
    def length(self) -> int:
        return 1

    def create_parties(self, inputs, shared_seed: int | None = None):
        self._check_inputs(inputs)
        return [_NeighborORParty(bit) for bit in inputs]


class NeighborORTask(_NetworkTask):
    """One round: beep your bit, output your neighborhood's OR.

    The minimal network task — its noiseless length is 1, which makes it
    the natural *inner* protocol for measuring the multiplicative
    overhead of the local-broadcast simulation (every simulated round's
    cost is the whole measurement).

    Args:
        topology: The graph.
        density: Probability that a node's input bit is 1.
    """

    def __init__(
        self,
        topology: Topology | Sequence[Sequence[int]],
        density: float = 0.5,
    ) -> None:
        super().__init__(topology)
        if not 0.0 <= density <= 1.0:
            raise ConfigurationError(
                f"density must be in [0, 1], got {density}"
            )
        self.density = density

    def sample_inputs(self, rng: random.Random) -> list[int]:
        return [
            1 if rng.random() < self.density else 0
            for _ in range(self.n_parties)
        ]

    def reference_output(self, inputs) -> None:
        """Outputs are per-node (each node's own neighborhood OR).

        Raises :class:`TaskError`; use :meth:`is_correct`.
        """
        raise TaskError(
            "neighbor-or outputs are per-node; use is_correct"
        )

    def is_correct(
        self, inputs: Sequence[int], outputs: Sequence[int]
    ) -> bool:
        """Each node output the OR of its in-neighbors' bits."""
        if len(outputs) != self.n_parties:
            return False
        topology = self.topology
        for node, output in enumerate(outputs):
            expected = int(
                any(inputs[j] for j in topology.in_neighbors(node))
            )
            if output != expected:
                return False
        return True

    def noiseless_protocol(self) -> Protocol:
        return _NeighborORProtocol(self.n_parties)


# ----------------------------------------------------------------------
# Flooded network-size estimation
# ----------------------------------------------------------------------


class _NetSizeParty(Party):
    def __init__(self, tape: Sequence[int], window: int) -> None:
        self.tape = tuple(tape)
        self.window = window

    def run(self):
        window = self.window
        estimate = None
        for phase, coin in enumerate(self.tape):
            informed = coin == 1
            elapsed = 0
            if informed:
                yield Burst(1, window)
            else:
                while elapsed < window:
                    heard = yield 0
                    elapsed += 1
                    if heard:
                        informed = True
                        remaining = window - elapsed
                        if remaining:
                            yield Burst(1, remaining)
                        break
            if not informed and estimate is None:
                estimate = 1 << phase
            # Later phases still run in full (coin holders keep beeping),
            # mirroring the single-hop protocol's fixed round structure.
        return estimate if estimate is not None else 1 << len(self.tape)


class _NetSizeProtocol(Protocol):
    def __init__(self, n_nodes: int, phases: int, window: int) -> None:
        super().__init__(n_nodes)
        self.phases = phases
        self.window = window

    def length(self) -> int:
        return self.phases * self.window

    def create_parties(self, inputs, shared_seed: int | None = None):
        self._check_inputs(inputs)
        return [_NetSizeParty(tape, self.window) for tape in inputs]


class NetworkSizeEstimateTask(_NetworkTask):
    """Estimate the network size over a multi-hop topology ([BKK⁺16]).

    Phase ``k``: each node holds a ``Bernoulli(2^{-k})`` coin; coin
    holders beep, and the beep is *flooded* for a window of ``2·ecc(0)``
    rounds (an upper bound on the diameter of a connected symmetric
    graph), after which every node knows the phase's global OR.  The
    estimate is ``2^{k*}`` for the first silent phase ``k*``, exactly as
    in the single-hop :class:`~repro.tasks.counting.SizeEstimateTask` —
    same tapes, same reference output, same tolerance check; only the
    dissemination is multi-hop.

    Args:
        topology: The graph; must be symmetric and connected (flooding
            must be able to reach everyone).
        tolerance: Success needs every node's (identical) estimate
            within this multiplicative factor of n.
        extra_phases: Phases beyond ``log₂ n`` (silence headroom).
    """

    def __init__(
        self,
        topology: Topology | Sequence[Sequence[int]],
        tolerance: float = 32.0,
        extra_phases: int = 6,
    ) -> None:
        super().__init__(topology)
        if not self.topology.symmetric:
            raise ConfigurationError(
                "size estimation floods phase ORs; the topology must be "
                "symmetric"
            )
        distances = self.topology.bfs_distances(0)
        if min(distances) < 0:
            raise ConfigurationError(
                "size estimation floods phase ORs; the topology must be "
                "connected"
            )
        # Single-hop twin supplies phase count, tapes and checking
        # semantics, so the two tasks stay in lockstep by construction.
        self._single_hop = SizeEstimateTask(
            self.n_parties, tolerance=tolerance, extra_phases=extra_phases
        )
        self.tolerance = tolerance
        self.phases = self._single_hop.phases
        self.window = max(1, 2 * max(distances))

    def sample_inputs(self, rng: random.Random) -> list[tuple[int, ...]]:
        return self._single_hop.sample_inputs(rng)

    def reference_output(self, inputs: Sequence[Sequence[int]]) -> int:
        return self._single_hop.reference_output(inputs)

    def is_correct(
        self, inputs: Sequence[Sequence[int]], outputs: Sequence[int]
    ) -> bool:
        return self._single_hop.is_correct(inputs, outputs)

    def noiseless_protocol(self) -> Protocol:
        return _NetSizeProtocol(self.n_parties, self.phases, self.window)
