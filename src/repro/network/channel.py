"""The graph-structured beeping channel.

Each round, node ``i`` receives the OR of the bits beeped by its
*neighbors* (and, with ``hear_self=True``, its own bit).  Per-node
independent noise (ε per reception, the multi-hop analogue of §1.2's
independent model) is optional.

The single-hop channels of :mod:`repro.channels` are the complete-graph
special case: ``NetworkBeepingChannel(complete(n), hear_self=True)`` is
outcome-identical to :class:`~repro.channels.noiseless.NoiselessChannel`,
and adding ε gives the independent-noise model (verified by tests).

Graph format: a sequence of neighbor collections, ``adjacency[i]`` being
the nodes whose beeps node ``i`` hears.  Helpers :func:`ring`,
:func:`grid` and :func:`complete` build the standard topologies; anything
producing such adjacency lists (e.g. ``networkx.Graph.adj``) plugs in.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.channels.base import Channel
from repro.errors import ChannelError, ConfigurationError
from repro.util.bits import BitWord

__all__ = ["NetworkBeepingChannel", "ring", "grid", "complete"]


def ring(n_nodes: int) -> list[tuple[int, ...]]:
    """Cycle topology: node i hears i±1 (mod n)."""
    if n_nodes < 3:
        raise ConfigurationError(f"a ring needs >= 3 nodes, got {n_nodes}")
    return [
        tuple(sorted(((i - 1) % n_nodes, (i + 1) % n_nodes)))
        for i in range(n_nodes)
    ]


def grid(rows: int, columns: int) -> list[tuple[int, ...]]:
    """4-neighbor grid topology, nodes numbered row-major."""
    if rows < 1 or columns < 1:
        raise ConfigurationError("grid needs positive dimensions")
    adjacency: list[tuple[int, ...]] = []
    for row in range(rows):
        for column in range(columns):
            neighbors = []
            if row > 0:
                neighbors.append((row - 1) * columns + column)
            if row < rows - 1:
                neighbors.append((row + 1) * columns + column)
            if column > 0:
                neighbors.append(row * columns + column - 1)
            if column < columns - 1:
                neighbors.append(row * columns + column + 1)
            adjacency.append(tuple(neighbors))
    return adjacency


def complete(n_nodes: int) -> list[tuple[int, ...]]:
    """Complete topology: everyone hears everyone else."""
    if n_nodes < 1:
        raise ConfigurationError(f"need >= 1 node, got {n_nodes}")
    return [
        tuple(j for j in range(n_nodes) if j != i) for i in range(n_nodes)
    ]


class NetworkBeepingChannel(Channel):
    """Beeping over a graph, with optional per-node independent noise.

    Args:
        adjacency: ``adjacency[i]`` = nodes whose beeps node ``i`` hears.
            Need not be symmetric (directed interference is allowed).
        epsilon: Per-node reception flip probability (0 = noiseless).
        hear_self: Whether a beeping node hears its own beep.  The classic
            beeping-network model says no (a transmitting radio cannot
            listen); ``True`` recovers the paper's single-hop channel on
            the complete graph.
        rng: Noise source.

    Note on :class:`~repro.channels.base.RoundOutcome`: ``or_value`` is
    the *global* OR while each node's reception reflects its neighborhood,
    so ``RoundOutcome.noisy`` conflates topology with noise on non-complete
    graphs — use ``channel.stats`` (which counts genuine noise events
    against each node's clean neighborhood OR) for noise accounting.
    """

    correlated = False

    def __init__(
        self,
        adjacency: Sequence[Iterable[int]],
        epsilon: float = 0.0,
        hear_self: bool = False,
        rng: random.Random | int | None = None,
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1), got {epsilon}"
            )
        super().__init__(rng)
        self.n_nodes = len(adjacency)
        if self.n_nodes < 1:
            raise ConfigurationError("the network needs at least one node")
        self.adjacency: list[tuple[int, ...]] = []
        for node, neighbors in enumerate(adjacency):
            cleaned = tuple(sorted(set(int(j) for j in neighbors)))
            for neighbor in cleaned:
                if not 0 <= neighbor < self.n_nodes:
                    raise ConfigurationError(
                        f"node {node} lists out-of-range neighbor "
                        f"{neighbor}"
                    )
            if node in cleaned:
                raise ConfigurationError(
                    f"node {node} lists itself as a neighbor; use "
                    "hear_self=True instead"
                )
            self.adjacency.append(cleaned)
        self.epsilon = epsilon
        self.hear_self = hear_self

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        raise NotImplementedError  # transmit() is overridden entirely

    def transmit(self, bits: Sequence[int]):
        from repro.channels.base import RoundOutcome
        from repro.util.bits import or_reduce, validate_bits

        word = validate_bits(bits)
        if len(word) != self.n_nodes:
            raise ChannelError(
                f"expected {self.n_nodes} bits (one per node), got "
                f"{len(word)}"
            )
        received = []
        for node in range(self.n_nodes):
            heard = any(word[j] for j in self.adjacency[node])
            if self.hear_self and word[node]:
                heard = True
            bit = 1 if heard else 0
            if self.epsilon > 0.0 and self._rng.random() < self.epsilon:
                bit ^= 1
            received.append(bit)
        received_word = tuple(received)
        or_value = or_reduce(word)
        # Stats: count per-node receptions that differ from the node's
        # own noiseless neighborhood OR (noise events only).
        flips_up = flips_down = 0
        if self.epsilon > 0.0:
            for node in range(self.n_nodes):
                clean = 1 if (
                    any(word[j] for j in self.adjacency[node])
                    or (self.hear_self and word[node])
                ) else 0
                if received_word[node] != clean:
                    if clean == 0:
                        flips_up += 1
                    else:
                        flips_down += 1
        self.stats.record(
            beeps=sum(word),
            or_value=or_value,
            flips_up=flips_up,
            flips_down=flips_down,
        )
        return RoundOutcome(or_value=or_value, received=received_word)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkBeepingChannel(nodes={self.n_nodes}, "
            f"epsilon={self.epsilon}, hear_self={self.hear_self})"
        )
