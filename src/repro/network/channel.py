"""The graph-structured beeping channel.

Each round, node ``i`` receives the OR of the bits beeped by its
*neighbors* (and, with ``hear_self=True``, its own bit).  Two noise
models compose:

* **per-node** noise — node ``i``'s reception is flipped with
  probability ``epsilon`` (or ``node_epsilons[i]``), the multi-hop
  analogue of §1.2's independent model;
* **per-edge** noise — each delivery from a beeping node to one of its
  hearers is independently *erased* with probability ``edge_epsilon``
  (a lossy-link model; a node still hears a beep if any one delivery
  survives; self-hearing is never erased).

The single-hop channels of :mod:`repro.channels` are the complete-graph
special case: ``NetworkBeepingChannel(complete(n), hear_self=True)`` is
outcome-identical to :class:`~repro.channels.noiseless.NoiselessChannel`,
and with ``epsilon > 0`` it is **bitwise identical** to
:class:`~repro.channels.independent.IndependentNoiseChannel` for the
same seed: per-node noise consumes one block-buffered uniform draw per
node, in node order, flipping when the draw lands below ε — the
independent channel's exact draw sequence (pinned by the equivalence
test suite).

Sparse evaluation: rounds are computed by walking the **out**-neighborhoods
of the beeping nodes only (CSR arrays from :class:`~repro.network.topology.
Topology`), so per-round work is O(n_beepers + Σ out-degree(beepers)) plus
O(n) only when per-node noise draws are active — not O(edges) and never
O(n²).  :meth:`NetworkBeepingChannel.step` exposes that sparse form
directly (beeping-node list in, hearing-node list out) for schedulers and
benchmarks that never materialize per-node words; :meth:`transmit` wraps
the same core, consuming identical RNG draws.

Noise accounting: the channel reports *genuine* noise — receptions that
differ from the node's clean (noise-free) neighborhood OR — via
``RoundOutcome.flips`` and ``channel.stats``, never the topology-induced
divergence of per-node views from the global OR.  The engine threads the
per-round flip counts into the transcript, so
:meth:`~repro.channels.stats.ChannelStats.observed_from_transcript`
re-derives the channel's counters exactly on network transcripts.

Graph format: a :class:`~repro.network.topology.Topology` or any
sequence of neighbor collections (``adjacency[i]`` = the nodes whose
beeps node ``i`` hears).  Helpers :func:`ring`, :func:`grid` and
:func:`complete` build the standard adjacency lists; the generator
registry in :mod:`repro.network.topology` builds ``Topology`` objects
(random geometric, scale-free, ...).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.channels.base import Channel, RoundOutcome
from repro.errors import ChannelError, ConfigurationError
from repro.network.topology import Topology
from repro.util.bits import BitWord

__all__ = ["NetworkBeepingChannel", "ring", "grid", "complete"]


def ring(n_nodes: int) -> list[tuple[int, ...]]:
    """Cycle topology: node i hears i±1 (mod n)."""
    if n_nodes < 3:
        raise ConfigurationError(f"a ring needs >= 3 nodes, got {n_nodes}")
    return [
        tuple(sorted(((i - 1) % n_nodes, (i + 1) % n_nodes)))
        for i in range(n_nodes)
    ]


def grid(rows: int, columns: int) -> list[tuple[int, ...]]:
    """4-neighbor grid topology, nodes numbered row-major."""
    if rows < 1 or columns < 1:
        raise ConfigurationError("grid needs positive dimensions")
    adjacency: list[tuple[int, ...]] = []
    for row in range(rows):
        for column in range(columns):
            neighbors = []
            if row > 0:
                neighbors.append((row - 1) * columns + column)
            if row < rows - 1:
                neighbors.append((row + 1) * columns + column)
            if column > 0:
                neighbors.append(row * columns + column - 1)
            if column < columns - 1:
                neighbors.append(row * columns + column + 1)
            adjacency.append(tuple(neighbors))
    return adjacency


def complete(n_nodes: int) -> list[tuple[int, ...]]:
    """Complete topology: everyone hears everyone else."""
    if n_nodes < 1:
        raise ConfigurationError(f"need >= 1 node, got {n_nodes}")
    return [
        tuple(j for j in range(n_nodes) if j != i) for i in range(n_nodes)
    ]


class NetworkBeepingChannel(Channel):
    """Beeping over a graph, with per-node and per-edge noise.

    Args:
        topology: A :class:`~repro.network.topology.Topology`, or
            adjacency lists (``adjacency[i]`` = nodes whose beeps node
            ``i`` hears; need not be symmetric — directed interference
            is allowed).
        epsilon: Per-node reception flip probability (0 = noiseless).
        hear_self: Whether a beeping node hears its own beep.  The
            classic beeping-network model says no (a transmitting radio
            cannot listen); ``True`` recovers the paper's single-hop
            channel on the complete graph.
        rng: Noise source.
        edge_epsilon: Per-delivery erasure probability (0 = reliable
            links).  Erasure draws are consumed per round in (ascending
            beeping node, out-neighbor order) *before* any per-node
            flip draws, so executions are reproducible from the seed.
        node_epsilons: Optional per-node flip probabilities overriding
            the scalar ``epsilon`` (one entry per node).  When any node
            noise is active, one uniform draw is consumed per node per
            round, in node order — the uniform discipline that makes
            the complete-graph case bitwise-match the independent
            channel.

    ``RoundOutcome.or_value`` remains the *global* OR of the sent bits
    while each node's reception reflects its neighborhood, so outcome
    equality with single-hop channels only holds on the complete graph.
    ``RoundOutcome.flips`` carries the round's genuine per-node noise
    counts (receptions differing from the clean neighborhood OR), which
    is also what ``channel.stats`` accumulates — topology-induced view
    divergence is never counted as noise.
    """

    correlated = False

    def __init__(
        self,
        topology: Topology | Sequence[Iterable[int]],
        epsilon: float = 0.0,
        hear_self: bool = False,
        rng: random.Random | int | None = None,
        *,
        edge_epsilon: float = 0.0,
        node_epsilons: Sequence[float] | None = None,
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1), got {epsilon}"
            )
        if not 0.0 <= edge_epsilon < 1.0:
            raise ConfigurationError(
                f"edge_epsilon must be in [0, 1), got {edge_epsilon}"
            )
        super().__init__(rng)
        if not isinstance(topology, Topology):
            topology = Topology.from_adjacency(topology)
        self.topology = topology
        self.n_nodes = topology.n
        self.epsilon = epsilon
        self.edge_epsilon = edge_epsilon
        self.hear_self = hear_self
        if node_epsilons is not None:
            node_epsilons = tuple(float(e) for e in node_epsilons)
            if len(node_epsilons) != self.n_nodes:
                raise ConfigurationError(
                    f"node_epsilons has {len(node_epsilons)} entries, "
                    f"expected {self.n_nodes}"
                )
            for node, value in enumerate(node_epsilons):
                if not 0.0 <= value < 1.0:
                    raise ConfigurationError(
                        f"node_epsilons[{node}] must be in [0, 1), "
                        f"got {value}"
                    )
            if not any(node_epsilons):
                node_epsilons = None  # all-zero vector: no node noise
        self.node_epsilons = node_epsilons
        self._node_noise = epsilon > 0.0 or node_epsilons is not None
        # Reusable round buffers: mark-and-clear with touched lists, so a
        # round costs O(nodes actually reached), not O(n) resets.
        self._heard = bytearray(self.n_nodes)
        self._clean = (
            bytearray(self.n_nodes) if edge_epsilon > 0.0 else self._heard
        )

    @property
    def adjacency(self) -> list[tuple[int, ...]]:
        """The in-adjacency lists (compatibility accessor)."""
        return self.topology.adjacency_lists()

    @property
    def max_epsilon(self) -> float:
        """The largest per-node flip probability (decoder calibration)."""
        if self.node_epsilons is not None:
            return max(self.node_epsilons)
        return self.epsilon

    def _deliver(self, or_value: int, n_parties: int) -> BitWord:
        raise NotImplementedError  # transmit() is overridden entirely

    def _round_ones(
        self, beepers: Sequence[int]
    ) -> tuple[list[int], int, int]:
        """One round's sparse core: which nodes receive 1, plus the
        genuine noise flip counts ``(up, down)`` against each reached
        node's clean neighborhood OR.

        ``beepers`` must be the beeping node ids in ascending order (the
        draw-order contract).  Work: O(Σ out-degree(beepers)) for the
        neighborhood walk, plus O(n) only when per-node noise draws run.
        """
        topo = self.topology
        out_ptr = topo._out_indptr
        out_idx = topo._out_indices
        heard = self._heard
        clean = self._clean
        touched: list[int] = []
        mark = touched.append
        edge_eps = self.edge_epsilon
        if edge_eps > 0.0:
            clean_touched: list[int] = []
            cmark = clean_touched.append
            next_float = self._next_noise_float
            for j in beepers:
                for i in out_idx[out_ptr[j] : out_ptr[j + 1]]:
                    if not clean[i]:
                        clean[i] = 1
                        cmark(i)
                    if next_float() >= edge_eps and not heard[i]:
                        heard[i] = 1
                        mark(i)
            if self.hear_self:
                # A node's own beep is heard reliably (no air gap).
                for j in beepers:
                    if not clean[j]:
                        clean[j] = 1
                        cmark(j)
                    if not heard[j]:
                        heard[j] = 1
                        mark(j)
        else:
            for j in beepers:
                for i in out_idx[out_ptr[j] : out_ptr[j + 1]]:
                    if not heard[i]:
                        heard[i] = 1
                        mark(i)
            if self.hear_self:
                for j in beepers:
                    if not heard[j]:
                        heard[j] = 1
                        mark(j)
            clean_touched = touched

        flips_up = 0
        flips_down = 0
        if self._node_noise:
            next_float = self._next_noise_float
            epsilons = self.node_epsilons
            eps = self.epsilon
            ones: list[int] = []
            keep = ones.append
            for i in range(self.n_nodes):
                draw = next_float()
                bit = heard[i]
                if draw < (eps if epsilons is None else epsilons[i]):
                    bit ^= 1
                if bit:
                    keep(i)
                if bit != clean[i]:
                    if clean[i]:
                        flips_down += 1
                    else:
                        flips_up += 1
        elif edge_eps > 0.0:
            for i in clean_touched:
                if not heard[i]:
                    flips_down += 1
            touched.sort()
            ones = touched
        else:
            touched.sort()
            ones = touched

        # Clear the round buffers (touched entries only).
        if clean is heard:
            for i in touched:
                heard[i] = 0
        else:
            for i in touched:
                heard[i] = 0
            for i in clean_touched:
                clean[i] = 0
        return ones, flips_up, flips_down

    def transmit(self, bits: Sequence[int]) -> RoundOutcome:
        from repro.util.bits import validate_bits

        word = validate_bits(bits)
        if len(word) != self.n_nodes:
            raise ChannelError(
                f"expected {self.n_nodes} bits (one per node), got "
                f"{len(word)}"
            )
        beepers = [i for i, bit in enumerate(word) if bit]
        ones, flips_up, flips_down = self._round_ones(beepers)
        received = [0] * self.n_nodes
        for i in ones:
            received[i] = 1
        or_value = 1 if beepers else 0
        self.stats.record(
            beeps=len(beepers),
            or_value=or_value,
            flips_up=flips_up,
            flips_down=flips_down,
        )
        return RoundOutcome(
            or_value=or_value,
            received=tuple(received),
            flips=(flips_up, flips_down),
        )

    def step(self, beepers: Sequence[int]) -> tuple[int, tuple[int, ...]]:
        """One round in sparse form: beeping nodes in, hearing nodes out.

        ``beepers`` are the ids of the nodes beeping 1 this round, in
        strictly ascending order (unchecked — the draw-order contract).
        Returns ``(or_value, ones)`` with ``ones`` the sorted ids of the
        nodes that received a 1.  Statistics and RNG draws are exactly
        those of :meth:`transmit` on the equivalent full word, without
        ever materializing an n-length word — with no per-node noise
        active, the round costs O(beepers' out-neighborhoods) total.
        """
        ones, flips_up, flips_down = self._round_ones(beepers)
        or_value = 1 if beepers else 0
        self.stats.record(
            beeps=len(beepers),
            or_value=or_value,
            flips_up=flips_up,
            flips_down=flips_down,
        )
        return or_value, tuple(ones)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkBeepingChannel(nodes={self.n_nodes}, "
            f"epsilon={self.epsilon}, edge_epsilon={self.edge_epsilon}, "
            f"hear_self={self.hear_self})"
        )
