"""Multi-hop beeping networks — the general model behind the paper's channel.

The paper studies the *single-hop* beeping channel (every party hears
every other), which is the complete-graph case of the beeping **network**
model of [CK10] and the MIS/leader-election literature the paper cites
([AAB⁺13, FSW14, SJX13, ...]): nodes sit on a graph and each round every
node either beeps or listens, hearing a beep iff some *neighbor* beeped.

This subpackage provides that substrate end to end:

* :class:`Topology` / :class:`TopologySpec` — graphs as reproducible
  data: dual-CSR adjacency with sparse neighborhood evaluation, plus a
  declarative, JSON-round-trippable spec (generator name + params +
  seed) resolved through the :data:`TOPOLOGIES` registry (complete,
  ring, grid, random geometric, scale-free).
* :class:`NetworkBeepingChannel` — a graph-structured channel compatible
  with the package's :class:`~repro.channels.base.Channel` interface
  (per-node views; per-node flip noise and per-edge erasure noise, with
  genuine-noise accounting).  On the complete graph with
  ``hear_self=True`` it is bitwise identical to the single-hop
  independent-noise channel.
* Tasks — :class:`MISTask` (Luby-style election after [AAB⁺13]),
  :class:`BroadcastTask` (flooding), :class:`NeighborORTask` (one-round
  neighborhood OR), :class:`NetworkSizeEstimateTask` (flooded [BKK⁺16]
  size estimation).
* :class:`LocalBroadcastSimulator` — Davies' degree-calibrated
  repetition scheme, the multi-hop member of the simulation-scheme
  family (``Θ(log ΔT)`` overhead instead of ``Θ(log n)``).

The paper's own simulators remain single-hop constructions (they need
the OR-of-everyone channel and, mostly, a shared transcript); full
interactive coding for multi-hop beeping is the open frontier the
paper's related-work section points at ([CHHZ17, EKS19]).
"""

from repro.network.channel import NetworkBeepingChannel, ring, grid, complete
from repro.network.local_broadcast import (
    LocalBroadcastSimulator,
    local_broadcast_repetitions,
)
from repro.network.mis import MISTask, mis_protocol
from repro.network.tasks import (
    BroadcastTask,
    NeighborORTask,
    NetworkSizeEstimateTask,
)
from repro.network.topology import (
    TOPOLOGIES,
    Topology,
    TopologyFamily,
    TopologySpec,
    parse_topology,
)

__all__ = [
    "NetworkBeepingChannel",
    "ring",
    "grid",
    "complete",
    "MISTask",
    "mis_protocol",
    "BroadcastTask",
    "NeighborORTask",
    "NetworkSizeEstimateTask",
    "LocalBroadcastSimulator",
    "local_broadcast_repetitions",
    "TOPOLOGIES",
    "Topology",
    "TopologyFamily",
    "TopologySpec",
    "parse_topology",
]
