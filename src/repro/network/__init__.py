"""Multi-hop beeping networks — the general model behind the paper's channel.

The paper studies the *single-hop* beeping channel (every party hears
every other), which is the complete-graph case of the beeping **network**
model of [CK10] and the MIS/leader-election literature the paper cites
([AAB⁺13, FSW14, SJX13, ...]): nodes sit on a graph and each round every
node either beeps or listens, hearing a beep iff some *neighbor* beeped.

This subpackage provides that substrate and one flagship algorithm:

* :class:`NetworkBeepingChannel` — a graph-structured channel compatible
  with the package's :class:`~repro.channels.base.Channel` interface
  (per-node views; optional per-node independent noise).  On the complete
  graph with ``hear_self=True`` it coincides exactly with the single-hop
  channels.
* :class:`MISTask` — randomized maximal-independent-set election by beeps
  (a Luby-style two-round-per-phase protocol in the spirit of [AAB⁺13]),
  with validity checked against the graph.

The noise-resilient simulators of :mod:`repro.simulation` are single-hop
constructions (they need the OR-of-everyone channel and, mostly, a shared
transcript); the network substrate documents where the paper's model sits
inside the broader ecosystem and what its guarantees do *not* yet cover —
interactive coding for multi-hop beeping is the open frontier the paper's
related-work section points at ([CHHZ17, EKS19]).
"""

from repro.network.channel import NetworkBeepingChannel, ring, grid, complete
from repro.network.mis import MISTask, mis_protocol

__all__ = [
    "NetworkBeepingChannel",
    "ring",
    "grid",
    "complete",
    "MISTask",
    "mis_protocol",
]
