"""Topologies as reproducible data: :class:`Topology` + :class:`TopologySpec`.

The network engine separates *what the graph is* from *how it is stored*:

* :class:`Topology` — the immutable runtime object: CSR neighbor arrays
  (``array('i')`` index/pointer pairs, a few bytes per edge even at
  10^6 nodes) in both directions, so the channel can iterate a beeping
  node's **out**-neighborhood (who hears me) in O(degree) while protocol
  checkers read **in**-neighborhoods (whom I hear).  Built once,
  validated once (range, no self-loops, sorted/deduped), shared freely.
* :class:`TopologySpec` — the declarative, JSON-round-trippable recipe:
  generator name + params + seed, e.g. ``{"kind": "grid", "rows": 32,
  "cols": 32}``.  Specs are frozen, hashable, picklable plain data —
  which is what lets network sweeps flow through the sweep service's
  content-addressed cache and process-pool executors exactly like
  single-hop ones.  :meth:`TopologySpec.build` resolves through the
  :data:`TOPOLOGIES` registry and memoizes the constructed graph, so a
  thousand per-trial channel constructions share one build.

Seeded-generator contract
-------------------------

Every generator is a pure function of its declared params: the same
spec (including its ``seed`` param) always yields the same graph —
bit-identical CSR arrays — on every machine and process.  Generators
draw only from a private ``random.Random(seed)``; they never touch
global RNG state, and building a topology consumes no draws from any
channel or trial seed stream.

Registry: :data:`TOPOLOGIES` maps the generator name to a
:class:`TopologyFamily` (builder + docs), mirroring the
``CHANNELS``/``SIMULATORS``/``TASKS`` tables in
:mod:`repro.service.grid` (which re-exports it).  The CLI shorthand
``grid:32x32`` / ``geometric:n=10000,r=0.02,seed=7`` parses with
:func:`parse_topology` into the same specs the library API uses.
"""

from __future__ import annotations

import math
import random
from array import array
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError

try:  # numpy accelerates BFS and feeds the vectorized network kernel.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "Topology",
    "TopologyFamily",
    "TopologySpec",
    "TOPOLOGIES",
    "parse_topology",
]


class Topology:
    """An immutable directed graph over nodes ``0..n-1`` in CSR form.

    ``in`` edges follow the adjacency-list convention of
    :class:`~repro.network.channel.NetworkBeepingChannel`:
    ``in_neighbors(i)`` are the nodes whose beeps node ``i`` hears.
    ``out_neighbors(j)`` is the reverse — the nodes that hear ``j`` —
    which is the direction the channel's sparse evaluation walks.

    Construct with :meth:`from_adjacency`; generators in
    :data:`TOPOLOGIES` do.  Instances are treated as immutable: the
    channel, tasks and the spec cache all share them.
    """

    __slots__ = (
        "n",
        "_in_indptr",
        "_in_indices",
        "_out_indptr",
        "_out_indices",
        "symmetric",
        "_csr_cache",
    )

    def __init__(
        self,
        n: int,
        in_indptr: array,
        in_indices: array,
        out_indptr: array,
        out_indices: array,
        symmetric: bool,
    ) -> None:
        self.n = n
        self._in_indptr = in_indptr
        self._in_indices = in_indices
        self._out_indptr = out_indptr
        self._out_indices = out_indices
        #: True when the in- and out-edge sets coincide (undirected graph).
        self.symmetric = symmetric
        # Lazily built numpy mirrors of the CSR arrays (see csr_arrays).
        self._csr_cache = None

    @classmethod
    def from_adjacency(
        cls, adjacency: Sequence[Iterable[int]]
    ) -> "Topology":
        """Build from adjacency lists (``adjacency[i]`` = whom ``i`` hears).

        Neighbor lists are sorted and deduplicated; out-of-range entries
        and self-loops raise :class:`~repro.errors.ConfigurationError`
        (self-hearing is a channel option, not a graph edge).
        """
        n = len(adjacency)
        if n < 1:
            raise ConfigurationError("a topology needs at least one node")
        in_indptr = array("l", [0] * (n + 1))
        in_indices = array("l")
        out_degree = [0] * n
        for node, neighbors in enumerate(adjacency):
            cleaned = sorted(set(int(j) for j in neighbors))
            for neighbor in cleaned:
                if not 0 <= neighbor < n:
                    raise ConfigurationError(
                        f"node {node} lists out-of-range neighbor "
                        f"{neighbor}"
                    )
                if neighbor == node:
                    raise ConfigurationError(
                        f"node {node} lists itself as a neighbor; use "
                        "hear_self=True instead"
                    )
                out_degree[neighbor] += 1
            in_indices.extend(cleaned)
            in_indptr[node + 1] = len(in_indices)
        # Reverse CSR: node j's out-list = every i with j in adjacency[i],
        # collected in ascending i (so out-lists come out sorted too).
        out_indptr = array("l", [0] * (n + 1))
        total = 0
        for node in range(n):
            total += out_degree[node]
            out_indptr[node + 1] = total
        out_indices = array("l", [0] * total)
        cursor = list(out_indptr[:n])
        for node in range(n):
            for position in range(in_indptr[node], in_indptr[node + 1]):
                j = in_indices[position]
                out_indices[cursor[j]] = node
                cursor[j] += 1
        symmetric = (
            in_indptr == out_indptr and in_indices == out_indices
        )
        return cls(
            n, in_indptr, in_indices, out_indptr, out_indices, symmetric
        )

    # -- read API --------------------------------------------------------

    @property
    def edges(self) -> int:
        """Directed edge (arc) count."""
        return len(self._in_indices)

    def in_neighbors(self, node: int) -> tuple[int, ...]:
        """The nodes whose beeps ``node`` hears (sorted)."""
        ptr = self._in_indptr
        return tuple(self._in_indices[ptr[node] : ptr[node + 1]])

    def out_neighbors(self, node: int) -> tuple[int, ...]:
        """The nodes that hear ``node``'s beeps (sorted)."""
        ptr = self._out_indptr
        return tuple(self._out_indices[ptr[node] : ptr[node + 1]])

    def in_degree(self, node: int) -> int:
        ptr = self._in_indptr
        return ptr[node + 1] - ptr[node]

    def out_degree(self, node: int) -> int:
        ptr = self._out_indptr
        return ptr[node + 1] - ptr[node]

    def csr_arrays(self):
        """The CSR arrays as numpy ``(in_ptr, in_idx, out_ptr, out_idx)``.

        Built once per topology and cached: compact integer mirrors of
        the ``array('l')`` storage (``int32`` until the edge count needs
        wider), which is what the vectorized network kernel gathers
        through and the numpy BFS frontier walks.  The scalar channel
        keeps iterating the ``array('l')`` originals — python-level
        indexing of numpy integers is measurably slower than of plain
        ints, so the pure-Python sparse walk never touches these.

        Requires numpy (:class:`~repro.errors.ConfigurationError` when
        missing — callers on the pure-Python path never need it).
        """
        if _np is None:
            raise ConfigurationError(
                "Topology.csr_arrays requires numpy; the pure-Python "
                "accessors (in_neighbors, bfs_distances, ...) work "
                "without it"
            )
        if self._csr_cache is None:
            dtype = (
                _np.int32
                if self.n < 2**31 and len(self._in_indices) < 2**31
                else _np.int64
            )
            self._csr_cache = tuple(
                _np.frombuffer(arr, dtype="l").astype(dtype)
                if len(arr)
                else _np.zeros(0, dtype=dtype)
                for arr in (
                    self._in_indptr,
                    self._in_indices,
                    self._out_indptr,
                    self._out_indices,
                )
            )
        return self._csr_cache

    @property
    def max_in_degree(self) -> int:
        """The largest in-degree Δ (what local-broadcast calibrates on)."""
        if _np is not None:
            in_ptr = self.csr_arrays()[0]
            return int(_np.diff(in_ptr).max(initial=0))
        ptr = self._in_indptr
        return max(
            (ptr[i + 1] - ptr[i] for i in range(self.n)), default=0
        )

    def adjacency_lists(self) -> list[tuple[int, ...]]:
        """The in-adjacency as plain lists of tuples (compat format)."""
        return [self.in_neighbors(i) for i in range(self.n)]

    def bfs_distances(self, source: int = 0) -> list[int]:
        """Hop distance from ``source`` along *out* edges (the direction
        information floods); ``-1`` for unreachable nodes.

        Runs a whole-frontier numpy walk over :meth:`csr_arrays` when
        numpy is available, else the list-based loop.  Both are
        bitwise-identical: a BFS distance is set exactly once (the first
        level that reaches the node), so intra-level visit order cannot
        change any entry.
        """
        if not 0 <= source < self.n:
            raise ConfigurationError(
                f"source {source} outside [0, {self.n})"
            )
        if _np is not None:
            return self._bfs_distances_numpy(source)
        dist = [-1] * self.n
        dist[source] = 0
        frontier = [source]
        ptr = self._out_indptr
        idx = self._out_indices
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for j in frontier:
                for i in idx[ptr[j] : ptr[j + 1]]:
                    if dist[i] < 0:
                        dist[i] = depth
                        next_frontier.append(i)
            frontier = next_frontier
        return dist

    def _bfs_distances_numpy(self, source: int) -> list[int]:
        """Frontier-at-a-time BFS over the numpy CSR mirrors."""
        _, _, ptr, idx = self.csr_arrays()
        dist = _np.full(self.n, -1, dtype=_np.int64)
        dist[source] = 0
        frontier = _np.array([source], dtype=ptr.dtype)
        depth = 0
        while frontier.size:
            depth += 1
            starts = ptr[frontier]
            counts = ptr[frontier + 1] - starts
            total = int(counts.sum())
            if not total:
                break
            offsets = _np.repeat(_np.cumsum(counts) - counts, counts)
            positions = (
                _np.arange(total, dtype=starts.dtype)
                - offsets
                + _np.repeat(starts, counts)
            )
            neighbors = idx[positions]
            fresh = _np.unique(neighbors[dist[neighbors] < 0])
            if not fresh.size:
                break
            dist[fresh] = depth
            frontier = fresh
        return dist.tolist()

    def eccentricity(self, source: int = 0) -> int:
        """Max hop distance from ``source`` over its reachable set."""
        return max(d for d in self.bfs_distances(source))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(n={self.n}, edges={self.edges}, "
            f"symmetric={self.symmetric})"
        )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def _complete(*, n: int) -> Topology:
    if n < 1:
        raise ConfigurationError(f"need >= 1 node, got {n}")
    return Topology.from_adjacency(
        [tuple(j for j in range(n) if j != i) for i in range(n)]
    )


def _ring(*, n: int) -> Topology:
    if n < 3:
        raise ConfigurationError(f"a ring needs >= 3 nodes, got {n}")
    return Topology.from_adjacency(
        [((i - 1) % n, (i + 1) % n) for i in range(n)]
    )


def _grid(
    *,
    rows: int | None = None,
    cols: int | None = None,
    n: int | None = None,
) -> Topology:
    """4-neighbor grid, row-major.  Either ``rows``+``cols`` pin the
    shape, or a bare ``n`` gets the near-square ``isqrt(n)`` layout with
    a partial last row (so any node count is a valid grid)."""
    if rows is not None or cols is not None:
        if rows is None or cols is None:
            raise ConfigurationError(
                "grid needs both rows and cols (or a bare n)"
            )
        if rows < 1 or cols < 1:
            raise ConfigurationError("grid needs positive dimensions")
        if n is not None and n != rows * cols:
            raise ConfigurationError(
                f"grid {rows}x{cols} has {rows * cols} nodes, not {n}"
            )
        total = rows * cols
        width = cols
    else:
        if n is None:
            raise ConfigurationError("grid needs rows+cols or n")
        if n < 1:
            raise ConfigurationError(f"need >= 1 node, got {n}")
        total = n
        rows = max(1, math.isqrt(n))
        width = -(-n // rows)  # ceil division: partial last row allowed
    adjacency: list[tuple[int, ...]] = []
    for node in range(total):
        row, col = divmod(node, width)
        neighbors = []
        if row > 0:
            neighbors.append(node - width)
        if node + width < total:
            neighbors.append(node + width)
        if col > 0:
            neighbors.append(node - 1)
        if col < width - 1 and node + 1 < total:
            neighbors.append(node + 1)
        adjacency.append(tuple(neighbors))
    return Topology.from_adjacency(adjacency)


def _geometric(*, n: int, radius: float, seed: int = 0) -> Topology:
    """Random geometric graph: ``n`` points uniform in the unit square,
    edges between pairs at Euclidean distance <= ``radius``.  Cell-binned
    neighbor search: O(n) expected build, not O(n²)."""
    if n < 1:
        raise ConfigurationError(f"need >= 1 node, got {n}")
    if not 0.0 < radius <= math.sqrt(2.0):
        raise ConfigurationError(
            f"radius must be in (0, sqrt(2)], got {radius}"
        )
    rng = random.Random(seed)
    xs = [0.0] * n
    ys = [0.0] * n
    for i in range(n):
        xs[i] = rng.random()
        ys[i] = rng.random()
    cells = max(1, int(1.0 / radius))
    size = 1.0 / cells
    bins: dict[tuple[int, int], list[int]] = {}
    for i in range(n):
        key = (min(int(xs[i] / size), cells - 1),
               min(int(ys[i] / size), cells - 1))
        bins.setdefault(key, []).append(i)
    r2 = radius * radius
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for (cx, cy), members in bins.items():
        for dx in (0, 1):
            for dy in ((-1, 0, 1) if dx else (0, 1)):
                others = bins.get((cx + dx, cy + dy))
                if others is None:
                    continue
                if dx == 0 and dy == 0:
                    for a_pos, i in enumerate(members):
                        for j in members[a_pos + 1 :]:
                            dx_ = xs[i] - xs[j]
                            dy_ = ys[i] - ys[j]
                            if dx_ * dx_ + dy_ * dy_ <= r2:
                                adjacency[i].append(j)
                                adjacency[j].append(i)
                else:
                    for i in members:
                        for j in others:
                            dx_ = xs[i] - xs[j]
                            dy_ = ys[i] - ys[j]
                            if dx_ * dx_ + dy_ * dy_ <= r2:
                                adjacency[i].append(j)
                                adjacency[j].append(i)
    return Topology.from_adjacency(adjacency)


def _scale_free(*, n: int, m: int = 2, seed: int = 0) -> Topology:
    """Barabási–Albert preferential attachment: each arriving node links
    to ``m`` distinct existing nodes with probability ∝ degree."""
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if n < m + 1:
        raise ConfigurationError(
            f"scale-free needs n >= m + 1 = {m + 1}, got {n}"
        )
    rng = random.Random(seed)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    # One entry per half-edge; sampling from it is degree-proportional.
    repeated: list[int] = []
    targets = list(range(m))
    source = m
    while source < n:
        for target in targets:
            adjacency[source].append(target)
            adjacency[target].append(source)
        repeated.extend(targets)
        repeated.extend([source] * m)
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(repeated[rng.randrange(len(repeated))])
        targets = sorted(chosen)
        source += 1
    return Topology.from_adjacency(adjacency)


@dataclass(frozen=True)
class TopologyFamily:
    """One row of the :data:`TOPOLOGIES` registry."""

    name: str
    builder: Callable[..., Topology]
    description: str
    #: Params beyond the size that the builder accepts.
    params: tuple[str, ...] = ()
    #: Whether the family takes a generator seed (random families).
    seeded: bool = False


TOPOLOGIES: dict[str, TopologyFamily] = {
    "complete": TopologyFamily(
        "complete", _complete,
        "complete graph (the paper's single-hop channel)",
    ),
    "ring": TopologyFamily(
        "ring", _ring, "cycle: node i hears i±1 (mod n)"
    ),
    "grid": TopologyFamily(
        "grid", _grid,
        "4-neighbor grid (rows x cols, or near-square from n)",
        params=("rows", "cols"),
    ),
    "geometric": TopologyFamily(
        "geometric", _geometric,
        "random geometric graph in the unit square (radius r)",
        params=("radius",), seeded=True,
    ),
    "scale-free": TopologyFamily(
        "scale-free", _scale_free,
        "Barabási–Albert preferential attachment (m links per node)",
        params=("m",), seeded=True,
    ),
}

#: CLI shorthand aliases accepted by :func:`parse_topology`.
_PARAM_ALIASES = {"r": "radius", "columns": "cols"}


def _spec_size(kind: str, params: Mapping[str, Any]) -> int | None:
    """The node count a spec pins, or ``None`` when still scalable."""
    if kind == "grid" and "rows" in params and "cols" in params:
        return int(params["rows"]) * int(params["cols"])
    n = params.get("n")
    return int(n) if n is not None else None


@dataclass(frozen=True)
class TopologySpec:
    """A declarative topology: generator name + params, as plain data.

    Hashable, picklable and JSON-round-trippable
    (:meth:`to_dict`/:meth:`from_dict`), so it can ride inside
    :class:`~repro.parallel.ChannelSpec` across process boundaries and
    into sweep-service cache keys.  ``params`` is a sorted tuple of
    ``(key, value)`` pairs; use :meth:`of` to build from kwargs.

    A spec may leave the node count open (e.g. ``geometric`` with only a
    radius): :meth:`with_n` pins it, and a sweep's ``ns`` grid does so
    per point.  Pinned specs refuse a conflicting ``with_n`` loudly.
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.kind!r} "
                f"(choose from {sorted(TOPOLOGIES)})"
            )
        params = self.params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted((str(k), v) for k, v in params))
        object.__setattr__(self, "params", params)

    @classmethod
    def of(cls, kind: str, **params: Any) -> "TopologySpec":
        """Build a spec from keyword params."""
        return cls(kind, tuple(sorted(params.items())))

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def size(self) -> int | None:
        """The node count this spec pins (``None``: still scalable)."""
        return _spec_size(self.kind, self.param_dict())

    def with_n(self, n: int) -> "TopologySpec":
        """This spec pinned to ``n`` nodes.

        No-op when already pinned to ``n``; raises when pinned to a
        different size (a sweep's ``ns`` must match a pinned spec).
        """
        current = self.size
        if current is not None:
            if current != int(n):
                raise ConfigurationError(
                    f"topology {self.label()!r} pins {current} nodes; "
                    f"cannot re-pin to n={n}"
                )
            return self
        params = self.param_dict()
        params["n"] = int(n)
        return TopologySpec.of(self.kind, **params)

    def build(self) -> Topology:
        """The graph this spec describes (memoized per spec)."""
        return _build_topology(self)

    def label(self) -> str:
        """Canonical shorthand form, e.g. ``geometric:n=64,radius=0.25``
        (parseable back with :func:`parse_topology`)."""
        if not self.params:
            return self.kind
        rendered = ",".join(
            f"{key}={value}" for key, value in self.params
        )
        return f"{self.kind}:{rendered}"

    def to_dict(self) -> dict[str, Any]:
        """The flat JSON form, e.g. ``{"kind": "grid", "rows": 32,
        "cols": 32}``."""
        return {"kind": self.kind, **self.param_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        params = {
            str(k): v for k, v in data.items() if k != "kind"
        }
        try:
            kind = str(data["kind"])
        except KeyError:
            raise ConfigurationError(
                "a topology dict needs a 'kind' entry"
            ) from None
        return cls.of(kind, **params)


@lru_cache(maxsize=8)
def _build_topology(spec: TopologySpec) -> Topology:
    """Construct (and memoize) the graph of a fully-pinned spec.

    The cache is what keeps per-trial channel construction O(1): a sweep
    point builds its topology once and every trial's
    ``ChannelSpec.make`` reuses it (per process — specs pickle, graphs
    rebuild on first use in each worker).
    """
    family = TOPOLOGIES[spec.kind]
    try:
        return family.builder(**spec.param_dict())
    except TypeError as error:
        raise ConfigurationError(
            f"bad params for topology {spec.kind!r}: {error}"
        ) from None


def _parse_param_value(text: str) -> Any:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_topology(text: str) -> TopologySpec:
    """Parse the CLI shorthand into a :class:`TopologySpec`.

    Forms (all resolved through :data:`TOPOLOGIES`):

    * ``ring`` — bare kind (size supplied later via ``with_n``);
    * ``complete:64`` — bare integer = node count;
    * ``grid:32x32`` — grid shape shorthand;
    * ``geometric:n=10000,r=0.02,seed=7`` — ``key=value`` params
      (``r`` aliases ``radius``).
    """
    kind, _, rest = text.strip().partition(":")
    kind = kind.strip()
    if kind not in TOPOLOGIES:
        raise ConfigurationError(
            f"unknown topology {kind!r} "
            f"(choose from {sorted(TOPOLOGIES)})"
        )
    params: dict[str, Any] = {}
    for token in filter(None, (t.strip() for t in rest.split(","))):
        if "=" in token:
            key, _, value = token.partition("=")
            key = _PARAM_ALIASES.get(key.strip(), key.strip())
            params[key] = _parse_param_value(value.strip())
        elif kind == "grid" and "x" in token:
            rows_text, _, cols_text = token.partition("x")
            try:
                params["rows"] = int(rows_text)
                params["cols"] = int(cols_text)
            except ValueError:
                raise ConfigurationError(
                    f"bad grid shape {token!r} (want ROWSxCOLS)"
                ) from None
        else:
            try:
                params["n"] = int(token)
            except ValueError:
                raise ConfigurationError(
                    f"bad topology param {token!r} in {text!r} "
                    "(want key=value, a bare node count, or ROWSxCOLS)"
                ) from None
    return TopologySpec.of(kind, **params)
