"""Noise-resilient local broadcast over graph topologies (after Davies).

"Optimal Message-Passing with Noisy Beeps" (Davies, 2023) shows that in a
noisy beeping network each *local broadcast* — every node reliably
delivering one bit to its whole neighborhood — can be implemented at a
cost logarithmic in the neighborhood scale, not in the global network
size: the repetition budget needed for a majority vote to survive noise
in every neighborhood of a degree-``Δ`` graph over ``T`` virtual rounds
is ``Θ(log(ΔT))``, since a union bound only has to cover a node's own
receptions rather than all ``n`` parties ("Noisy Beeping Networks",
Ashkenazi–Gelles–Leshem, proves the matching model framework).

:class:`LocalBroadcastSimulator` realises that scheme in this package's
simulator form: every round of the inner (noiseless-network) protocol is
repeated ``k`` times over the noisy :class:`~repro.network.channel.
NetworkBeepingChannel` and each node majority-decodes its own receptions,
with

``k = Θ(log((Δ+1)·T))``  (smallest odd value whose Hoeffding bound meets
the configured error exponent; ``Δ`` = the topology's maximum in-degree,
``T`` = the inner length)

instead of the single-hop scheme's ``Θ(log n)``.  On bounded-degree
topologies (grids, geometric graphs below the connectivity threshold)
the overhead is therefore ``O(log T)`` regardless of ``n`` — the curve
:mod:`benchmarks.bench_micro` records into ``BENCH_network.json``.

The effective per-copy flip probability combines the channel's per-node
noise with its per-edge erasures (a reception can err because the node's
ear flipped, or because every delivery of the only supporting beep was
erased — union-bounded by ``ε_node + ε_edge``).  The per-round machinery
is shared with the single-hop repetition scheme
(:class:`~repro.simulation.repetition_sim.RepetitionWrappedProtocol`
driving :func:`~repro.simulation.primitives.repeated_bit` Burst tokens),
so executions run on the engine's sparse scheduler.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.channels.base import Channel
from repro.core.engine import run_protocol
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.errors import ConfigurationError
from repro.network.channel import NetworkBeepingChannel
from repro.simulation.base import SimulationReport, Simulator
from repro.simulation.repetition_sim import RepetitionWrappedProtocol

__all__ = ["LocalBroadcastSimulator", "local_broadcast_repetitions"]


def local_broadcast_repetitions(
    max_degree: int,
    inner_length: int,
    epsilon: float,
    error_exponent: float = 3.0,
) -> int:
    """The ``Θ(log(ΔT))`` repetition count for neighborhood-local voting.

    Chooses the smallest odd ``k`` with
    ``exp(-2 k (1/2 - ε)²) ≤ ((Δ+1)·T)^{-error_exponent}``: a majority of
    ``k`` ε-noisy copies errs with at most that probability (Hoeffding),
    so a union bound over a node's ``T`` virtual-round decisions — the
    only decisions *its* correctness depends on — still vanishes.
    Compare :func:`~repro.simulation.params.repetitions_for`, whose union
    bound runs over all ``n`` parties; this one never mentions ``n``.
    """
    if not 0.0 <= epsilon < 0.5:
        raise ConfigurationError(
            f"majority voting needs epsilon in [0, 0.5), got {epsilon}"
        )
    if max_degree < 0:
        raise ConfigurationError(
            f"max_degree must be >= 0, got {max_degree}"
        )
    if inner_length < 1:
        raise ConfigurationError(
            f"inner_length must be >= 1, got {inner_length}"
        )
    if epsilon == 0.0:
        return 1
    gap = 0.5 - epsilon
    scale = max((max_degree + 1) * inner_length, 2)
    needed = error_exponent * math.log(scale) / (2.0 * gap * gap)
    k = max(1, math.ceil(needed))
    return k if k % 2 == 1 else k + 1


class LocalBroadcastSimulator(Simulator):
    """Simulate a noiseless-network protocol over a noisy one by
    degree-calibrated repetition (Davies' local-broadcast scheme).

    Requires a :class:`~repro.network.channel.NetworkBeepingChannel`
    (the scheme's repetition count is a function of the topology's
    degree; there is nothing to calibrate against on a single-hop
    channel — use the single-hop schemes there).

    The repetition count is ``params.repetitions`` when set, else
    :func:`local_broadcast_repetitions` of the channel's maximum
    in-degree, the inner length, and the channel's effective per-copy
    flip probability (per-node ε plus per-edge erasure ε).
    """

    def simulate(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        channel: Channel,
        *,
        shared_seed: int | None = None,
        observe: "Observer | None" = None,
    ) -> ExecutionResult:
        if not isinstance(channel, NetworkBeepingChannel):
            raise ConfigurationError(
                "LocalBroadcastSimulator needs a NetworkBeepingChannel; "
                f"got {type(channel).__name__} (use the single-hop "
                "schemes for single-hop channels)"
            )
        inner_length = self._require_fixed_length(protocol)
        if self.noise_model is not None:
            epsilon = max(self.noise_model.up, self.noise_model.down)
        else:
            epsilon = channel.max_epsilon + channel.edge_epsilon
        max_degree = channel.topology.max_in_degree
        if self.params.repetitions is not None:
            repetitions = self.params.repetitions
        else:
            repetitions = local_broadcast_repetitions(
                max_degree,
                inner_length,
                epsilon,
                self.params.error_exponent,
            )
        wrapped = RepetitionWrappedProtocol(protocol, repetitions)
        result = run_protocol(
            wrapped,
            inputs,
            channel,
            shared_seed=shared_seed,
            record_sent=False,
            observe=observe,
        )
        report = SimulationReport(
            scheme=type(self).__name__,
            inner_length=inner_length,
            simulated_rounds=result.rounds,
            completed=True,
            extra={
                "repetitions": repetitions,
                "max_degree": max_degree,
                "epsilon": epsilon,
            },
        )
        result.metadata["report"] = report
        if self._tracing(observe):
            self._emit_simulation(observe, report)
        return result
