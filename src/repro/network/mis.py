"""Maximal independent set by beeps (Luby-style, after [AAB⁺13]).

"Beeping a maximal independent set" is the flagship application of the
beeping network model (cited in the paper's first paragraph).  This module
implements the classic randomized two-rounds-per-phase protocol:

* **Candidate round** — every still-*undecided* node beeps with the
  phase's candidate probability (its private coin for the phase).  The
  probabilities cycle through ``1/2, 1/4, ..., 2^{-levels}`` so that for
  *every* local density some phase has a good chance of producing an
  isolated candidate — the density-sweeping idea of [AAB⁺13] (a fixed
  ``1/2`` stalls on dense graphs: in a clique the chance that exactly one
  of k nodes beeps at p = 1/2 is k/2^k);
* **Winner round** — a node that beeped as a candidate and heard **no**
  neighbor beep in the candidate round joins the MIS and beeps a victory
  signal; an undecided node hearing a victory beep from a neighbor becomes
  *dominated* (decides out).

Decided nodes stay silent forever, so the process is monotone; after
O(log² n) phases every node has decided w.h.p., and the decided-in set is
independent (two neighbors cannot both win a phase: each would have heard
the other's candidate beep — note this uses ``hear_self=False``, the
classic convention) and maximal (a node only decides out when a neighbor
decided in).

A decided node yields one :class:`~repro.core.party.Silence` token for all
its remaining rounds, so the engine's sparse scheduler skips it entirely —
on large graphs most nodes decide in the first few phases and the per-round
work collapses toward the still-contended neighborhoods (tokens are bitwise
sugar: the execution is identical to yielding 0 every round).

Private randomness is modelled the package's standard way: each node's
input is its coin tape for all phases, sampled by
:meth:`MISTask.sample_inputs`, keeping the protocol object deterministic.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.core.party import Party, Silence
from repro.core.protocol import Protocol
from repro.errors import ConfigurationError, TaskError
from repro.network.channel import NetworkBeepingChannel
from repro.network.topology import Topology
from repro.tasks.base import Task

__all__ = ["MISTask", "mis_protocol"]


class _MISParty(Party):
    """One node of the MIS election."""

    def __init__(self, coin_tape: Sequence[int], phases: int) -> None:
        self.coin_tape = tuple(coin_tape)
        self.phases = phases

    def run(self):
        # state: None = undecided, True = in MIS, False = dominated.
        decided: bool | None = None
        for phase in range(self.phases):
            # Candidate round.
            candidate = self.coin_tape[phase] == 1
            heard_candidates = yield (1 if candidate else 0)
            # Winner round.
            wins = candidate and heard_candidates == 0
            heard_winners = yield (1 if wins else 0)
            if wins:
                decided = True
            elif heard_winners == 1:
                decided = False
            if decided is not None:
                remaining = 2 * (self.phases - phase - 1)
                if remaining:
                    yield Silence(remaining)
                return decided
        # Undecided nodes after all phases report None (a failure the
        # task's checker rejects); w.h.p. this does not happen.
        return decided


class _MISProtocol(Protocol):
    def __init__(self, n_nodes: int, phases: int) -> None:
        super().__init__(n_nodes)
        self.phases = phases

    def length(self) -> int:
        return 2 * self.phases

    def create_parties(self, inputs, shared_seed: int | None = None):
        self._check_inputs(inputs)
        return [
            _MISParty(tape, self.phases) for tape in inputs
        ]


def mis_protocol(n_nodes: int, phases: int) -> Protocol:
    """The MIS election protocol (``2 * phases`` rounds)."""
    if phases < 1:
        raise ConfigurationError(f"phases must be >= 1, got {phases}")
    return _MISProtocol(n_nodes, phases)


class MISTask(Task):
    """Elect a maximal independent set of a graph by beeping.

    Args:
        topology: The graph — a :class:`~repro.network.topology.Topology`
            or adjacency lists (see
            :class:`~repro.network.channel.NetworkBeepingChannel`); must
            be symmetric for MIS to be meaningful.
        cycles: How many times the probability schedule
            ``1/2, 1/4, ..., 2^{-levels}`` is swept (``None``: a
            log-n-derived default).  Total phases =
            ``cycles · levels = O(log² n)``, the classic bound.

    Success: every node decided, the in-set is independent, and it is
    maximal (every out-node has an in-neighbor).
    """

    def __init__(
        self,
        topology: Topology | Sequence[Sequence[int]],
        cycles: int | None = None,
    ) -> None:
        if not isinstance(topology, Topology):
            topology = Topology.from_adjacency(topology)
        if not topology.symmetric:
            raise ConfigurationError(
                "adjacency must be symmetric: MIS needs an undirected graph"
            )
        n_nodes = topology.n
        super().__init__(n_nodes)
        self.topology = topology
        self.adjacency = topology.adjacency_lists()
        self.levels = max(1, math.ceil(math.log2(max(n_nodes, 2)))) + 1
        if cycles is None:
            cycles = math.ceil(math.log2(max(n_nodes, 2))) + 6
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        self.cycles = cycles
        self.phases = self.cycles * self.levels

    def candidate_probability(self, phase: int) -> float:
        """The beep probability of ``phase`` (the cycling schedule)."""
        return 2.0 ** -((phase % self.levels) + 1)

    def sample_inputs(self, rng: random.Random) -> list[tuple[int, ...]]:
        """Per-node candidate coins: ``coin[k] ~ Bernoulli(p_k)`` with
        ``p_k`` from the cycling schedule."""
        return [
            tuple(
                1
                if rng.random() < self.candidate_probability(phase)
                else 0
                for phase in range(self.phases)
            )
            for _ in range(self.n_parties)
        ]

    def reference_output(self, inputs) -> None:
        """MIS has no unique reference output — validity is structural.

        Raises :class:`TaskError`; use :meth:`is_correct`.
        """
        raise TaskError(
            "MIS outputs are validated structurally; use is_correct"
        )

    def is_correct(self, inputs, outputs: Sequence[bool | None]) -> bool:
        """Everyone decided + independence + maximality."""
        if len(outputs) != self.n_parties:
            return False
        if any(decision is None for decision in outputs):
            return False
        for node, neighbors in enumerate(self.adjacency):
            if outputs[node] is True:
                if any(outputs[j] is True for j in neighbors):
                    return False  # not independent
            else:
                if not any(outputs[j] is True for j in neighbors):
                    return False  # not maximal
        return True

    def noiseless_protocol(self) -> Protocol:
        return mis_protocol(self.n_parties, self.phases)

    def channel(
        self,
        epsilon: float = 0.0,
        rng: random.Random | int | None = None,
        *,
        edge_epsilon: float = 0.0,
    ) -> NetworkBeepingChannel:
        """The matching network channel (classic no-self-hearing model)."""
        return NetworkBeepingChannel(
            self.topology,
            epsilon=epsilon,
            hear_self=False,
            rng=rng,
            edge_epsilon=edge_epsilon,
        )
