"""Entropy accounting (Appendix B.2, Observation C.4, Lemma C.5).

The lower bound needs the feasible sets ``S^i(π)`` to stay large for most
parties, and gets it from an information argument: a short transcript cannot
carry much information about the Θ(n log n) bits of input entropy.  This
module computes the exact posterior quantities on enumerable instances:

* ``H(X | π)`` and ``H(X^i | π)`` for a concrete transcript;
* the transcript distribution and the mutual information ``I(X ; Π)``;
* the Observation C.4 comparison ``H(X | π) ≤ Σ_i log |S^i(π)|`` (valid
  under one-sided noise, where the support of ``X^i | π`` is contained in
  ``S^i(π)``).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Sequence

from repro.core.formal import FormalProtocol, NoiseModel
from repro.errors import ConfigurationError
from repro.lowerbound.feasible import feasible_sizes
from repro.util.bits import BitWord

__all__ = [
    "entropy",
    "posterior_input_distribution",
    "posterior_input_entropy",
    "transcript_distribution",
    "mutual_information",
    "c4_feasible_entropy_bound",
]


def entropy(distribution: Dict[Any, float]) -> float:
    """Shannon entropy (base 2) of a finite distribution.

    Zero-probability entries are ignored; the distribution is assumed
    normalised (callers in this module construct it that way).
    """
    total = 0.0
    for probability in distribution.values():
        if probability > 0.0:
            total -= probability * math.log2(probability)
    return total


def transcript_distribution(
    protocol: FormalProtocol, noise: NoiseModel
) -> Dict[BitWord, float]:
    """``Pr(Π = π)`` for every positive-probability transcript."""
    distribution: Dict[BitWord, float] = {}
    input_probability = protocol.input_probability()
    for inputs in protocol.enumerate_inputs():
        for pi, conditional in protocol.enumerate_transcripts(inputs, noise):
            if conditional == 0.0:
                continue
            distribution[pi] = (
                distribution.get(pi, 0.0) + input_probability * conditional
            )
    return distribution


def posterior_input_distribution(
    protocol: FormalProtocol, noise: NoiseModel, pi: Sequence[int]
) -> Dict[tuple[Any, ...], float]:
    """``Pr(X = x | Π = π)`` over all input vectors."""
    pi = tuple(pi)
    joint: Dict[tuple[Any, ...], float] = {}
    input_probability = protocol.input_probability()
    for inputs in protocol.enumerate_inputs():
        conditional = protocol.transcript_probability(inputs, pi, noise)
        if conditional > 0.0:
            joint[tuple(inputs)] = input_probability * conditional
    mass = sum(joint.values())
    if mass == 0.0:
        raise ConfigurationError(
            "transcript has probability zero under this protocol and noise"
        )
    return {inputs: probability / mass for inputs, probability in joint.items()}


def posterior_input_entropy(
    protocol: FormalProtocol, noise: NoiseModel, pi: Sequence[int]
) -> float:
    """``H(X | Π = π)`` in bits."""
    return entropy(posterior_input_distribution(protocol, noise, pi))


def mutual_information(
    protocol: FormalProtocol, noise: NoiseModel
) -> float:
    """``I(X ; Π) = H(X) − E_π[H(X | π)]`` in bits.

    Fact B.4/B.5 give ``I(X ; Π) ≤ H(Π) ≤ T`` — the step that starts
    Lemma C.5 — and this function lets tests verify the chain exactly.
    """
    prior_entropy = sum(
        math.log2(len(space)) for space in protocol.input_spaces
    )
    pi_distribution = transcript_distribution(protocol, noise)
    conditional = 0.0
    for pi, probability in pi_distribution.items():
        conditional += probability * posterior_input_entropy(
            protocol, noise, pi
        )
    return prior_entropy - conditional


def c4_feasible_entropy_bound(
    protocol: FormalProtocol, pi: Sequence[int]
) -> float:
    """Observation C.4's right side: ``Σ_i log₂ |S^i(π)|``.

    Under one-sided noise ``H(X | π)`` never exceeds this (the support of
    each ``X^i | π`` lies inside ``S^i(π)``); tests pair it with
    :func:`posterior_input_entropy` to verify the observation pointwise.
    """
    total = 0.0
    for size in feasible_sizes(protocol, pi):
        if size <= 0:
            return float("-inf")
        total += math.log2(size)
    return total
