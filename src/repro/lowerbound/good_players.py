"""Good players: ``G₁(x)``, ``G₂(π)``, ``G(x, π)`` and the event 𝒢 (§C.2).

* ``G₁(x)`` — parties with *unique* inputs (no other party shares the
  value); changing such a party's input changes ``L(x)``.
* ``G₂(π)`` — parties whose feasible set given ``π`` is large
  (``> √n`` in the paper), i.e. about whom the transcript knows little.
* ``G = G₁ ∩ G₂``; the event 𝒢 is ``|G| ≥ n/4``, which Lemma C.5 shows
  holds with probability ≥ 1/3 for short protocols.

Also here: the Lemma B.8 sampler — the distribution of the number of
uniquely-held values among k uniform draws from a set of size |S|, which
drives the ``Pr[|G₁| small]`` bound.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.core.formal import FormalProtocol
from repro.lowerbound.feasible import feasible_set
from repro.rng import ensure_rng

__all__ = [
    "unique_input_players",
    "large_feasible_players",
    "good_players",
    "good_event_threshold",
    "sample_unique_counts",
    "lemma_b8_bound",
]


def unique_input_players(inputs: Sequence[int]) -> frozenset[int]:
    """``G₁(x)``: parties whose input no other party holds."""
    counts: dict[int, int] = {}
    for value in inputs:
        counts[value] = counts.get(value, 0) + 1
    return frozenset(
        index for index, value in enumerate(inputs) if counts[value] == 1
    )


def large_feasible_players(
    protocol: FormalProtocol,
    pi: Sequence[int],
    threshold: float | None = None,
) -> frozenset[int]:
    """``G₂(π)``: parties with ``|S^i(π)| > threshold`` (default ``√n``)."""
    if threshold is None:
        threshold = math.sqrt(protocol.n_parties)
    return frozenset(
        party
        for party in range(protocol.n_parties)
        if len(feasible_set(protocol, party, pi)) > threshold
    )


def good_players(
    protocol: FormalProtocol,
    inputs: Sequence[int],
    pi: Sequence[int],
    threshold: float | None = None,
) -> frozenset[int]:
    """``G(x, π) = G₁(x) ∩ G₂(π)``."""
    return unique_input_players(inputs) & large_feasible_players(
        protocol, pi, threshold
    )


def good_event_threshold(n_parties: int) -> float:
    """The 𝒢 threshold: ``|G| ≥ n/4``."""
    return n_parties / 4.0


def sample_unique_counts(
    k: int,
    universe_size: int,
    trials: int,
    rng: random.Random | int | None = None,
) -> list[int]:
    """Monte-Carlo samples of ``|I|`` from Lemma B.8.

    Draw ``k`` independent uniform values from a set of size
    ``universe_size`` and count how many are unique; repeat ``trials``
    times.  Lemma B.8 bounds ``Pr[|I| ≤ k/3]`` by
    ``(3/2)(1 - e^{-k/|S|})``.
    """
    generator = ensure_rng(rng)
    counts: list[int] = []
    for _ in range(trials):
        draws = [generator.randrange(universe_size) for _ in range(k)]
        tally: dict[int, int] = {}
        for value in draws:
            tally[value] = tally.get(value, 0) + 1
        counts.append(sum(1 for value in draws if tally[value] == 1))
    return counts


def lemma_b8_bound(k: int, universe_size: int) -> float:
    """The closed-form bound of Lemma B.8: ``(3/2)(1 - e^{-k/|S|})``."""
    return 1.5 * (1.0 - math.exp(-k / universe_size))
