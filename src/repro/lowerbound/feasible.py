"""Feasible sets ``S^i(π)`` (§C.2).

Under one-sided (0→1) noise a received 0 proves that *every* party beeped 0
in that round.  The parties can therefore rule out any input that would have
made some party beep 1 in a 0-round.  The feasible set of party ``i`` given
a transcript prefix is

    ``S^i(π_{≤m}) = ∩_{j ∈ J} { y : f_j^i(y, π_{<j}) = 0 }``

with ``J`` the 0-positions of the prefix.  Large feasible sets mean the
transcript has revealed little about a party's input — the quantity the
entropy argument of Lemma C.5 keeps large for most parties.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.formal import FormalProtocol
from repro.errors import ConfigurationError

__all__ = ["feasible_set", "feasible_sizes"]


def feasible_set(
    protocol: FormalProtocol, party: int, pi: Sequence[int]
) -> tuple[Any, ...]:
    """``S^i(π)`` for ``party`` given (a prefix of) transcript ``pi``.

    ``pi`` may be any prefix of a transcript (length ≤ the protocol
    length); only its 0-positions constrain the set.
    """
    if not 0 <= party < protocol.n_parties:
        raise ConfigurationError(
            f"party {party} out of range [0, {protocol.n_parties})"
        )
    if len(pi) > protocol.length():
        raise ConfigurationError(
            f"prefix length {len(pi)} exceeds protocol length "
            f"{protocol.length()}"
        )
    zero_rounds = [j for j, bit in enumerate(pi) if bit == 0]
    feasible = []
    for candidate in protocol.input_spaces[party]:
        if all(
            protocol.broadcast(party, candidate, pi[:j]) == 0
            for j in zero_rounds
        ):
            feasible.append(candidate)
    return tuple(feasible)


def feasible_sizes(
    protocol: FormalProtocol, pi: Sequence[int]
) -> list[int]:
    """``|S^i(π)|`` for every party ``i``."""
    return [
        len(feasible_set(protocol, party, pi))
        for party in range(protocol.n_parties)
    ]
