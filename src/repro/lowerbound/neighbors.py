"""Neighbor sets and the sensitivity of ``L(x)`` (§2.3).

Two input vectors are *neighbors* when they differ in at most one party's
input.  The lower bound's engine is the observation that ``L`` is highly
sensitive: for a constant fraction of uniform inputs, Θ(n) parties hold
unique values, and perturbing any of them changes ``L(x)`` — giving
``|N(x)| = Θ(n²)`` differing neighbors.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "neighbor_inputs",
    "neighbors_of_player",
    "differing_neighbors",
    "sensitivity_profile",
]


def _input_set(inputs: Sequence[int]) -> frozenset[int]:
    return frozenset(inputs)


def neighbors_of_player(
    inputs: Sequence[int], player: int, universe: Iterable[int]
) -> Iterator[tuple[int, ...]]:
    """All ``x^{i=y}`` for ``y ≠ x^i``: neighbors changing ``player``'s input.

    This is the paper's ``x^{i=y}`` notation restricted to actual changes
    (``y = x^i`` would give ``x`` itself, which is not a neighbor).
    """
    if not 0 <= player < len(inputs):
        raise ConfigurationError(
            f"player {player} out of range [0, {len(inputs)})"
        )
    current = inputs[player]
    base = tuple(inputs)
    for value in universe:
        if value == current:
            continue
        yield base[:player] + (value,) + base[player + 1 :]


def neighbor_inputs(
    inputs: Sequence[int], universe: Iterable[int]
) -> Iterator[tuple[int, ...]]:
    """All neighbors of ``x`` (inputs differing in exactly one coordinate)."""
    universe = tuple(universe)
    for player in range(len(inputs)):
        yield from neighbors_of_player(inputs, player, universe)


def differing_neighbors(
    inputs: Sequence[int], universe: Iterable[int]
) -> list[tuple[int, ...]]:
    """``N(x)``: neighbors ``x'`` with ``L(x') ≠ L(x)``."""
    reference = _input_set(inputs)
    return [
        neighbor
        for neighbor in neighbor_inputs(inputs, universe)
        if _input_set(neighbor) != reference
    ]


def sensitivity_profile(
    inputs: Sequence[int], universe: Iterable[int]
) -> dict[int, int]:
    """Per-player count ``|N^i(x)|`` of output-changing neighbors.

    §2.3's claim, checkable instance by instance: a player ``i`` holding a
    *unique* value has ``|N^i(x)| = |universe| - 1`` when every change
    breaks ``L`` — in general the count interpolates between 0 (fully
    shadowed input) and ``|universe| - 1``.
    """
    universe = tuple(universe)
    reference = _input_set(inputs)
    profile: dict[int, int] = {}
    for player in range(len(inputs)):
        profile[player] = sum(
            1
            for neighbor in neighbors_of_player(inputs, player, universe)
            if _input_set(neighbor) != reference
        )
    return profile
