"""Closed-form bounds from the paper, as plain functions.

These are the analytic curves the experiments plot measured values against:
Theorem C.2's pointwise ζ cap, Theorem C.3's conditional-expectation floor,
Theorem C.1's round threshold, and the small lemmas (B.7, B.8) the proofs
lean on.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "c2_zeta_bound",
    "c3_zeta_requirement",
    "c1_round_threshold",
    "zeta_crossover_rounds",
    "upper_bound_rounds",
    "cauchy_schwarz_ratio_gap",
    "lemma_b8_probability_bound",
]


def c2_zeta_bound(n_parties: int, rounds: int) -> float:
    """Theorem C.2: on 𝒢, ``ζ(x, π) ≤ (4/n) · 3^{4T/n}``.

    Derived for ε = 1/3 (each lonely round changes the relative likelihood
    by a factor of 3); the convexity step spreads the ≤ T lonely rounds over
    the ≥ n/4 good players.
    """
    if n_parties < 1:
        raise ConfigurationError(f"n_parties must be >= 1, got {n_parties}")
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
    return (4.0 / n_parties) * 3.0 ** (4.0 * rounds / n_parties)


def c3_zeta_requirement(n_parties: int) -> float:
    """Theorem C.3: correct protocols have ``E[ζ | 𝒢] ≥ n^{-3/4}``."""
    if n_parties < 1:
        raise ConfigurationError(f"n_parties must be >= 1, got {n_parties}")
    return n_parties ** (-0.75)


def c1_round_threshold(n_parties: int) -> float:
    """Theorem C.1's explicit threshold: ``n · log₂(n) / 1000`` rounds.

    Protocols shorter than this cannot solve ``InputSet_n`` with error
    < 1/4 over the one-sided 1/3-noisy channel (for large n).
    """
    if n_parties < 1:
        raise ConfigurationError(f"n_parties must be >= 1, got {n_parties}")
    return n_parties * math.log2(max(n_parties, 2)) / 1000.0


def zeta_crossover_rounds(n_parties: int) -> float:
    """Rounds T at which the C.2 cap meets the C.3 floor.

    Solving ``(4/n)·3^{4T/n} = n^{-3/4}`` gives
    ``T = (n/4) · log₃(n^{1/4} / 4)`` — the Θ(n log n) point below which
    the two theorems contradict each other and no correct protocol can
    exist.  Negative solutions (tiny n) clamp to 0.
    """
    if n_parties < 1:
        raise ConfigurationError(f"n_parties must be >= 1, got {n_parties}")
    target = n_parties**0.25 / 4.0
    if target <= 1.0:
        return 0.0
    return (n_parties / 4.0) * math.log(target, 3.0)


def upper_bound_rounds(
    n_parties: int, inner_rounds: int, constant: float = 1.0
) -> float:
    """Theorem 1.2's budget shape: ``c · T · log₂ n`` rounds."""
    if n_parties < 1:
        raise ConfigurationError(f"n_parties must be >= 1, got {n_parties}")
    return constant * inner_rounds * math.log2(max(n_parties, 2))


def cauchy_schwarz_ratio_gap(
    numerators: Sequence[float], denominators: Sequence[float]
) -> float:
    """Lemma B.7's slack: ``Σ aᵢ²/bᵢ − (Σ aᵢ)² / Σ bᵢ`` (always ≥ 0).

    Exposed so property tests can hammer the inequality with random
    positive sequences.
    """
    if len(numerators) != len(denominators):
        raise ConfigurationError("sequences must have equal length")
    if not numerators:
        raise ConfigurationError("sequences must be non-empty")
    if any(b <= 0 for b in denominators) or any(a <= 0 for a in numerators):
        raise ConfigurationError("lemma B.7 needs positive numbers")
    lhs = sum(numerators) ** 2 / sum(denominators)
    rhs = sum(a * a / b for a, b in zip(numerators, denominators))
    return rhs - lhs


def lemma_b8_probability_bound(k: int, universe_size: int) -> float:
    """Lemma B.8: ``Pr[|I| ≤ k/3] ≤ (3/2)(1 − e^{−k/|S|})`` for k < |S|."""
    if k < 1 or universe_size < 1:
        raise ConfigurationError("k and universe_size must be >= 1")
    return 1.5 * (1.0 - math.exp(-k / universe_size))
