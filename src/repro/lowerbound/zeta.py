"""The progress measure ζ(x, π) and its exact analysis (§C.2, §C.3).

For an input ``x`` and transcript ``π``:

    ``Z(x, π) = Σ_{i ∈ G(x,π)} E_{y ~ S^i(π)} [ Pr(x^{i=y}, π) ]``
    ``ζ(x, π) = Pr(x, π) / Z(x, π)``    (0 when ``Pr(x, π) = 0``)

ζ measures how much more likely the transcript makes ``x`` than its feasible
neighbors — i.e. how much the protocol has *learned*.  Theorem C.2 caps it
pointwise for short protocols; Theorem C.3 forces its conditional
expectation up for correct ones.  :class:`LowerBoundAnalyzer` computes both
sides exactly by enumerating the joint distribution of a
:class:`~repro.core.formal.FormalProtocol` — tractable for the small-n
instances experiment E5 uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.core.formal import FormalProtocol, NoiseModel
from repro.errors import ConfigurationError
from repro.lowerbound.feasible import feasible_set
from repro.lowerbound.good_players import (
    good_event_threshold,
    good_players,
)
from repro.util.bits import BitWord

__all__ = ["ZetaPoint", "ZetaSummary", "LowerBoundAnalyzer"]


@dataclass(frozen=True)
class ZetaSummary:
    """Aggregates of one full enumeration (see
    :meth:`LowerBoundAnalyzer.summary`).

    Attributes:
        good_event_probability: ``Pr(𝒢)``.
        expected_zeta_given_good: ``E[ζ | 𝒢]`` (Theorem C.3's left side).
        max_zeta_in_good: ``max ζ`` over 𝒢 (Theorem C.2's left side).
        correctness_probability: ``Pr(𝒞)`` when a reference was supplied,
            else ``None``.
        total_mass: Total probability enumerated (≈ 1.0; a sanity check).
    """

    good_event_probability: float
    expected_zeta_given_good: float
    max_zeta_in_good: float
    correctness_probability: float | None
    total_mass: float


@dataclass(frozen=True)
class ZetaPoint:
    """ζ and its ingredients at one ``(x, π)`` pair.

    Attributes:
        inputs: The input vector ``x``.
        pi: The transcript ``π``.
        probability: Joint ``Pr(x, π)``.
        z_value: The neighbor mass ``Z(x, π)``.
        zeta: The ratio ζ(x, π).
        good: The good-player set ``G(x, π)``.
        in_good_event: Whether ``|G| ≥ n/4`` (the event 𝒢).
    """

    inputs: tuple[Any, ...]
    pi: BitWord
    probability: float
    z_value: float
    zeta: float
    good: frozenset[int]
    in_good_event: bool


class LowerBoundAnalyzer:
    """Exact evaluation of the Appendix C quantities for small instances.

    Args:
        protocol: The formal protocol under analysis (e.g. the noiseless
            ``InputSet`` protocol, or a repetition-hardened variant).
        noise: The channel's noise law; the paper's lower bound uses
            ``NoiseModel.one_sided(1/3)``.
        g2_threshold: Feasible-set size threshold of ``G₂`` (default √n).
        good_fraction: 𝒢 requires ``|G| ≥ good_fraction · n`` (paper: 1/4).

    All expectations enumerate the full joint distribution — use only when
    ``(Π_i |X^i|) · 2^T`` is manageable (n ≤ 4 for ``InputSet``).
    """

    def __init__(
        self,
        protocol: FormalProtocol,
        noise: NoiseModel,
        g2_threshold: float | None = None,
        good_fraction: float = 0.25,
    ) -> None:
        if not 0.0 < good_fraction <= 1.0:
            raise ConfigurationError(
                f"good_fraction must be in (0, 1], got {good_fraction}"
            )
        self.protocol = protocol
        self.noise = noise
        self.g2_threshold = g2_threshold
        self.good_fraction = good_fraction
        self._input_probability = protocol.input_probability()

    # ------------------------------------------------------------------
    # Pointwise quantities
    # ------------------------------------------------------------------

    def joint_probability(
        self, inputs: Sequence[Any], pi: Sequence[int]
    ) -> float:
        """``Pr(x, π) = Pr(x) · Pr(π | x)`` under uniform inputs."""
        return self._input_probability * self.protocol.transcript_probability(
            inputs, pi, self.noise
        )

    def good_set(
        self, inputs: Sequence[Any], pi: Sequence[int]
    ) -> frozenset[int]:
        """``G(x, π)`` with this analyzer's threshold."""
        return good_players(
            self.protocol, inputs, pi, threshold=self._g2_threshold()
        )

    def _g2_threshold(self) -> float:
        if self.g2_threshold is not None:
            return self.g2_threshold
        return math.sqrt(self.protocol.n_parties)

    def z_value(self, inputs: Sequence[Any], pi: Sequence[int]) -> float:
        """``Z(x, π)``: expected neighbor probability over good players."""
        inputs = tuple(inputs)
        total = 0.0
        for party in self.good_set(inputs, pi):
            feasible = feasible_set(self.protocol, party, pi)
            if not feasible:
                continue
            mass = 0.0
            for candidate in feasible:
                neighbor = (
                    inputs[:party] + (candidate,) + inputs[party + 1 :]
                )
                mass += self.joint_probability(neighbor, pi)
            total += mass / len(feasible)
        return total

    def zeta_point(
        self, inputs: Sequence[Any], pi: Sequence[int]
    ) -> ZetaPoint:
        """ζ(x, π) with all ingredients."""
        inputs = tuple(inputs)
        pi = tuple(pi)
        probability = self.joint_probability(inputs, pi)
        good = self.good_set(inputs, pi)
        if probability == 0.0:
            z_value = 0.0
            zeta = 0.0
        else:
            z_value = self.z_value(inputs, pi)
            # Inside 𝒢 the good set is non-empty and contains x itself among
            # the feasible neighbors, so Z > 0 (§C.2).  Outside 𝒢 the good
            # set may be empty; ζ is then +inf by convention (the transcript
            # has no feasible competition to x), which never enters the
            # conditional expectation E[ζ | 𝒢].
            if z_value == 0.0:
                zeta = math.inf
            else:
                zeta = probability / z_value
        threshold = self.good_fraction * self.protocol.n_parties
        return ZetaPoint(
            inputs=inputs,
            pi=pi,
            probability=probability,
            z_value=z_value,
            zeta=zeta,
            good=good,
            in_good_event=len(good) >= threshold,
        )

    # ------------------------------------------------------------------
    # Exhaustive expectations
    # ------------------------------------------------------------------

    def enumerate_points(self) -> Iterator[ZetaPoint]:
        """Every positive-probability ``(x, π)`` pair, as ζ points."""
        for inputs in self.protocol.enumerate_inputs():
            for pi, conditional in self.protocol.enumerate_transcripts(
                inputs, self.noise
            ):
                if conditional == 0.0:
                    continue
                yield self.zeta_point(inputs, pi)

    def good_event_probability(self) -> float:
        """``Pr(𝒢)`` over inputs and channel noise."""
        return sum(
            point.probability
            for point in self.enumerate_points()
            if point.in_good_event
        )

    def expected_zeta_given_good(self) -> float:
        """``E[ζ(x, π) | 𝒢]`` — the left side of Theorem C.3."""
        mass = 0.0
        weighted = 0.0
        for point in self.enumerate_points():
            if not point.in_good_event:
                continue
            mass += point.probability
            weighted += point.probability * point.zeta
        if mass == 0.0:
            return 0.0
        return weighted / mass

    def max_zeta_in_good(self) -> float:
        """``max ζ(x, π)`` over 𝒢 — the quantity Theorem C.2 caps."""
        best = 0.0
        for point in self.enumerate_points():
            if point.in_good_event and point.zeta > best:
                best = point.zeta
        return best

    def summary(
        self, reference: Callable[[Sequence[Any]], Any] | None = None
    ) -> "ZetaSummary":
        """Every aggregate in one enumeration pass.

        Computes Pr(𝒢), E[ζ | 𝒢], max ζ on 𝒢 and (when ``reference`` is
        given) the protocol's exact correctness probability, visiting each
        positive-probability ``(x, π)`` pair once — the entry point the E5
        benchmark uses, since separate calls would redo the enumeration.
        """
        good_mass = 0.0
        weighted_zeta = 0.0
        max_zeta = 0.0
        correct_mass = 0.0
        total_mass = 0.0
        for inputs in self.protocol.enumerate_inputs():
            expected = reference(inputs) if reference is not None else None
            for pi, conditional in self.protocol.enumerate_transcripts(
                inputs, self.noise
            ):
                if conditional == 0.0:
                    continue
                point = self.zeta_point(inputs, pi)
                total_mass += point.probability
                if reference is not None and self.protocol.output(
                    pi
                ) == expected:
                    correct_mass += point.probability
                if point.in_good_event:
                    good_mass += point.probability
                    weighted_zeta += point.probability * point.zeta
                    if point.zeta > max_zeta:
                        max_zeta = point.zeta
        return ZetaSummary(
            good_event_probability=good_mass,
            expected_zeta_given_good=(
                weighted_zeta / good_mass if good_mass > 0 else 0.0
            ),
            max_zeta_in_good=max_zeta,
            correctness_probability=(
                correct_mass if reference is not None else None
            ),
            total_mass=total_mass,
        )

    def correctness_probability(
        self, reference: Callable[[Sequence[Any]], Any]
    ) -> float:
        """``Pr(𝒞)``: the transcript-determined output matches ``reference``.

        ``reference(x)`` is the task's correct answer (e.g. ``L(x)``); the
        protocol's output function is evaluated on the transcript alone,
        matching the paper's normalisation of player 1's output.
        """
        total = 0.0
        for inputs in self.protocol.enumerate_inputs():
            expected = reference(inputs)
            for pi, conditional in self.protocol.enumerate_transcripts(
                inputs, self.noise
            ):
                if conditional == 0.0:
                    continue
                if self.protocol.output(pi) == expected:
                    total += self._input_probability * conditional
        return total
