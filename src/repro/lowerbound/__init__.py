"""The lower-bound machinery of Appendix C, made executable.

Theorem C.1 proves that any protocol for ``InputSet_n`` over the one-sided
ε-noisy beeping channel needs Ω(n log n) rounds.  The proof pivots on a
progress measure ζ(x, π) — the probability of the input ``x`` relative to
its feasible neighbors, given the transcript ``π`` — squeezed between two
theorems:

* **Theorem C.2** (short protocols ⇒ small ζ): for every ``(x, π)`` in the
  good event 𝒢, ``ζ(x, π) ≤ (4/n)·3^{4T/n}``.
* **Theorem C.3** (correct protocols ⇒ large ζ): if the protocol is correct
  with probability ≥ 2/3 + n^{-1/8} then ``E[ζ | 𝒢] ≥ n^{-3/4}``.

This package computes every object in that argument *exactly* on small
instances (via :class:`~repro.core.formal.FormalProtocol` enumeration) and
*by Monte Carlo* on larger ones:

* :mod:`~repro.lowerbound.neighbors` — the neighbor sets N(x), N^i(x) and
  the sensitivity counts of §2.3;
* :mod:`~repro.lowerbound.feasible` — the feasible sets S^i(π) (inputs not
  ruled out by the 0s of π);
* :mod:`~repro.lowerbound.good_players` — G₁(x), G₂(π), G(x,π), the event
  𝒢, and the Lemma B.8 sampler;
* :mod:`~repro.lowerbound.zeta` — Z(x,π), ζ(x,π), exact conditional
  expectations, and correctness probabilities;
* :mod:`~repro.lowerbound.theory` — the closed-form bounds of
  Theorems C.1/C.2/C.3 and Lemmas B.7/B.8/C.5.
"""

from repro.lowerbound.neighbors import (
    differing_neighbors,
    neighbor_inputs,
    neighbors_of_player,
    sensitivity_profile,
)
from repro.lowerbound.feasible import feasible_set, feasible_sizes
from repro.lowerbound.good_players import (
    good_players,
    large_feasible_players,
    sample_unique_counts,
    unique_input_players,
)
from repro.lowerbound.zeta import LowerBoundAnalyzer, ZetaPoint, ZetaSummary
from repro.lowerbound.sampling import (
    SampledZetaSummary,
    estimate_zeta,
    sample_zeta_points,
)
from repro.lowerbound import theory

__all__ = [
    "neighbor_inputs",
    "differing_neighbors",
    "neighbors_of_player",
    "sensitivity_profile",
    "feasible_set",
    "feasible_sizes",
    "unique_input_players",
    "large_feasible_players",
    "good_players",
    "sample_unique_counts",
    "LowerBoundAnalyzer",
    "ZetaPoint",
    "ZetaSummary",
    "SampledZetaSummary",
    "estimate_zeta",
    "sample_zeta_points",
    "theory",
]
