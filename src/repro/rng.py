"""Seeded, splittable randomness for reproducible executions.

Every stochastic component in this package (channel noise, randomized
protocols, Monte-Carlo sweeps) draws its randomness from a
:class:`random.Random` instance that is threaded through explicitly.  This
module provides helpers to derive independent child generators from a parent
seed so that, e.g., the channel noise and a protocol's shared randomness are
decorrelated but each is individually reproducible.

The design mirrors "splittable" PRNGs: :func:`spawn` hashes the parent seed
together with a string label, so the derived stream depends only on
``(seed, label)`` and not on the order in which other streams were created.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["derive_seed", "spawn", "spawn_many", "ensure_rng"]

_SEED_BYTES = 8


def derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``(seed, label)`` deterministically.

    Uses BLAKE2b over the decimal seed and the label, truncated to 64 bits.
    Distinct labels give (cryptographically) independent child seeds.

    >>> derive_seed(0, "noise") != derive_seed(0, "inputs")
    True
    >>> derive_seed(0, "noise") == derive_seed(0, "noise")
    True
    """
    digest = hashlib.blake2b(
        f"{seed}:{label}".encode("utf-8"), digest_size=_SEED_BYTES
    ).digest()
    return int.from_bytes(digest, "big")


def spawn(seed: int, label: str) -> random.Random:
    """Create a fresh :class:`random.Random` for stream ``label``.

    >>> spawn(1, "a").random() == spawn(1, "a").random()
    True
    """
    return random.Random(derive_seed(seed, label))


def spawn_many(seed: int, label: str, count: int) -> Iterator[random.Random]:
    """Yield ``count`` independent generators labelled ``label[0..count)``."""
    for index in range(count):
        yield spawn(seed, f"{label}[{index}]")


def ensure_rng(rng: random.Random | int | None) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random`.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` (fresh nondeterministic generator).  This is the single
    normalisation point used by all public entry points that accept a
    ``rng`` argument.
    """
    if isinstance(rng, random.Random):
        return rng
    if rng is None:
        return random.Random()
    return random.Random(rng)
