"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration mistakes from runtime
protocol failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "ProtocolDesyncError",
    "TranscriptError",
    "ChannelError",
    "CodingError",
    "DecodingError",
    "SimulationError",
    "SimulationBudgetExceeded",
    "TaskError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """A parameter is outside its legal range or inconsistent with others.

    Raised eagerly at construction time (channels with ``epsilon`` outside
    ``[0, 1]``, codes with non-positive length, simulators with zero chunk
    size, ...) so that misconfiguration fails fast rather than corrupting an
    execution.
    """


class ProtocolError(ReproError):
    """A protocol implementation violated the runtime contract."""


class ProtocolDesyncError(ProtocolError):
    """Parties fell out of lock-step.

    The beeping model is synchronous: in every round *every* party beeps a
    bit.  The engine raises this error when one party's coroutine finishes
    while another still wants to communicate, which indicates a bug in the
    protocol implementation (parties must agree on the round count).
    """


class TranscriptError(ReproError):
    """A transcript was indexed or combined inconsistently."""


class ChannelError(ReproError):
    """A channel received malformed input (wrong arity, non-bit values)."""


class CodingError(ReproError):
    """Base class for encoding/decoding errors."""


class DecodingError(CodingError):
    """A received word could not be decoded (wrong length, empty codebook)."""


class SimulationError(ReproError):
    """A noise-resilient simulation failed to produce a usable transcript."""


class SimulationBudgetExceeded(SimulationError):
    """The simulator ran out of its round budget before committing everything.

    The rewind-if-error schemes allocate a fixed number of chunk attempts.
    Under extreme noise the budget can be exhausted; this error carries the
    committed prefix length so callers can inspect partial progress.
    """

    def __init__(self, message: str, committed_rounds: int = 0) -> None:
        super().__init__(message)
        self.committed_rounds = committed_rounds


class TaskError(ReproError):
    """A task was given inputs outside its domain."""
