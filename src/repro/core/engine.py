"""The lock-step execution engine.

:func:`run_protocol` drives a set of party coroutines over a channel, round
by round, enforcing the beeping model's synchrony:

1. ask every party for its bit (``next``/``send`` on its generator);
2. transmit the bits through the channel;
3. deliver each party its received bit.

All parties must terminate in the same round — a party finishing early while
another still wants to beep indicates a protocol bug and raises
:class:`~repro.errors.ProtocolDesyncError`.  A ``max_rounds`` guard turns
runaway protocols into a clean failure instead of an infinite loop.

The loop is written for the Monte-Carlo hot path: with T(n) = Θ(n log n)
simulation rounds per trial (Theorem 1.2), per-round allocation dominates
wall-clock.  Correlated channels (``channel.correlated``, the paper's
model) therefore take a fast path that

* reuses one send buffer instead of building an n-tuple per round,
* hands the channel the precomputed OR and beep count through
  :meth:`~repro.channels.base.Channel.transmit_shared`, which returns the
  single shared received bit — no per-round ``RoundOutcome`` or
  ``(bit,) * n`` received tuple,
* appends raw bytes to the columnar transcript
  (:meth:`~repro.core.transcript.Transcript.append_raw`) instead of a
  :class:`~repro.core.transcript.RoundRecord` per round, and
* folds beep counting into the single per-party collection loop.

Non-correlated channels (independent noise, networks) keep the word-level
``transmit`` path.  Both paths are bitwise equivalent to the seed loop
preserved in :mod:`repro.core._legacy_engine` — same RNG draw order, same
results — which the equivalence suite enforces.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Sequence

from repro.channels.base import Channel
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.core.transcript import Transcript
from repro.errors import ProtocolDesyncError, ProtocolError
from repro.util.bits import validate_bit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

__all__ = ["run_protocol"]

_DEFAULT_MAX_ROUNDS = 10_000_000

# CPython caches small ints, so a validated bit is one of these two exact
# objects and the identity test below short-circuits the validation call.
# On interpreters without the cache the test just falls through to
# validate_bit — semantics are unchanged either way.
_BIT_ZERO = 0
_BIT_ONE = 1


def run_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    channel: Channel,
    *,
    shared_seed: int | None = None,
    record_sent: bool = True,
    max_rounds: int = _DEFAULT_MAX_ROUNDS,
    observe: "Observer | None" = None,
) -> ExecutionResult:
    """Execute ``protocol`` on ``inputs`` over ``channel``.

    Args:
        protocol: The protocol factory.
        inputs: One input per party.
        channel: Any :class:`~repro.channels.base.Channel`; its statistics
            for this run are snapshotted into the result.
        shared_seed: Shared-randomness seed handed to every party
            (``None`` for deterministic protocols).
        record_sent: Keep the per-round sent bits in the transcript.  Turn
            off for long benchmark runs to save memory (the transcript
            then stores three bytes per round, independent of n).
        max_rounds: Hard cap on the number of rounds.
        observe: Optional :class:`~repro.observe.Observer`; when enabled,
            a ``protocol_run`` summary event and one ``noise_flip`` event
            per noisy round are emitted after the execution.  The events
            are derived from the transcript and the stats delta — the hot
            loop is untouched, no RNG draws are consumed, and the
            execution is bitwise identical to an untraced one.

    Returns:
        An :class:`~repro.core.result.ExecutionResult`.

    Raises:
        ProtocolDesyncError: Parties disagreed on when to stop.
        ProtocolError: The protocol exceeded ``max_rounds``.
    """
    tracing = observe is not None and observe.enabled
    started = perf_counter() if tracing else 0.0
    parties = protocol.create_parties(inputs, shared_seed=shared_seed)
    n_parties = len(parties)
    programs = [party.run() for party in parties]

    outputs: list[Any] = [None] * n_parties
    transcript = Transcript(n_parties)
    stats_before = channel.stats.snapshot()
    # Per-party beep counts: the *energy* each party spends, a first-class
    # complexity measure in the beeping literature (tracked regardless of
    # record_sent, because it is O(n) total, not O(n·T)).
    beeps_per_party = [0] * n_parties

    _validate = validate_bit

    # Prime every coroutine to its first yield; collect outputs of parties
    # whose program has zero rounds.  Beep accounting happens here, at bit
    # collection: a collected bit is sent in the next round or the
    # execution aborts with an exception, so the counts match the seed
    # engine's per-sent-round accounting on every returning execution.
    pending_bits: list[int] = [0] * n_parties
    finished = [False] * n_parties
    finished_count = 0
    pending_beeps = 0  # ones among the pending bits == next round's energy
    for index, program in enumerate(programs):
        try:
            bit = next(program)
        except StopIteration as stop:
            finished[index] = True
            finished_count += 1
            outputs[index] = stop.value
            continue
        if bit is not _BIT_ZERO and bit is not _BIT_ONE:
            bit = _validate(bit)
        pending_bits[index] = bit
        beeps_per_party[index] += bit
        pending_beeps += bit

    fast_path = channel.correlated
    append_raw = transcript.append_raw
    transmit_shared = channel.transmit_shared
    transmit = channel.transmit
    # Bind each generator's send once; the loop below runs n times per round.
    sends = [program.send for program in programs]
    rounds = 0
    while finished_count < n_parties:
        if finished_count:
            laggards = [i for i, done in enumerate(finished) if not done]
            raise ProtocolDesyncError(
                f"parties {laggards} still communicating after others "
                f"finished at round {rounds}"
            )
        if rounds >= max_rounds:
            raise ProtocolError(
                f"protocol exceeded max_rounds={max_rounds}"
            )

        or_value = 1 if pending_beeps else 0
        if fast_path:
            # Correlated fast path: one shared received bit, no tuples.
            received = transmit_shared(or_value, pending_beeps)
            append_raw(
                pending_bits if record_sent else None, or_value, received
            )
            rounds += 1
            pending_beeps = 0
            for index, send in enumerate(sends):
                try:
                    bit = send(received)
                except StopIteration as stop:
                    finished[index] = True
                    finished_count += 1
                    outputs[index] = stop.value
                    continue
                if bit is not _BIT_ZERO and bit is not _BIT_ONE:
                    bit = _validate(bit)
                pending_bits[index] = bit
                beeps_per_party[index] += bit
                pending_beeps += bit
        else:
            # Word path: per-party views (independent noise, networks).
            outcome = transmit(tuple(pending_bits))
            received_word = outcome.received
            append_raw(
                pending_bits if record_sent else None,
                outcome.or_value,
                received_word,
            )
            rounds += 1
            pending_beeps = 0
            for index, send in enumerate(sends):
                try:
                    bit = send(received_word[index])
                except StopIteration as stop:
                    finished[index] = True
                    finished_count += 1
                    outputs[index] = stop.value
                    continue
                if bit is not _BIT_ZERO and bit is not _BIT_ONE:
                    bit = _validate(bit)
                pending_bits[index] = bit
                beeps_per_party[index] += bit
                pending_beeps += bit

    stats_after = channel.stats.snapshot()
    delta = _stats_delta(stats_before, stats_after)
    result = ExecutionResult(
        outputs=outputs,
        transcript=transcript,
        rounds=rounds,
        channel_stats=delta,
        beeps_per_party=tuple(beeps_per_party),
    )
    if tracing:
        _emit_run_events(observe, protocol, result, perf_counter() - started)
    return result


def _emit_run_events(observe, protocol, result, elapsed: float) -> None:
    """Post-run engine events: one summary plus one event per noise hit.

    Everything here is read back out of the columnar transcript and the
    stats delta, so tracing adds zero work to the per-round loop.
    """
    stats = result.channel_stats
    observe.emit(
        "protocol_run",
        protocol=type(protocol).__name__,
        n_parties=result.transcript.n_parties,
        rounds=result.rounds,
        beeps_sent=stats.beeps_sent,
        or_ones=stats.or_ones,
        flips_up=stats.flips_up,
        flips_down=stats.flips_down,
        total_energy=result.total_energy,
        elapsed_s=elapsed,
    )
    transcript = result.transcript
    if transcript.noisy_count:
        or_values = transcript.or_values()
        for position in transcript.noise_positions():
            or_value = or_values[position]
            # Shared-view convention: the flip direction relative to the
            # round's true OR (independent noise may flip individual
            # parties both ways; the per-party split is in the stats).
            observe.emit(
                "noise_flip",
                round=position,
                or_value=or_value,
                direction="down" if or_value else "up",
            )


def _stats_delta(before, after):
    """Channel counters accumulated during this execution only."""
    from repro.channels.stats import ChannelStats

    return ChannelStats(
        rounds=after.rounds - before.rounds,
        beeps_sent=after.beeps_sent - before.beeps_sent,
        or_ones=after.or_ones - before.or_ones,
        flips_up=after.flips_up - before.flips_up,
        flips_down=after.flips_down - before.flips_down,
    )
