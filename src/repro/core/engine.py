"""The lock-step execution engine.

:func:`run_protocol` drives a set of party coroutines over a channel, round
by round, enforcing the beeping model's synchrony:

1. ask every party for its bit (``next``/``send`` on its generator);
2. transmit the bits through the channel;
3. deliver each party its received bit.

All parties must terminate in the same round — a party finishing early while
another still wants to beep indicates a protocol bug and raises
:class:`~repro.errors.ProtocolDesyncError`.  A ``max_rounds`` guard turns
runaway protocols into a clean failure instead of an infinite loop.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.channels.base import Channel
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.core.transcript import RoundRecord, Transcript
from repro.errors import ProtocolDesyncError, ProtocolError
from repro.util.bits import validate_bit

__all__ = ["run_protocol"]

_DEFAULT_MAX_ROUNDS = 10_000_000


def run_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    channel: Channel,
    *,
    shared_seed: int | None = None,
    record_sent: bool = True,
    max_rounds: int = _DEFAULT_MAX_ROUNDS,
) -> ExecutionResult:
    """Execute ``protocol`` on ``inputs`` over ``channel``.

    Args:
        protocol: The protocol factory.
        inputs: One input per party.
        channel: Any :class:`~repro.channels.base.Channel`; its statistics
            for this run are snapshotted into the result.
        shared_seed: Shared-randomness seed handed to every party
            (``None`` for deterministic protocols).
        record_sent: Keep the per-round sent bits in the transcript.  Turn
            off for long benchmark runs to save memory.
        max_rounds: Hard cap on the number of rounds.

    Returns:
        An :class:`~repro.core.result.ExecutionResult`.

    Raises:
        ProtocolDesyncError: Parties disagreed on when to stop.
        ProtocolError: The protocol exceeded ``max_rounds``.
    """
    parties = protocol.create_parties(inputs, shared_seed=shared_seed)
    n_parties = len(parties)
    programs = [party.run() for party in parties]

    outputs: list[Any] = [None] * n_parties
    transcript = Transcript(n_parties)
    stats_before = channel.stats.snapshot()
    # Per-party beep counts: the *energy* each party spends, a first-class
    # complexity measure in the beeping literature (tracked regardless of
    # record_sent, because it is O(n) total, not O(n·T)).
    beeps_per_party = [0] * n_parties

    # Prime every coroutine to its first yield; collect outputs of parties
    # whose program has zero rounds.
    pending_bits: list[int | None] = [None] * n_parties
    finished = [False] * n_parties
    for index, program in enumerate(programs):
        try:
            pending_bits[index] = validate_bit(next(program))
        except StopIteration as stop:
            finished[index] = True
            outputs[index] = stop.value

    rounds = 0
    while not all(finished):
        if any(finished):
            laggards = [i for i, done in enumerate(finished) if not done]
            raise ProtocolDesyncError(
                f"parties {laggards} still communicating after others "
                f"finished at round {rounds}"
            )
        if rounds >= max_rounds:
            raise ProtocolError(
                f"protocol exceeded max_rounds={max_rounds}"
            )

        sent = tuple(pending_bits[index] for index in range(n_parties))
        for index, bit in enumerate(sent):
            beeps_per_party[index] += bit
        outcome = channel.transmit(sent)
        transcript.append(
            RoundRecord(
                sent=sent if record_sent else None,
                or_value=outcome.or_value,
                received=outcome.received,
            )
        )
        rounds += 1

        for index, program in enumerate(programs):
            try:
                pending_bits[index] = validate_bit(
                    program.send(outcome.received[index])
                )
            except StopIteration as stop:
                finished[index] = True
                outputs[index] = stop.value

    stats_after = channel.stats.snapshot()
    delta = _stats_delta(stats_before, stats_after)
    return ExecutionResult(
        outputs=outputs,
        transcript=transcript,
        rounds=rounds,
        channel_stats=delta,
        beeps_per_party=tuple(beeps_per_party),
    )


def _stats_delta(before, after):
    """Channel counters accumulated during this execution only."""
    from repro.channels.stats import ChannelStats

    return ChannelStats(
        rounds=after.rounds - before.rounds,
        beeps_sent=after.beeps_sent - before.beeps_sent,
        or_ones=after.or_ones - before.or_ones,
        flips_up=after.flips_up - before.flips_up,
        flips_down=after.flips_down - before.flips_down,
    )
