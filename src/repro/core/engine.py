"""The lock-step execution engine.

:func:`run_protocol` drives a set of party coroutines over a channel, round
by round, enforcing the beeping model's synchrony:

1. ask every party for its bit (``next``/``send`` on its generator);
2. transmit the bits through the channel;
3. deliver each party its received bit.

All parties must terminate in the same round — a party finishing early while
another still wants to beep indicates a protocol bug and raises
:class:`~repro.errors.ProtocolDesyncError`.  A ``max_rounds`` guard turns
runaway protocols into a clean failure instead of an infinite loop.

The loop is written for the Monte-Carlo hot path: with T(n) = Θ(n log n)
simulation rounds per trial (Theorem 1.2), per-round allocation dominates
wall-clock.  Correlated channels (``channel.correlated``, the paper's
model) therefore take a fast path that

* reuses one send buffer instead of building an n-tuple per round,
* hands the channel the precomputed OR and beep count through
  :meth:`~repro.channels.base.Channel.transmit_shared`, which returns the
  single shared received bit — no per-round ``RoundOutcome`` or
  ``(bit,) * n`` received tuple,
* appends raw bytes to the columnar transcript
  (:meth:`~repro.core.transcript.Transcript.append_raw`) instead of a
  :class:`~repro.core.transcript.RoundRecord` per round, and
* folds beep counting into the single per-party collection loop.

Non-correlated channels (independent noise, networks) keep the word-level
``transmit`` path.  Both paths are bitwise equivalent to the seed loop
preserved in :mod:`repro.core._legacy_engine` — same RNG draw order, same
results — which the equivalence suite enforces.

Batch tokens and the sparse scheduler
-------------------------------------

The dense loops above still pay n generator ``send()`` calls per round even
when most parties sit in structured idle/repeat stretches (``silent_rounds``
listeners of the owners phase, ``repeated_bit`` majority votes).  A party
can instead yield a batch token — :class:`~repro.core.party.Burst` /
:class:`~repro.core.party.Silence` — meaning "my next ``count`` bits are
this constant"; the engine then moves the whole execution to an
event-driven *sparse* loop:

* a **wake-up wheel** (dict: wake round → party indices) schedules each
  sleeping party's resumption, so sleepers cost nothing per round;
* a **standing-beep counter** aggregates the 1-bits of sleeping ``Burst``
  parties, so their contribution to the round's OR and beep count is O(1);
* per-round work is proportional to the number of *awake* parties, and
  when nobody is awake the engine transmits and appends the entire stretch
  up to the next wake-up in one block
  (:meth:`~repro.channels.base.Channel.transmit_shared_run` +
  :meth:`~repro.core.transcript.Transcript.append_shared_run`);
* on wake-up a party receives its heard bits as one ``bytes`` object — on
  the correlated fast path a single bulk slice of the transcript's shared
  received column (:meth:`~repro.core.transcript.Transcript.shared_slice`),
  not a per-round Python list.

Tokens are pure sugar: a ``Burst(b, k)`` execution is bitwise identical —
transcript columns, outputs, ``beeps_per_party``, channel statistics, RNG
draw order — to the same party yielding ``b`` for ``k`` consecutive rounds.
Protocols that never yield a token never leave the dense loops (the token
check hides in the existing not-a-small-int branch), so the pure per-round
hot path is unchanged.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Sequence

from repro.channels.base import Channel
from repro.channels.stats import ChannelStats
from repro.core.party import Burst
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.core.transcript import Transcript
from repro.errors import ProtocolDesyncError, ProtocolError
from repro.util.bits import validate_bit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

__all__ = ["run_protocol"]

_DEFAULT_MAX_ROUNDS = 10_000_000

# CPython caches small ints, so a validated bit is one of these two exact
# objects and the identity test below short-circuits the validation call.
# On interpreters without the cache the test just falls through to
# validate_bit — semantics are unchanged either way.
_BIT_ZERO = 0
_BIT_ONE = 1


def run_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    channel: Channel,
    *,
    shared_seed: int | None = None,
    record_sent: bool = True,
    max_rounds: int = _DEFAULT_MAX_ROUNDS,
    observe: "Observer | None" = None,
) -> ExecutionResult:
    """Execute ``protocol`` on ``inputs`` over ``channel``.

    Args:
        protocol: The protocol factory.
        inputs: One input per party.
        channel: Any :class:`~repro.channels.base.Channel`; its statistics
            for this run are snapshotted into the result.
        shared_seed: Shared-randomness seed handed to every party
            (``None`` for deterministic protocols).
        record_sent: Keep the per-round sent bits in the transcript.  Turn
            off for long benchmark runs to save memory (the transcript
            then stores three bytes per round, independent of n).
        max_rounds: Hard cap on the number of rounds.
        observe: Optional :class:`~repro.observe.Observer`; when enabled,
            a ``protocol_run`` summary event and one ``noise_flip`` event
            per noisy round are emitted after the execution.  The events
            are derived from the transcript and the stats delta — the hot
            loop is untouched, no RNG draws are consumed, and the
            execution is bitwise identical to an untraced one.

    Parties may yield batch tokens (:class:`~repro.core.party.Burst`,
    :class:`~repro.core.party.Silence`) instead of per-round bits; see the
    module docstring for the sparse scheduling this enables.  The result is
    bitwise identical either way.

    Returns:
        An :class:`~repro.core.result.ExecutionResult`.

    Raises:
        ProtocolDesyncError: Parties disagreed on when to stop.
        ProtocolError: The protocol exceeded ``max_rounds``, or a batch
            token carried an invalid repeat count.
    """
    tracing = observe is not None and observe.enabled
    started = perf_counter() if tracing else 0.0
    parties = protocol.create_parties(inputs, shared_seed=shared_seed)
    n_parties = len(parties)
    programs = [party.run() for party in parties]

    outputs: list[Any] = [None] * n_parties
    transcript = Transcript(n_parties)
    stats_before = channel.stats.snapshot()
    # Per-party beep counts: the *energy* each party spends, a first-class
    # complexity measure in the beeping literature (tracked regardless of
    # record_sent, because it is O(n) total, not O(n·T)).
    beeps_per_party = [0] * n_parties

    _validate = validate_bit

    # Prime every coroutine to its first yield; collect outputs of parties
    # whose program has zero rounds.  Beep accounting happens here, at bit
    # collection: a collected bit is sent in the next round or the
    # execution aborts with an exception, so the counts match the seed
    # engine's per-sent-round accounting on every returning execution.
    pending_bits: list[int] = [0] * n_parties
    finished = [False] * n_parties
    finished_count = 0
    pending_beeps = 0  # ones among the pending bits == next round's energy
    sparse_entries: list[tuple[int, Any]] | None = None
    for index, program in enumerate(programs):
        try:
            bit = next(program)
        except StopIteration as stop:
            finished[index] = True
            finished_count += 1
            outputs[index] = stop.value
            continue
        if bit is not _BIT_ZERO and bit is not _BIT_ONE:
            if isinstance(bit, Burst):
                # First batch token: the run belongs to the sparse loop.
                # Undo the per-bit energy credits of the already-primed
                # parties — the sparse entry accounting re-credits them —
                # and prime the rest token-aware.
                sparse_entries = []
                for earlier in range(index):
                    if finished[earlier]:
                        continue
                    beeps_per_party[earlier] -= pending_bits[earlier]
                    sparse_entries.append((earlier, pending_bits[earlier]))
                sparse_entries.append((index, bit))
                for later in range(index + 1, n_parties):
                    try:
                        token = next(programs[later])
                    except StopIteration as stop:
                        finished[later] = True
                        finished_count += 1
                        outputs[later] = stop.value
                        continue
                    sparse_entries.append((later, token))
                break
            bit = _validate(bit)
        pending_bits[index] = bit
        beeps_per_party[index] += bit
        pending_beeps += bit

    # Bind each generator's send once; the loops below run n times per round.
    sends = [program.send for program in programs]
    if sparse_entries is not None:
        rounds = _run_sparse(
            sends, channel, transcript, record_sent, max_rounds,
            outputs, finished, finished_count, beeps_per_party,
            0, sparse_entries,
        )
    else:
        rounds = _run_dense(
            sends, channel, transcript, record_sent, max_rounds,
            outputs, finished, finished_count, beeps_per_party,
            pending_bits, pending_beeps,
        )

    stats_after = channel.stats.snapshot()
    delta = _stats_delta(stats_before, stats_after)
    result = ExecutionResult(
        outputs=outputs,
        transcript=transcript,
        rounds=rounds,
        channel_stats=delta,
        beeps_per_party=tuple(beeps_per_party),
    )
    if tracing:
        _emit_run_events(observe, protocol, result, perf_counter() - started)
    return result


def _run_dense(
    sends: list,
    channel: Channel,
    transcript: Transcript,
    record_sent: bool,
    max_rounds: int,
    outputs: list,
    finished: list,
    finished_count: int,
    beeps_per_party: list,
    pending_bits: list,
    pending_beeps: int,
) -> int:
    """The per-round loops — every party advances every round.

    This is the seed-equivalent hot path, unchanged for protocols that only
    ever yield plain bits.  The first batch token seen in a collection loop
    hands the rest of the execution to :func:`_run_sparse` (the check lives
    inside the existing not-a-cached-small-int branch, so pure per-round
    protocols pay nothing for it).  Returns the number of rounds executed.
    """
    n_parties = len(sends)
    _validate = validate_bit
    fast_path = channel.correlated
    append_raw = transcript.append_raw
    transmit_shared = channel.transmit_shared
    transmit = channel.transmit
    rounds = 0
    while finished_count < n_parties:
        if finished_count:
            laggards = [i for i, done in enumerate(finished) if not done]
            raise ProtocolDesyncError(
                f"parties {laggards} still communicating after others "
                f"finished at round {rounds}"
            )
        if rounds >= max_rounds:
            raise ProtocolError(
                f"protocol exceeded max_rounds={max_rounds}"
            )

        or_value = 1 if pending_beeps else 0
        if fast_path:
            # Correlated fast path: one shared received bit, no tuples.
            received = transmit_shared(or_value, pending_beeps)
            append_raw(
                pending_bits if record_sent else None, or_value, received
            )
            rounds += 1
            pending_beeps = 0
            for index, send in enumerate(sends):
                try:
                    bit = send(received)
                except StopIteration as stop:
                    finished[index] = True
                    finished_count += 1
                    outputs[index] = stop.value
                    continue
                if bit is not _BIT_ZERO and bit is not _BIT_ONE:
                    if isinstance(bit, Burst):
                        return _dense_to_sparse(
                            sends, channel, transcript, record_sent,
                            max_rounds, outputs, finished, finished_count,
                            beeps_per_party, pending_bits, rounds,
                            index, bit, received, None,
                        )
                    bit = _validate(bit)
                pending_bits[index] = bit
                beeps_per_party[index] += bit
                pending_beeps += bit
        else:
            # Word path: per-party views (independent noise, networks).
            outcome = transmit(tuple(pending_bits))
            received_word = outcome.received
            append_raw(
                pending_bits if record_sent else None,
                outcome.or_value,
                received_word,
                outcome.flips,
            )
            rounds += 1
            pending_beeps = 0
            for index, send in enumerate(sends):
                try:
                    bit = send(received_word[index])
                except StopIteration as stop:
                    finished[index] = True
                    finished_count += 1
                    outputs[index] = stop.value
                    continue
                if bit is not _BIT_ZERO and bit is not _BIT_ONE:
                    if isinstance(bit, Burst):
                        return _dense_to_sparse(
                            sends, channel, transcript, record_sent,
                            max_rounds, outputs, finished, finished_count,
                            beeps_per_party, pending_bits, rounds,
                            index, bit, None, received_word,
                        )
                    bit = _validate(bit)
                pending_bits[index] = bit
                beeps_per_party[index] += bit
                pending_beeps += bit
    return rounds


def _dense_to_sparse(
    sends: list,
    channel: Channel,
    transcript: Transcript,
    record_sent: bool,
    max_rounds: int,
    outputs: list,
    finished: list,
    finished_count: int,
    beeps_per_party: list,
    pending_bits: list,
    rounds: int,
    token_index: int,
    token: Burst,
    received,
    received_word,
) -> int:
    """A party yielded its first batch token mid-collection.

    Finish the round's collection token-aware, then hand the execution to
    :func:`_run_sparse`.  Cold path — runs at most once per execution.
    """
    entries: list[tuple[int, Any]] = []
    # Parties before token_index were already credited their next bit by
    # the dense collection loop; the sparse entry accounting re-credits.
    for earlier in range(token_index):
        if finished[earlier]:
            continue
        beeps_per_party[earlier] -= pending_bits[earlier]
        entries.append((earlier, pending_bits[earlier]))
    entries.append((token_index, token))
    for later in range(token_index + 1, len(sends)):
        payload = received if received_word is None else received_word[later]
        try:
            follow = sends[later](payload)
        except StopIteration as stop:
            finished[later] = True
            finished_count += 1
            outputs[later] = stop.value
            continue
        entries.append((later, follow))
    return _run_sparse(
        sends, channel, transcript, record_sent, max_rounds,
        outputs, finished, finished_count, beeps_per_party,
        rounds, entries,
    )


def _run_sparse(
    sends: list,
    channel: Channel,
    transcript: Transcript,
    record_sent: bool,
    max_rounds: int,
    outputs: list,
    finished: list,
    finished_count: int,
    beeps_per_party: list,
    rounds: int,
    entries: list,
) -> int:
    """The event-driven loops — per-round work ∝ number of awake parties.

    ``entries`` holds one ``(party_index, yielded_value)`` pair per
    unfinished party, in index order, all covering round ``rounds`` onward.
    Scheduling state:

    * ``bits[i]`` — the bit party ``i`` sends every round until it next
      advances (its pending bit if awake, its token's constant if asleep);
    * ``awake`` — sorted indices of parties advancing every round;
    * ``wheel`` — wake round → sleeping parties resuming there;
    * ``batch_start[i]`` — first round covered by sleeper ``i``'s token;
    * ``standing_beeps`` / ``awake_beeps`` — number of 1-bits contributed
      per round by sleeping / awake parties, so the round's OR and beep
      count never iterate over sleepers.

    Energy is credited when a token is accepted (the full ``bit × count``
    for a batch), mirroring the dense loop's credit-at-collection: on every
    returning execution each accepted batch ran to completion, so the
    counts are exact.  Returns the number of rounds executed.
    """
    n_parties = len(sends)
    _validate = validate_bit

    bits = [0] * n_parties
    awake: list[int] = []
    wheel: dict[int, list[int]] = {}
    batch_start = [0] * n_parties
    awake_beeps = 0
    standing_beeps = 0

    for index, token in entries:
        if token is _BIT_ZERO or token is _BIT_ONE:
            bits[index] = token
            awake.append(index)
            awake_beeps += token
            beeps_per_party[index] += token
        elif isinstance(token, Burst):
            t_bit = token.bit
            if t_bit is not _BIT_ZERO and t_bit is not _BIT_ONE:
                t_bit = _validate(t_bit)
            t_count = token.count
            if type(t_count) is not int or t_count < 1:
                raise ProtocolError(
                    f"batch token count must be a positive int, "
                    f"got {t_count!r}"
                )
            bits[index] = t_bit
            batch_start[index] = rounds
            wheel.setdefault(rounds + t_count, []).append(index)
            if t_bit:
                standing_beeps += 1
                beeps_per_party[index] += t_count
        else:
            bit = _validate(token)
            bits[index] = bit
            awake.append(index)
            awake_beeps += bit
            beeps_per_party[index] += bit

    if channel.correlated:
        # Correlated fast path: shared received column, run-batched
        # transmission whenever every unfinished party is asleep.
        transmit_shared = channel.transmit_shared
        transmit_shared_run = channel.transmit_shared_run
        append_raw = transcript.append_raw
        append_shared_run = transcript.append_shared_run
        shared_slice = transcript.shared_slice
        received = 0
        while finished_count < n_parties:
            if finished_count:
                laggards = [i for i, done in enumerate(finished) if not done]
                raise ProtocolDesyncError(
                    f"parties {laggards} still communicating after others "
                    f"finished at round {rounds}"
                )
            if awake:
                if rounds >= max_rounds:
                    raise ProtocolError(
                        f"protocol exceeded max_rounds={max_rounds}"
                    )
                beeps = awake_beeps + standing_beeps
                or_value = 1 if beeps else 0
                received = transmit_shared(or_value, beeps)
                append_raw(
                    bits if record_sent else None, or_value, received
                )
                rounds += 1
            else:
                # Nobody awake: run to the next wake-up in one block.  The
                # sent row, OR and beep count are constant over the run.
                span = min(wheel) - rounds
                if rounds + span > max_rounds:
                    span = max_rounds - rounds
                    if span <= 0:
                        raise ProtocolError(
                            f"protocol exceeded max_rounds={max_rounds}"
                        )
                or_value = 1 if standing_beeps else 0
                run = transmit_shared_run(or_value, standing_beeps, span)
                append_shared_run(
                    or_value, run, bytes(bits) if record_sent else None
                )
                rounds += span
            wakers = wheel.pop(rounds, None)
            if wakers is None:
                if not awake:
                    # A max_rounds-clipped run; the guard above fires next.
                    continue
                wakers = ()
            elif len(wakers) > 1:
                # Parties from different past boundaries may share a wake
                # round; advance in party order like the dense loop.
                wakers.sort()
            new_awake: list[int] = []
            push = new_awake.append
            awake_beeps = 0
            a_total = len(awake)
            w_total = len(wakers)
            a_pos = w_pos = 0
            while a_pos < a_total or w_pos < w_total:
                if w_pos >= w_total or (
                    a_pos < a_total and awake[a_pos] < wakers[w_pos]
                ):
                    index = awake[a_pos]
                    a_pos += 1
                    payload = received
                else:
                    index = wakers[w_pos]
                    w_pos += 1
                    payload = shared_slice(batch_start[index], rounds)
                    standing_beeps -= bits[index]
                try:
                    token = sends[index](payload)
                except StopIteration as stop:
                    finished[index] = True
                    finished_count += 1
                    outputs[index] = stop.value
                    bits[index] = 0
                    continue
                if token is _BIT_ZERO or token is _BIT_ONE:
                    bits[index] = token
                    push(index)
                    awake_beeps += token
                    beeps_per_party[index] += token
                elif isinstance(token, Burst):
                    t_bit = token.bit
                    if t_bit is not _BIT_ZERO and t_bit is not _BIT_ONE:
                        t_bit = _validate(t_bit)
                    t_count = token.count
                    if type(t_count) is not int or t_count < 1:
                        raise ProtocolError(
                            f"batch token count must be a positive int, "
                            f"got {t_count!r}"
                        )
                    bits[index] = t_bit
                    batch_start[index] = rounds
                    wake_at = rounds + t_count
                    slot = wheel.get(wake_at)
                    if slot is None:
                        wheel[wake_at] = [index]
                    else:
                        slot.append(index)
                    if t_bit:
                        standing_beeps += 1
                        beeps_per_party[index] += t_count
                else:
                    bit = _validate(token)
                    bits[index] = bit
                    push(index)
                    awake_beeps += bit
                    beeps_per_party[index] += bit
            awake = new_awake
        return rounds

    # Word path: per-party views.  Sleepers still skip their generator
    # resumption (the win that matters), but every round transmits
    # individually — per-party received words have no shared run form.
    transmit = channel.transmit
    append_raw = transcript.append_raw
    recv_slice = transcript.recv_slice
    while finished_count < n_parties:
        if finished_count:
            laggards = [i for i, done in enumerate(finished) if not done]
            raise ProtocolDesyncError(
                f"parties {laggards} still communicating after others "
                f"finished at round {rounds}"
            )
        if rounds >= max_rounds:
            raise ProtocolError(
                f"protocol exceeded max_rounds={max_rounds}"
            )
        outcome = transmit(tuple(bits))
        received_word = outcome.received
        append_raw(
            bits if record_sent else None,
            outcome.or_value,
            received_word,
            outcome.flips,
        )
        rounds += 1
        wakers = wheel.pop(rounds, None)
        if wakers is None:
            if not awake:
                continue
            wakers = ()
        elif len(wakers) > 1:
            wakers.sort()
        new_awake = []
        push = new_awake.append
        awake_beeps = 0
        a_total = len(awake)
        w_total = len(wakers)
        a_pos = w_pos = 0
        while a_pos < a_total or w_pos < w_total:
            if w_pos >= w_total or (
                a_pos < a_total and awake[a_pos] < wakers[w_pos]
            ):
                index = awake[a_pos]
                a_pos += 1
                payload = received_word[index]
            else:
                index = wakers[w_pos]
                w_pos += 1
                payload = recv_slice(index, batch_start[index], rounds)
                standing_beeps -= bits[index]
            try:
                token = sends[index](payload)
            except StopIteration as stop:
                finished[index] = True
                finished_count += 1
                outputs[index] = stop.value
                bits[index] = 0
                continue
            if token is _BIT_ZERO or token is _BIT_ONE:
                bits[index] = token
                push(index)
                awake_beeps += token
                beeps_per_party[index] += token
            elif isinstance(token, Burst):
                t_bit = token.bit
                if t_bit is not _BIT_ZERO and t_bit is not _BIT_ONE:
                    t_bit = _validate(t_bit)
                t_count = token.count
                if type(t_count) is not int or t_count < 1:
                    raise ProtocolError(
                        f"batch token count must be a positive int, "
                        f"got {t_count!r}"
                    )
                bits[index] = t_bit
                batch_start[index] = rounds
                wake_at = rounds + t_count
                slot = wheel.get(wake_at)
                if slot is None:
                    wheel[wake_at] = [index]
                else:
                    slot.append(index)
                if t_bit:
                    standing_beeps += 1
                    beeps_per_party[index] += t_count
            else:
                bit = _validate(token)
                bits[index] = bit
                push(index)
                awake_beeps += bit
                beeps_per_party[index] += bit
        awake = new_awake
    return rounds


def _emit_run_events(observe, protocol, result, elapsed: float) -> None:
    """Post-run engine events: one summary plus one event per noise hit.

    Everything here is read back out of the columnar transcript and the
    stats delta, so tracing adds zero work to the per-round loop.
    """
    stats = result.channel_stats
    observe.emit(
        "protocol_run",
        protocol=type(protocol).__name__,
        n_parties=result.transcript.n_parties,
        rounds=result.rounds,
        beeps_sent=stats.beeps_sent,
        or_ones=stats.or_ones,
        flips_up=stats.flips_up,
        flips_down=stats.flips_down,
        total_energy=result.total_energy,
        elapsed_s=elapsed,
    )
    transcript = result.transcript
    if transcript.noisy_count:
        # Single pass over the noisy positions (C-level mask scan): no
        # full-column or_values() conversion, no O(T) Python loop.
        for position, or_value in transcript.noise_flips():
            # Shared-view convention: the flip direction relative to the
            # round's true OR (independent noise may flip individual
            # parties both ways; the per-party split is in the stats).
            observe.emit(
                "noise_flip",
                round=position,
                or_value=or_value,
                direction="down" if or_value else "up",
            )


def _stats_delta(before, after):
    """Channel counters accumulated during this execution only."""
    return ChannelStats(
        rounds=after.rounds - before.rounds,
        beeps_sent=after.beeps_sent - before.beeps_sent,
        or_ones=after.or_ones - before.or_ones,
        flips_up=after.flips_up - before.flips_up,
        flips_down=after.flips_down - before.flips_down,
    )
