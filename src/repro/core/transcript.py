"""Transcripts: the round-by-round record of an execution.

A :class:`Transcript` is stored **columnar**: one ``bytearray`` per field
(true OR, shared received bit, noisy-round mask, and — when sent bits are
recorded — one column per party), appended to with raw bytes by the
engine's :meth:`Transcript.append_raw` write path.  :class:`RoundRecord`
objects are materialized lazily, only when a round is indexed or iterated;
the bulk accessors (:meth:`common_view`, :meth:`view`, :meth:`or_values`,
:meth:`noise_positions`) are O(T) conversions of a single column with no
per-round object creation.

Under correlated noise all parties share one view, retrievable with
:meth:`Transcript.common_view`; under independent noise each party has its
own view, retrievable with :meth:`Transcript.view`.  The shared column is
the storage default; per-party received columns are only allocated the
first time a round with divergent views is appended, so correlated
executions never pay O(n·T) memory for views.

Transcripts also retain the *sent* bits, which executions under test use to
verify simulator bookkeeping (e.g. that an owner computed by Algorithm 1
really beeped 1 in the round it owns).  Recording of sent bits can be turned
off for long benchmark runs; with it off a transcript stores three bytes
per round regardless of the party count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import TranscriptError
from repro.util.bits import BitWord

__all__ = ["RoundRecord", "Transcript"]

# Byte-translation table flagging noisy rounds when the true OR is 1: a
# received 0 is a flip (noisy byte 1), a received 1 is clean (0).  When the
# OR is 0 the received column *is* the noisy mask, no table needed.
_FLIPPED_WHEN_OR_ONE = bytes([1, 0]) + bytes(range(2, 256))


@dataclass(frozen=True)
class RoundRecord:
    """One channel round.

    Attributes:
        sent: The bits beeped by the parties (``None`` when not recorded).
        or_value: The true OR of the sent bits.
        received: Per-party received bits.
    """

    sent: BitWord | None
    or_value: int
    received: BitWord

    @property
    def common(self) -> int:
        """The shared received bit; raises when views diverge."""
        first = self.received[0]
        for bit in self.received:
            if bit != first:
                raise TranscriptError(
                    "received bits diverge across parties; no common view"
                )
        return first

    @property
    def noisy(self) -> bool:
        """True when any party's reception differs from the true OR."""
        return any(bit != self.or_value for bit in self.received)


class Transcript:
    """An append-only, columnar sequence of rounds.

    Supports ``len``, indexing (including negative indices and slices) and
    iteration; indexing materializes a :class:`RoundRecord` on the fly from
    the columns.  The engine appends through :meth:`append_raw`; the
    record-level :meth:`append` remains as the compatibility write path.
    """

    def __init__(self, n_parties: int) -> None:
        if n_parties < 1:
            raise TranscriptError("a transcript needs at least one party")
        self.n_parties = n_parties
        # Columns, one byte per round.
        self._or = bytearray()
        self._common = bytearray()  # party-0 received bit
        self._noisy = bytearray()  # 1 where any reception != true OR
        # Per-party received columns; allocated only once a round with
        # divergent views shows up (independent noise).
        self._recv_cols: list[bytearray] | None = None
        self._divergent_total = 0
        # Sent bits, stored row-major (round-major) in one flat bytearray so
        # the engine's per-round write is a single C-level ``extend`` of the
        # reused send buffer instead of an O(n) Python loop.  Allocated on
        # the first recorded round; rounds without sent bits occupy a zero
        # row (the mask below tells them apart) so round ``r`` always lives
        # at offset ``r * n_parties``.
        self._sent_flat: bytearray | None = None
        self._zero_row = bytes(n_parties)
        self._sent_mask = bytearray()  # 1 where the round recorded sent bits
        self._sent_recorded_total = 0
        self._noisy_total = 0
        # Accounted noise: rounds appended with explicit channel-reported
        # flip counts (topology channels, whose clean baseline is each
        # party's neighborhood OR rather than the global OR).
        self._flip_accounted = 0
        self._acc_flips_up = 0
        self._acc_flips_down = 0

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------

    def append_raw(
        self,
        sent: Sequence[int] | None,
        or_value: int,
        received: int | Sequence[int],
        flips: tuple[int, int] | None = None,
    ) -> None:
        """Append one round as raw column bytes — the engine's write path.

        Args:
            sent: Per-party sent bits, or ``None`` when not recorded.  The
                sequence is copied into the columns immediately, so the
                engine may reuse its send buffer.
            or_value: The true OR of the round.
            received: Either the single shared received bit (``int``, the
                correlated fast path) or the per-party received word.
            flips: Channel-accounted ``(flips_up, flips_down)`` for the
                round, when the channel reports them (topology channels).
                The noisy mask then records *genuine* noise — receptions
                differing from each party's clean baseline — instead of
                divergence from the global OR, and
                :meth:`~repro.channels.stats.ChannelStats.observed_from_transcript`
                can re-derive flip totals even with divergent views.

        All bits must already be validated 0/1 ints; this method trades
        the record-level validation of :meth:`append` for speed.
        """
        if isinstance(received, int):
            self._common.append(received)
            if flips is None:
                noisy = received != or_value
            else:
                noisy = flips[0] + flips[1] > 0
            if self._recv_cols is not None:
                for column in self._recv_cols:
                    column.append(received)
        else:
            if len(received) != self.n_parties:
                raise TranscriptError(
                    f"record has {len(received)} received bits, "
                    f"expected {self.n_parties}"
                )
            first = received[0]
            columns = self._recv_cols
            if columns is None:
                diverged = False
                for bit in received:
                    if bit != first:
                        diverged = True
                        break
                if diverged:
                    columns = self._materialize_recv_columns()
            if columns is None:
                self._common.append(first)
            else:
                self._common.append(first)
                round_diverged = False
                for column, bit in zip(columns, received):
                    column.append(bit)
                    if bit != first:
                        round_diverged = True
                if round_diverged:
                    self._divergent_total += 1
            if flips is None:
                noisy = False
                for bit in received:
                    if bit != or_value:
                        noisy = True
                        break
            else:
                noisy = flips[0] + flips[1] > 0
        self._or.append(or_value)
        self._noisy.append(noisy)
        self._noisy_total += noisy
        if flips is not None:
            self._flip_accounted += 1
            self._acc_flips_up += flips[0]
            self._acc_flips_down += flips[1]
        if sent is None:
            if self._sent_flat is not None:
                self._sent_flat.extend(self._zero_row)
            self._sent_mask.append(0)
        else:
            if len(sent) != self.n_parties:
                raise TranscriptError(
                    f"record has {len(sent)} sent bits, "
                    f"expected {self.n_parties}"
                )
            flat = self._sent_flat
            if flat is None:
                flat = self._materialize_sent_rows()
            flat.extend(sent)
            self._sent_mask.append(1)
            self._sent_recorded_total += 1

    def append_shared_run(
        self,
        or_value: int,
        received: bytes,
        sent_row: bytes | None,
    ) -> None:
        """Append ``len(received)`` rounds sharing one sent row — the
        engine's write path for stretches where every party sleeps inside
        a batch token (constant bits, so the true OR and the sent row are
        constant over the whole run).

        Args:
            or_value: The true OR of every round in the run.
            received: The shared received bit of each round, as raw bytes
                (``bytes`` or ``bytearray`` of 0/1 values).
            sent_row: The constant per-party sent bits, or ``None`` when
                not recorded.

        Every column update is a single C-level ``extend``/``translate``;
        the resulting columns are byte-identical to ``len(received)``
        individual :meth:`append_raw` calls.
        """
        count = len(received)
        if not count:
            return
        self._or.extend((b"\x01" if or_value else b"\x00") * count)
        self._common.extend(received)
        if self._recv_cols is not None:
            for column in self._recv_cols:
                column.extend(received)
        ones = received.count(1)
        if or_value:
            self._noisy.extend(received.translate(_FLIPPED_WHEN_OR_ONE))
            self._noisy_total += count - ones
        else:
            self._noisy.extend(received)
            self._noisy_total += ones
        if sent_row is None:
            if self._sent_flat is not None:
                self._sent_flat.extend(self._zero_row * count)
            self._sent_mask.extend(count * b"\x00")
        else:
            if len(sent_row) != self.n_parties:
                raise TranscriptError(
                    f"record has {len(sent_row)} sent bits, "
                    f"expected {self.n_parties}"
                )
            flat = self._sent_flat
            if flat is None:
                flat = self._materialize_sent_rows()
            flat.extend(bytes(sent_row) * count)
            self._sent_mask.extend(count * b"\x01")
            self._sent_recorded_total += count

    def append(self, record: RoundRecord) -> None:
        """Append one round from a :class:`RoundRecord` (compatibility path)."""
        self.append_raw(record.sent, record.or_value, tuple(record.received))

    def _materialize_recv_columns(self) -> list[bytearray]:
        """Expand the shared column into per-party columns (first divergence)."""
        shared = self._common
        self._recv_cols = [
            bytearray(shared) for _ in range(self.n_parties)
        ]
        return self._recv_cols

    def _materialize_sent_rows(self) -> bytearray:
        """Create the sent store, zero-padding rounds appended before it."""
        self._sent_flat = bytearray(
            len(self._sent_mask) * self.n_parties
        )
        return self._sent_flat

    # ------------------------------------------------------------------
    # Record materialization
    # ------------------------------------------------------------------

    def _materialize(self, index: int) -> RoundRecord:
        if self._recv_cols is None:
            received: BitWord = (self._common[index],) * self.n_parties
        else:
            received = tuple(column[index] for column in self._recv_cols)
        if self._sent_flat is not None and self._sent_mask[index]:
            base = index * self.n_parties
            sent: BitWord | None = tuple(
                self._sent_flat[base : base + self.n_parties]
            )
        else:
            sent = None
        return RoundRecord(
            sent=sent, or_value=self._or[index], received=received
        )

    def __len__(self) -> int:
        return len(self._or)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                self._materialize(i)
                for i in range(*index.indices(len(self._or)))
            ]
        length = len(self._or)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("transcript round index out of range")
        return self._materialize(index)

    def __iter__(self) -> Iterator[RoundRecord]:
        for index in range(len(self._or)):
            yield self._materialize(index)

    # ------------------------------------------------------------------
    # Bulk accessors (single-column conversions, no per-round objects)
    # ------------------------------------------------------------------

    def common_view(self) -> BitWord:
        """The shared received transcript (correlated channels only)."""
        if self._divergent_total:
            raise TranscriptError(
                "received bits diverge across parties; no common view"
            )
        return tuple(self._common)

    def view(self, party_index: int) -> BitWord:
        """The received transcript as seen by one party."""
        if not 0 <= party_index < self.n_parties:
            raise TranscriptError(
                f"party index {party_index} out of range "
                f"[0, {self.n_parties})"
            )
        if self._recv_cols is None:
            return tuple(self._common)
        return tuple(self._recv_cols[party_index])

    def or_values(self) -> BitWord:
        """The true (pre-noise) OR of every round."""
        return tuple(self._or)

    def sent_bits(self, party_index: int) -> BitWord:
        """The bits beeped by one party (requires sent recording)."""
        if not 0 <= party_index < self.n_parties:
            raise TranscriptError(
                f"party index {party_index} out of range "
                f"[0, {self.n_parties})"
            )
        if self._sent_recorded_total != len(self._or):
            raise TranscriptError(
                "sent bits were not recorded for this transcript"
            )
        assert self._sent_flat is not None
        # One party's column is a strided slice of the row-major store.
        return tuple(self._sent_flat[party_index :: self.n_parties])

    def shared_slice(self, start: int, stop: int) -> bytes:
        """Received bits of rounds ``[start, stop)`` on the shared view.

        One bulk slice of the shared received column, delivered as a single
        ``bytes`` object — the engine's wake-up payload for batch-token
        parties on the correlated fast path.  (An actual zero-copy
        ``memoryview`` would pin the growing ``bytearray`` and make the
        next append raise ``BufferError`` if a party retained it, so the
        slice is one C-level copy instead.)
        """
        return bytes(self._common[start:stop])

    def recv_slice(self, party_index: int, start: int, stop: int) -> bytes:
        """Received bits of rounds ``[start, stop)`` as seen by one party.

        The word-path analogue of :meth:`shared_slice`: reads the party's
        own column when views have diverged, the shared column otherwise.
        """
        columns = self._recv_cols
        source = self._common if columns is None else columns[party_index]
        return bytes(source[start:stop])

    @property
    def noisy_count(self) -> int:
        """Number of rounds affected by noise (O(1), fed by the mask)."""
        return self._noisy_total

    def noise_positions(self) -> tuple[int, ...]:
        """Indices of rounds affected by noise."""
        mask = self._noisy
        return tuple(index for index, flag in enumerate(mask) if flag)

    def noise_flips(self) -> tuple[tuple[int, int], ...]:
        """``(round, or_value)`` for every noisy round.

        One pass over the noisy positions only: the mask is scanned with
        C-level ``find`` hops, so the Python-level work is O(noisy rounds),
        not O(T) — the observability layer derives its ``noise_flip``
        events from this.
        """
        mask = self._noisy
        or_column = self._or
        flips: list[tuple[int, int]] = []
        position = mask.find(1)
        while position != -1:
            flips.append((position, or_column[position]))
            position = mask.find(1, position + 1)
        return tuple(flips)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, max_rounds: int = 64) -> str:
        """An ASCII timeline of the execution (debugging aid).

        One row per party showing its beeps (``#`` = beeped, ``.`` =
        silent; requires sent recording), then the true OR row and the
        received row, with ``!`` marking noisy rounds.  Long transcripts
        are truncated to ``max_rounds`` with an ellipsis note.

        Example output for two parties over four rounds, with the round-1
        beep flipped away by noise (clean rounds show as spaces)::

            party 0 |#..#|
            party 1 |.#..|
            OR      |##.#|
            heard   |#..#|
            noise   | !  |
        """
        shown = min(len(self._or), max_rounds)
        lines: list[str] = []
        if shown and self._sent_flat is not None and self._sent_mask[0]:
            n = self.n_parties
            flat = self._sent_flat
            for party in range(n):
                beeps = "".join(
                    "#" if flat[i * n + party] else "."
                    for i in range(shown)
                )
                lines.append(f"party {party:<2}|{beeps}|")
        or_row = "".join(
            "#" if self._or[i] else "." for i in range(shown)
        )
        lines.append(f"OR      |{or_row}|")
        heard = "".join(
            "#" if self._common[i] else "." for i in range(shown)
        )
        lines.append(f"heard   |{heard}|")
        noise = "".join(
            "!" if self._noisy[i] else " " for i in range(shown)
        )
        lines.append(f"noise   |{noise}|")
        if len(self._or) > max_rounds:
            lines.append(
                f"... ({len(self._or) - max_rounds} more rounds)"
            )
        return "\n".join(lines)
