"""Transcripts: the round-by-round record of an execution.

A :class:`Transcript` stores one :class:`RoundRecord` per round.  Under
correlated noise all parties share one view, retrievable with
:meth:`Transcript.common_view`; under independent noise each party has its
own view, retrievable with :meth:`Transcript.view`.

Transcripts also retain the *sent* bits, which executions under test use to
verify simulator bookkeeping (e.g. that an owner computed by Algorithm 1
really beeped 1 in the round it owns).  Recording of sent bits can be turned
off for long benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import TranscriptError
from repro.util.bits import BitWord

__all__ = ["RoundRecord", "Transcript"]


@dataclass(frozen=True)
class RoundRecord:
    """One channel round.

    Attributes:
        sent: The bits beeped by the parties (``None`` when not recorded).
        or_value: The true OR of the sent bits.
        received: Per-party received bits.
    """

    sent: BitWord | None
    or_value: int
    received: BitWord

    @property
    def common(self) -> int:
        """The shared received bit; raises when views diverge."""
        first = self.received[0]
        for bit in self.received:
            if bit != first:
                raise TranscriptError(
                    "received bits diverge across parties; no common view"
                )
        return first

    @property
    def noisy(self) -> bool:
        """True when any party's reception differs from the true OR."""
        return any(bit != self.or_value for bit in self.received)


class Transcript:
    """An append-only sequence of :class:`RoundRecord`.

    Supports ``len``, indexing and iteration over records.
    """

    def __init__(self, n_parties: int) -> None:
        if n_parties < 1:
            raise TranscriptError("a transcript needs at least one party")
        self.n_parties = n_parties
        self._records: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        """Append one round, validating arity."""
        if len(record.received) != self.n_parties:
            raise TranscriptError(
                f"record has {len(record.received)} received bits, "
                f"expected {self.n_parties}"
            )
        if record.sent is not None and len(record.sent) != self.n_parties:
            raise TranscriptError(
                f"record has {len(record.sent)} sent bits, "
                f"expected {self.n_parties}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> RoundRecord:
        return self._records[index]

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._records)

    def common_view(self) -> BitWord:
        """The shared received transcript (correlated channels only)."""
        return tuple(record.common for record in self._records)

    def view(self, party_index: int) -> BitWord:
        """The received transcript as seen by one party."""
        if not 0 <= party_index < self.n_parties:
            raise TranscriptError(
                f"party index {party_index} out of range "
                f"[0, {self.n_parties})"
            )
        return tuple(
            record.received[party_index] for record in self._records
        )

    def or_values(self) -> BitWord:
        """The true (pre-noise) OR of every round."""
        return tuple(record.or_value for record in self._records)

    def sent_bits(self, party_index: int) -> BitWord:
        """The bits beeped by one party (requires sent recording)."""
        bits: list[int] = []
        for record in self._records:
            if record.sent is None:
                raise TranscriptError(
                    "sent bits were not recorded for this transcript"
                )
            bits.append(record.sent[party_index])
        return tuple(bits)

    def noise_positions(self) -> tuple[int, ...]:
        """Indices of rounds affected by noise."""
        return tuple(
            index
            for index, record in enumerate(self._records)
            if record.noisy
        )

    def render(self, max_rounds: int = 64) -> str:
        """An ASCII timeline of the execution (debugging aid).

        One row per party showing its beeps (``#`` = beeped, ``.`` =
        silent; requires sent recording), then the true OR row and the
        received row, with ``!`` marking noisy rounds.  Long transcripts
        are truncated to ``max_rounds`` with an ellipsis note.

        Example output for three parties over four rounds::

            party 0 |#..#|
            party 1 |.#..|
            OR      |##.#|
            heard   |#..#|  (! = noise)
            noise   |.! ..|
        """
        records = self._records[:max_rounds]
        lines: list[str] = []
        if records and records[0].sent is not None:
            for party in range(self.n_parties):
                beeps = "".join(
                    "#" if record.sent[party] else "."
                    for record in records
                )
                lines.append(f"party {party:<2}|{beeps}|")
        or_row = "".join(
            "#" if record.or_value else "." for record in records
        )
        lines.append(f"OR      |{or_row}|")
        heard = "".join(
            "#" if record.received[0] else "." for record in records
        )
        lines.append(f"heard   |{heard}|")
        noise = "".join("!" if record.noisy else " " for record in records)
        lines.append(f"noise   |{noise}|")
        if len(self._records) > max_rounds:
            lines.append(
                f"... ({len(self._records) - max_rounds} more rounds)"
            )
        return "\n".join(lines)
