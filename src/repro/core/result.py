"""Execution results.

:class:`ExecutionResult` bundles everything the engine produces for one run:
the parties' outputs, the transcript, and a snapshot of the channel
statistics.  It is the single return type of :func:`repro.core.engine.run_protocol`
and of the simulators' ``simulate`` entry points.

The transcript arrives in columnar form; ``to_dict(include_transcript=True)``
serialises it through the O(T) bulk accessors (``or_values``, ``view``) —
one column conversion per row, no per-round record objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.channels.stats import ChannelStats
from repro.core.transcript import Transcript

__all__ = ["ExecutionResult"]


@dataclass
class ExecutionResult:
    """The outcome of running a protocol over a channel.

    Attributes:
        outputs: One output per party, in party order.
        transcript: Full round-by-round record.
        rounds: Number of channel rounds consumed (== len(transcript)).
        channel_stats: Snapshot of the channel counters for this execution
            (the delta over the run, not the channel's lifetime totals).
        beeps_per_party: Energy spent by each party (number of 1-bits it
            beeped) — the beeping literature's energy complexity measure.
        metadata: Scheme-specific extras (e.g. the chunk-commit simulator
            reports retry counts and committed-chunk progress here).
    """

    outputs: list[Any]
    transcript: Transcript
    rounds: int
    channel_stats: ChannelStats
    beeps_per_party: tuple[int, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def total_energy(self) -> int:
        """Total beeps across all parties."""
        return sum(self.beeps_per_party)

    def outputs_agree(self) -> bool:
        """True when every party produced the same output."""
        if not self.outputs:
            return True
        first = self.outputs[0]
        return all(output == first for output in self.outputs[1:])

    def common_output(self) -> Any:
        """The unanimous output; raises ``ValueError`` on disagreement.

        Tasks in the beeping model typically require all parties to output
        the same value; this accessor makes that expectation explicit.
        """
        if not self.outputs_agree():
            raise ValueError(
                "parties disagree on the output; inspect .outputs"
            )
        return self.outputs[0]

    def to_dict(self, include_transcript: bool = False) -> dict[str, Any]:
        """A JSON-serialisable view of the execution.

        Outputs are stringified (they may be arbitrary Python values —
        frozensets, tuples); the transcript, included on request, is
        encoded as parallel bit rows.  Simulator reports in ``metadata``
        are serialised through their own ``to_dict``.
        """
        payload: dict[str, Any] = {
            "outputs": [repr(output) for output in self.outputs],
            "outputs_agree": self.outputs_agree(),
            "rounds": self.rounds,
            "beeps_per_party": list(self.beeps_per_party),
            "total_energy": self.total_energy,
            "channel_stats": {
                "rounds": self.channel_stats.rounds,
                "beeps_sent": self.channel_stats.beeps_sent,
                "or_ones": self.channel_stats.or_ones,
                "flips_up": self.channel_stats.flips_up,
                "flips_down": self.channel_stats.flips_down,
            },
        }
        report = self.metadata.get("report")
        if report is not None and hasattr(report, "to_dict"):
            payload["report"] = report.to_dict()
        if include_transcript:
            payload["transcript"] = {
                "or_values": list(self.transcript.or_values()),
                "received": [
                    list(self.transcript.view(party))
                    for party in range(self.transcript.n_parties)
                ],
            }
        return payload
