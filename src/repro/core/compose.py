"""Protocol combinators.

Small structural transforms used by the analyses and handy for users:

* :func:`announce_input` — the paper's §C.2 WLOG step: prepend rounds in
  which one party beeps its own input bit by bit (everyone else silent),
  making that party's output computable *from the transcript alone* at an
  additive O(log |X|) cost.  This is the normalisation that lets the lower
  bound treat player 1's output as a function ``g(π)``.
* :class:`SequentialProtocol` — run two protocols back to back; outputs
  are the pair of the two outputs.
* :class:`TruncatedProtocol` — only the first ``k`` rounds of a protocol,
  outputting the received prefix.  The lower-bound experiments use it to
  hand a protocol an explicit round *budget* (A.2's remark that
  distributional protocols can be truncated at twice their expected length
  with constant error blowup).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.party import Party, PartyProgram
from repro.core.protocol import Protocol
from repro.errors import ConfigurationError
from repro.util.bits import int_to_bits

__all__ = ["announce_input", "SequentialProtocol", "TruncatedProtocol"]


class _AnnouncingParty(Party):
    """Beeps ``bits`` (or silence) for the announcement prefix, then runs
    the inner party."""

    def __init__(self, inner: Party, bits: tuple[int, ...]) -> None:
        self.inner = inner
        self.bits = bits

    def run(self) -> PartyProgram:
        heard: list[int] = []
        for bit in self.bits:
            heard.append((yield bit))
        inner_output = yield from _delegate(self.inner)
        return (tuple(heard), inner_output)


def _delegate(party: Party) -> PartyProgram:
    """``yield from`` an inner party, returning its output."""
    program = party.run()
    try:
        bit = next(program)
    except StopIteration as stop:
        return stop.value
    while True:
        received = yield bit
        try:
            bit = program.send(received)
        except StopIteration as stop:
            return stop.value


class _AnnouncedInputProtocol(Protocol):
    def __init__(
        self, inner: Protocol, announcer: int, width: int
    ) -> None:
        super().__init__(inner.n_parties)
        if not 0 <= announcer < inner.n_parties:
            raise ConfigurationError(
                f"announcer {announcer} out of range"
            )
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.inner = inner
        self.announcer = announcer
        self.width = width

    def length(self) -> int | None:
        inner_length = self.inner.length()
        if inner_length is None:
            return None
        return inner_length + self.width

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        inner_parties = self.inner.create_parties(
            inputs, shared_seed=shared_seed
        )
        announced = int_to_bits(int(inputs[self.announcer]), self.width)
        silence = (0,) * self.width
        return [
            _AnnouncingParty(
                inner,
                announced if index == self.announcer else silence,
            )
            for index, inner in enumerate(inner_parties)
        ]


def announce_input(
    inner: Protocol, announcer: int = 0, width: int | None = None
) -> Protocol:
    """The §C.2 normalisation: prepend ``width`` announcement rounds.

    Party ``announcer`` beeps its (integer) input MSB-first during the
    prefix; everyone stays silent otherwise.  Every party's output becomes
    ``(announced_prefix_bits, inner_output)`` — over a noiseless channel
    the prefix *is* the announcer's input, so any output that previously
    needed the announcer's private input is now transcript-determined.

    Args:
        inner: The protocol to normalise (integer inputs for the
            announcer).
        announcer: Which party announces (paper: player 1).
        width: Announcement width in bits; must be provided (there is no
            universal bound on input sizes).
    """
    if width is None:
        raise ConfigurationError(
            "width is required: pass ceil(log2(max input + 1))"
        )
    return _AnnouncedInputProtocol(inner, announcer, width)


class _SequentialParty(Party):
    def __init__(self, first: Party, second: Party) -> None:
        self.first = first
        self.second = second

    def run(self) -> PartyProgram:
        first_output = yield from _delegate(self.first)
        second_output = yield from _delegate(self.second)
        return (first_output, second_output)


class SequentialProtocol(Protocol):
    """Run ``first`` then ``second`` on the same inputs; outputs pair up.

    Both protocols must have the same party count.  Inputs are passed to
    both (wrap one side in an adapter if they need different inputs).
    """

    def __init__(self, first: Protocol, second: Protocol) -> None:
        if first.n_parties != second.n_parties:
            raise ConfigurationError(
                "sequential composition needs equal party counts "
                f"({first.n_parties} vs {second.n_parties})"
            )
        super().__init__(first.n_parties)
        self.first = first
        self.second = second

    def length(self) -> int | None:
        first_length = self.first.length()
        second_length = self.second.length()
        if first_length is None or second_length is None:
            return None
        return first_length + second_length

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        firsts = self.first.create_parties(inputs, shared_seed=shared_seed)
        seconds = self.second.create_parties(
            inputs, shared_seed=shared_seed
        )
        return [
            _SequentialParty(first, second)
            for first, second in zip(firsts, seconds)
        ]


class _TruncatedParty(Party):
    def __init__(self, inner: Party, budget: int) -> None:
        self.inner = inner
        self.budget = budget

    def run(self) -> PartyProgram:
        program = self.inner.run()
        heard: list[int] = []
        try:
            bit = next(program)
        except StopIteration as stop:
            return stop.value
        for _ in range(self.budget):
            received = yield bit
            heard.append(received)
            try:
                bit = program.send(received)
            except StopIteration as stop:
                return stop.value
        # Budget exhausted mid-protocol: output the received prefix (the
        # caller decides what to make of a truncated run).
        return tuple(heard)


class TruncatedProtocol(Protocol):
    """The first ``budget`` rounds of ``inner``.

    If the inner protocol finishes within the budget its output is
    returned unchanged; otherwise each party outputs the received prefix.
    """

    def __init__(self, inner: Protocol, budget: int) -> None:
        super().__init__(inner.n_parties)
        if budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
        self.inner = inner
        self.budget = budget

    def length(self) -> int | None:
        inner_length = self.inner.length()
        if inner_length is None:
            return None
        return min(inner_length, self.budget)

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        return [
            _TruncatedParty(inner, self.budget)
            for inner in self.inner.create_parties(
                inputs, shared_seed=shared_seed
            )
        ]
