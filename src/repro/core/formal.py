"""The paper's formal protocol model, executable and exactly analysable.

Appendix A.1.1 defines a deterministic protocol as a tuple
``(T, {f_m^i}, {g^i})`` where ``f_m^i : X^i × {0,1}^{m-1} → {0,1}`` is party
``i``'s broadcast function for round ``m`` and ``g^i`` its output function.
:class:`FormalProtocol` represents exactly this object and exposes the
quantities the lower-bound proof manipulates:

* the beep sets ``B_m(x, π)`` — who beeped 1 in round ``m``;
* the round partition ``A_0, A'_0, A_i, A_{n+1}`` of Theorem C.2;
* the exact transcript probability ``Pr(π | x)`` under the one-sided or
  two-sided noise model (the product formula used throughout Appendix C);
* exhaustive enumeration of positive-probability transcripts, with pruning
  (under one-sided noise, rounds with a beeper force ``π_m = 1``).

Everything here is exact rational-free floating point arithmetic over small
instances; the Monte-Carlo layer in :mod:`repro.analysis` covers large ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.core.party import FunctionalParty, Party
from repro.core.protocol import Protocol
from repro.errors import ConfigurationError, ProtocolError
from repro.util.bits import BitWord

__all__ = [
    "FormalProtocol",
    "RoundPartition",
    "NoiseModel",
    "formalize_protocol",
]

# f(i, x_i, received_prefix) -> bit
SharedBroadcast = Callable[[int, Any, Sequence[int]], int]
# Transcript-determined output (the paper's WLOG for player 1).
TranscriptOutput = Callable[[Sequence[int]], Any]


@dataclass(frozen=True)
class NoiseModel:
    """Per-round flip probabilities of a correlated noisy beeping channel.

    Attributes:
        up: Pr[receive 1 | OR = 0]  (a 0→1 flip).
        down: Pr[receive 0 | OR = 1]  (a 1→0 flip).
    """

    up: float
    down: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.up < 1.0 and 0.0 <= self.down < 1.0):
            raise ConfigurationError(
                f"flip probabilities must be in [0, 1): {self}"
            )

    @classmethod
    def one_sided(cls, epsilon: float) -> "NoiseModel":
        """The lower bound's model: noise flips 0→1 only."""
        return cls(up=epsilon, down=0.0)

    @classmethod
    def two_sided(cls, epsilon: float) -> "NoiseModel":
        """The symmetric ε-noisy model of Theorem 1.1."""
        return cls(up=epsilon, down=epsilon)

    @classmethod
    def suppression(cls, epsilon: float) -> "NoiseModel":
        """The mirror model: noise flips 1→0 only."""
        return cls(up=0.0, down=epsilon)

    def round_probability(self, or_value: int, received: int) -> float:
        """Pr[π_m = received | OR of the round = or_value]."""
        if or_value == 1:
            return self.down if received == 0 else 1.0 - self.down
        return self.up if received == 1 else 1.0 - self.up


@dataclass
class RoundPartition:
    """The disjoint round classes of Theorem C.2 for a fixed ``(x, π)``.

    Attributes:
        zeros: ``A_0`` — rounds with ``π_m = 0``.
        phantom_ones: ``A'_0`` — rounds with ``π_m = 1`` but nobody beeped
            (the 1 was created by noise).
        lonely: ``A_i`` — for each party ``i``, the rounds in which ``i`` was
            the *only* beeper.
        crowded: ``A_{n+1}`` — the rest (two or more beepers).
    """

    zeros: list[int] = field(default_factory=list)
    phantom_ones: list[int] = field(default_factory=list)
    lonely: dict[int, list[int]] = field(default_factory=dict)
    crowded: list[int] = field(default_factory=list)

    def lonely_count(self, party: int) -> int:
        """|A_i| for one party."""
        return len(self.lonely.get(party, []))


class FormalProtocol(Protocol):
    """A deterministic protocol as a ``(T, {f_m^i}, {g^i})`` tuple.

    Args:
        n_parties: Number of parties ``n``.
        length: Number of rounds ``T``.
        input_spaces: Per-party input domains (sequences of admissible input
            values), used by the exact enumeration helpers.
        broadcast: Shared broadcast function ``f(i, x_i, prefix) -> bit``.
        output: Output determined by the transcript alone
            (``g(π) -> value``), matching the paper's WLOG normalisation of
            player 1's output.  All parties use it.
    """

    def __init__(
        self,
        n_parties: int,
        length: int,
        input_spaces: Sequence[Sequence[Any]],
        broadcast: SharedBroadcast,
        output: TranscriptOutput,
    ) -> None:
        super().__init__(n_parties)
        if length < 0:
            raise ConfigurationError(f"length must be >= 0, got {length}")
        if len(input_spaces) != n_parties:
            raise ConfigurationError(
                f"need {n_parties} input spaces, got {len(input_spaces)}"
            )
        for index, space in enumerate(input_spaces):
            if len(space) == 0:
                raise ConfigurationError(
                    f"input space of party {index} is empty"
                )
        self._length = length
        self.input_spaces = [tuple(space) for space in input_spaces]
        self.broadcast = broadcast
        self.output = output

    # ------------------------------------------------------------------
    # Executable interface (engine compatibility)
    # ------------------------------------------------------------------

    def length(self) -> int:
        return self._length

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        parties: list[Party] = []
        for index in range(self.n_parties):

            def bound_broadcast(
                x: Any, prefix: Sequence[int], _i: int = index
            ) -> int:
                return self.broadcast(_i, x, prefix)

            def bound_output(x: Any, received: Sequence[int]) -> Any:
                return self.output(received)

            parties.append(
                FunctionalParty(
                    input_value=inputs[index],
                    length=self._length,
                    broadcast=bound_broadcast,
                    output=bound_output,
                )
            )
        return parties

    # ------------------------------------------------------------------
    # Exact analysis
    # ------------------------------------------------------------------

    def beeps(self, x: Sequence[Any], pi: Sequence[int]) -> list[BitWord]:
        """The matrix of beeped bits for input ``x`` along transcript ``pi``.

        Entry ``[m][i]`` is ``f_{m+1}^i(x^i, π_{<m+1})``.  ``pi`` may be any
        candidate transcript of length ``length()``; it need not have
        positive probability under any noise model.
        """
        self._check_inputs(x)
        if len(pi) != self._length:
            raise ProtocolError(
                f"transcript length {len(pi)} != protocol length "
                f"{self._length}"
            )
        rows: list[BitWord] = []
        for m in range(self._length):
            prefix = pi[:m]
            rows.append(
                tuple(
                    self.broadcast(i, x[i], prefix)
                    for i in range(self.n_parties)
                )
            )
        return rows

    def beep_set(
        self, x: Sequence[Any], pi: Sequence[int], round_index: int
    ) -> frozenset[int]:
        """``B_m(x, π)``: the set of parties beeping 1 in round ``m``."""
        prefix = pi[:round_index]
        return frozenset(
            i
            for i in range(self.n_parties)
            if self.broadcast(i, x[i], prefix) == 1
        )

    def round_partition(
        self, x: Sequence[Any], pi: Sequence[int]
    ) -> RoundPartition:
        """Partition the rounds into ``A_0, A'_0, A_i, A_{n+1}`` (§C.3.1)."""
        partition = RoundPartition()
        beep_rows = self.beeps(x, pi)
        for m in range(self._length):
            beepers = [i for i, bit in enumerate(beep_rows[m]) if bit == 1]
            if pi[m] == 0:
                partition.zeros.append(m)
            elif not beepers:
                partition.phantom_ones.append(m)
            elif len(beepers) == 1:
                partition.lonely.setdefault(beepers[0], []).append(m)
            else:
                partition.crowded.append(m)
        return partition

    def transcript_probability(
        self, x: Sequence[Any], pi: Sequence[int], noise: NoiseModel
    ) -> float:
        """Exact ``Pr(Π = π | X = x)`` under correlated noise ``noise``.

        The chain rule of §C.3.1: each round contributes
        ``Pr(π_m | OR of the beeps at round m)`` independently.
        """
        beep_rows = self.beeps(x, pi)
        probability = 1.0
        for m in range(self._length):
            or_value = 1 if any(beep_rows[m]) else 0
            probability *= noise.round_probability(or_value, pi[m])
            if probability == 0.0:
                return 0.0
        return probability

    def enumerate_transcripts(
        self, x: Sequence[Any], noise: NoiseModel
    ) -> Iterator[tuple[BitWord, float]]:
        """Yield every transcript with ``Pr(π | x) > 0`` and its probability.

        Walks the binary transcript tree depth-first, pruning zero
        probability branches (e.g. under one-sided noise a round with a
        beeper can only produce 1, halving the tree at that node).
        """
        self._check_inputs(x)

        def extend(
            prefix: list[int], probability: float
        ) -> Iterator[tuple[BitWord, float]]:
            m = len(prefix)
            if m == self._length:
                yield tuple(prefix), probability
                return
            beep_or = (
                1
                if any(
                    self.broadcast(i, x[i], prefix) == 1
                    for i in range(self.n_parties)
                )
                else 0
            )
            for received in (0, 1):
                round_probability = noise.round_probability(
                    beep_or, received
                )
                if round_probability == 0.0:
                    continue
                prefix.append(received)
                yield from extend(prefix, probability * round_probability)
                prefix.pop()

        yield from extend([], 1.0)

    def enumerate_inputs(self) -> Iterator[tuple[Any, ...]]:
        """Every input vector in the product of the input spaces."""
        yield from itertools.product(*self.input_spaces)

    def input_probability(self) -> float:
        """Probability of each input vector under the uniform distribution."""
        total = 1
        for space in self.input_spaces:
            total *= len(space)
        return 1.0 / total


def formalize_protocol(
    protocol: Protocol,
    input_spaces: Sequence[Sequence[Any]],
    output: TranscriptOutput | None = None,
) -> FormalProtocol:
    """Lift any fixed-length executable protocol into a
    :class:`FormalProtocol`.

    The broadcast functions are recovered *operationally*: to evaluate
    ``f_m^i(x, π_{<m})`` a fresh party is created with input ``x`` and
    replayed over the prefix, and its next beep is read off.  This costs
    O(m) per query — perfectly fine for the small instances the exact
    lower-bound machinery enumerates — and works for every deterministic
    protocol, not just those written as explicit function tables.

    Args:
        protocol: The protocol to lift; ``protocol.length()`` must be
            known, and the protocol must be deterministic (no shared
            seed is passed during replay).
        input_spaces: Admissible inputs per party (the lift cannot infer
            them from the executable form).
        output: Transcript-determined output ``g(π)``; when ``None``,
            the lifted output is party 0's output computed by replaying
            its coroutine over the transcript **with input
            ``input_spaces[0][0]``** — only correct when party 0's output
            genuinely depends on the transcript alone (e.g. after the
            :func:`~repro.core.compose.announce_input` normalisation, or
            for tasks like ``InputSet``/parity whose outputs read the
            transcript).  Pass an explicit ``output`` otherwise.
    """
    length = protocol.length()
    if length is None:
        raise ConfigurationError(
            "formalize_protocol needs a fixed-length protocol"
        )
    n_parties = protocol.n_parties
    if len(input_spaces) != n_parties:
        raise ConfigurationError(
            f"need {n_parties} input spaces, got {len(input_spaces)}"
        )
    spaces = [tuple(space) for space in input_spaces]

    def replay_next_beep(
        party_index: int, input_value: Any, prefix: Sequence[int]
    ) -> int:
        inputs = [space[0] for space in spaces]
        inputs[party_index] = input_value
        party = protocol.create_parties(inputs)[party_index]
        program = party.run()
        try:
            bit = next(program)
            for received in prefix:
                bit = program.send(received)
        except StopIteration:
            raise ProtocolError(
                "protocol ended before its declared length during "
                "formal replay"
            ) from None
        return bit

    def replay_output(pi: Sequence[int]) -> Any:
        inputs = [space[0] for space in spaces]
        party = protocol.create_parties(inputs)[0]
        program = party.run()
        try:
            next(program)
            for received in pi:
                program.send(received)
        except StopIteration as stop:
            return stop.value
        raise ProtocolError(
            "protocol did not finish at its declared length during "
            "formal replay"
        )

    return FormalProtocol(
        n_parties=n_parties,
        length=length,
        input_spaces=spaces,
        broadcast=replay_next_beep,
        output=output if output is not None else replay_output,
    )
