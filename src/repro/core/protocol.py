"""Protocol abstractions.

A :class:`Protocol` is a *factory* of parties: given the tuple of inputs and
an optional shared-randomness seed it creates one :class:`Party` per
participant.  Keeping protocols as factories (rather than live objects) is
what makes rewind-if-error simulation possible — the simulator can re-create
and replay a party deterministically from ``(input, transcript prefix)``.

Randomized protocols in the paper are distributions over deterministic
protocols, realised here by the ``shared_seed`` argument: all parties receive
the same seed and therefore can derive identical random streams (a shared
random string), while remaining jointly deterministic given the seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import partial
from typing import Any, Callable, Sequence

from repro.core.party import (
    BroadcastFunction,
    FunctionalParty,
    OutputFunction,
    Party,
)
from repro.errors import ConfigurationError, ProtocolError

__all__ = ["Protocol", "FunctionalProtocol"]


class Protocol(ABC):
    """A beeping protocol for a fixed number of parties.

    Attributes:
        n_parties: Number of participants.
    """

    def __init__(self, n_parties: int) -> None:
        if n_parties < 1:
            raise ConfigurationError(
                f"a protocol needs at least one party, got {n_parties}"
            )
        self.n_parties = n_parties

    @abstractmethod
    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        """Instantiate fresh parties for one execution.

        Args:
            inputs: One input per party (``len(inputs) == n_parties``).
            shared_seed: Seed of the shared random string, identical for all
                parties; ``None`` for deterministic protocols.
        """

    def length(self) -> int | None:
        """Number of rounds, when fixed and known a priori; else ``None``.

        The engine uses this only as metadata (overhead accounting); the
        actual round count is driven by the party coroutines.
        """
        return None

    def _check_inputs(self, inputs: Sequence[Any]) -> None:
        """Shared validation for ``create_parties`` implementations."""
        if len(inputs) != self.n_parties:
            raise ProtocolError(
                f"expected {self.n_parties} inputs, got {len(inputs)}"
            )


class FunctionalProtocol(Protocol):
    """A protocol given by per-party broadcast/output functions.

    This is the executable twin of the paper's ``(T, {f_m^i}, {g^i})``
    definition.  Broadcast functions may be shared across parties (the
    common case for symmetric protocols) or given per party.

    Args:
        n_parties: Number of parties.
        length: Round count ``T``.
        broadcast: Either one function used by all parties, with signature
            ``f(party_index, input, received_prefix) -> bit``, or a sequence
            of ``n_parties`` functions ``f(input, received_prefix) -> bit``.
        output: Same convention for the output functions ``g``.
    """

    def __init__(
        self,
        n_parties: int,
        length: int,
        broadcast: (
            Callable[[int, Any, Sequence[int]], int]
            | Sequence[BroadcastFunction]
        ),
        output: (
            Callable[[int, Any, Sequence[int]], Any]
            | Sequence[OutputFunction]
        ),
    ) -> None:
        super().__init__(n_parties)
        if length < 0:
            raise ConfigurationError(f"length must be >= 0, got {length}")
        self._length = length
        self._broadcast = broadcast
        self._output = output

    def length(self) -> int:
        return self._length

    def _broadcast_for(self, index: int) -> BroadcastFunction:
        if callable(self._broadcast):
            # partial() binds the party index at C level; the broadcast
            # function is called once per round in the engine's hot loop,
            # where a Python closure's extra frame is measurable.
            return partial(self._broadcast, index)
        return self._broadcast[index]

    def _output_for(self, index: int) -> OutputFunction:
        if callable(self._output):
            return partial(self._output, index)
        return self._output[index]

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        return [
            FunctionalParty(
                input_value=inputs[index],
                length=self._length,
                broadcast=self._broadcast_for(index),
                output=self._output_for(index),
            )
            for index in range(self.n_parties)
        ]
