"""The pre-columnar reference engine, kept verbatim for equivalence tests.

This is the seed repository's ``run_protocol`` loop: one
:class:`~repro.core.transcript.RoundRecord` and two n-tuples allocated per
round, every bit re-validated inside :meth:`Channel.transmit`.  The
fast-path engine in :mod:`repro.core.engine` must stay *bitwise
equivalent* to this loop — same outputs, same transcript contents, same
beep counts, same channel-stats deltas, same exceptions — and the
equivalence suite (``tests/unit/test_legacy_equivalence.py``) drives both
over identical (protocol, channel, seed) grids to enforce exactly that.

Not public API: benchmarks and tests only.  The only intentional
difference from the seed is that rounds land in the columnar
:class:`~repro.core.transcript.Transcript` through its record-level
compatibility ``append`` — the storage is shared, the write path is the
historical one.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.channels.base import Channel
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.core.transcript import RoundRecord, Transcript
from repro.errors import ProtocolDesyncError, ProtocolError
from repro.util.bits import validate_bit

__all__ = ["legacy_run_protocol"]

_DEFAULT_MAX_ROUNDS = 10_000_000


def legacy_run_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    channel: Channel,
    *,
    shared_seed: int | None = None,
    record_sent: bool = True,
    max_rounds: int = _DEFAULT_MAX_ROUNDS,
) -> ExecutionResult:
    """Execute ``protocol`` exactly as the seed engine did (reference loop)."""
    parties = protocol.create_parties(inputs, shared_seed=shared_seed)
    n_parties = len(parties)
    programs = [party.run() for party in parties]

    outputs: list[Any] = [None] * n_parties
    transcript = Transcript(n_parties)
    stats_before = channel.stats.snapshot()
    beeps_per_party = [0] * n_parties

    pending_bits: list[int | None] = [None] * n_parties
    finished = [False] * n_parties
    for index, program in enumerate(programs):
        try:
            pending_bits[index] = validate_bit(next(program))
        except StopIteration as stop:
            finished[index] = True
            outputs[index] = stop.value

    rounds = 0
    while not all(finished):
        if any(finished):
            laggards = [i for i, done in enumerate(finished) if not done]
            raise ProtocolDesyncError(
                f"parties {laggards} still communicating after others "
                f"finished at round {rounds}"
            )
        if rounds >= max_rounds:
            raise ProtocolError(
                f"protocol exceeded max_rounds={max_rounds}"
            )

        sent = tuple(pending_bits[index] for index in range(n_parties))
        for index, bit in enumerate(sent):
            beeps_per_party[index] += bit
        outcome = channel.transmit(sent)
        transcript.append(
            RoundRecord(
                sent=sent if record_sent else None,
                or_value=outcome.or_value,
                received=outcome.received,
            )
        )
        rounds += 1

        for index, program in enumerate(programs):
            try:
                pending_bits[index] = validate_bit(
                    program.send(outcome.received[index])
                )
            except StopIteration as stop:
                finished[index] = True
                outputs[index] = stop.value

    stats_after = channel.stats.snapshot()
    from repro.core.engine import _stats_delta

    delta = _stats_delta(stats_before, stats_after)
    return ExecutionResult(
        outputs=outputs,
        transcript=transcript,
        rounds=rounds,
        channel_stats=delta,
        beeps_per_party=tuple(beeps_per_party),
    )
