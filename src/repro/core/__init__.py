"""Protocol runtime: parties, protocols, transcripts and the engine.

Protocols are expressed in a coroutine style: each party is a generator that
*yields* the bit it beeps and is *sent back* the bit it received from the
channel.  This keeps multi-phase schemes (repetition coding, owner finding,
rewind-if-error) readable as straight-line code while the engine enforces the
beeping model's lock-step synchrony.

The paper's formalism — a protocol as a tuple ``(T, {f_m^i}, {g^i})`` of
explicit broadcast and output functions — is available in
:mod:`repro.core.formal` and is what the exact lower-bound machinery runs on.
"""

from repro.core.party import Party, FunctionalParty, Burst, Silence
from repro.core.protocol import Protocol, FunctionalProtocol
from repro.core.transcript import RoundRecord, Transcript
from repro.core.result import ExecutionResult
from repro.core.engine import run_protocol
from repro.core.formal import FormalProtocol, formalize_protocol
from repro.core.compose import (
    SequentialProtocol,
    TruncatedProtocol,
    announce_input,
)

__all__ = [
    "Party",
    "FunctionalParty",
    "Burst",
    "Silence",
    "Protocol",
    "FunctionalProtocol",
    "RoundRecord",
    "Transcript",
    "ExecutionResult",
    "run_protocol",
    "FormalProtocol",
    "formalize_protocol",
    "SequentialProtocol",
    "TruncatedProtocol",
    "announce_input",
]
