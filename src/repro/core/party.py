"""Party abstractions.

A :class:`Party` is one participant of a beeping protocol.  Its behaviour is
a generator returned by :meth:`Party.run`:

* the generator **yields** the bit the party beeps this round;
* the engine **sends** back the bit the party received from the channel;
* the generator **returns** (via ``StopIteration``) the party's final output.

This coroutine style lets complex multi-phase protocols be written as
ordinary sequential code.  Example::

    class EchoParty(Party):
        def __init__(self, bit):
            self.bit = bit

        def run(self):
            received = yield self.bit     # beep my bit, hear the OR
            return received               # output what I heard

For protocols given in the paper's functional form (a broadcast function per
round plus an output function), :class:`FunctionalParty` adapts the
``(T, f, g)`` formalism to the coroutine interface.

Batch tokens
------------

Besides a plain bit, a party may yield a **batch token** covering several
consecutive rounds in one step:

* ``Burst(bit, count)`` — beep the constant ``bit`` for ``count`` rounds;
* ``Silence(count)`` — stay silent for ``count`` rounds (sugar for
  ``Burst(0, count)``).

The engine then *sleeps* the party: its generator is not resumed during the
covered rounds, and on wake-up it is sent the ``count`` received bits as one
``bytes`` sequence (a single slice of the transcript's received column)
instead of one ``int`` per round.  A token is exactly equivalent to yielding
its bit ``count`` times — same rounds on the channel, same received bits,
same energy accounting — but the engine's per-round work scales with the
number of *awake* parties, which is what makes the Theorem 1.2 simulators'
long repetition/listening stretches cheap.  See ``docs/api.md`` for the
contract and :mod:`repro.simulation.primitives` for the canonical users.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Generator, Sequence, Union

__all__ = ["Party", "FunctionalParty", "PartyProgram", "Burst", "Silence"]


class Burst:
    """Yield token: beep the constant ``bit`` for ``count`` rounds.

    The engine validates ``bit`` (must be 0/1) and ``count`` (must be a
    positive ``int``) when the token is accepted; the constructor stays
    trivial because tokens are created once per multi-round batch inside
    party hot loops.
    """

    __slots__ = ("bit", "count")

    def __init__(self, bit: int, count: int) -> None:
        self.bit = bit
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Burst(bit={self.bit}, count={self.count})"


class Silence(Burst):
    """Yield token: stay silent for ``count`` rounds (``Burst(0, count)``)."""

    __slots__ = ()

    def __init__(self, count: int) -> None:
        Burst.__init__(self, 0, count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Silence(count={self.count})"


# The coroutine type of a party: yields beeped bits or batch tokens,
# receives channel bits (an ``int`` per awake round, a ``bytes`` sequence
# on wake-up from a batch), returns the party's output.
PartyProgram = Generator[Union[int, Burst], Any, Any]

# f_m^i in the paper: (input, received prefix) -> bit to beep in round m.
BroadcastFunction = Callable[[Any, Sequence[int]], int]
# g^i in the paper: (input, full received transcript) -> output.
OutputFunction = Callable[[Any, Sequence[int]], Any]


class Party(ABC):
    """One participant in a beeping protocol.

    Subclasses implement :meth:`run`.  A party instance is single-use: the
    engine calls ``run`` exactly once per execution.  Simulators that need to
    re-run a party from scratch (rewind-if-error) re-create it through its
    protocol's factory.
    """

    @abstractmethod
    def run(self) -> PartyProgram:
        """The party's program; see the module docstring for the calling
        convention."""


class FunctionalParty(Party):
    """A party defined by the paper's ``(T, {f_m}, g)`` formalism.

    Args:
        input_value: The party's input ``x^i``.
        length: Number of rounds ``T``.
        broadcast: ``f(input, received_prefix) -> bit``; called once per
            round with the received bits of all *previous* rounds (so in
            round ``m`` the prefix has length ``m - 1``, matching
            ``f_m^i : X^i × {0,1}^{m-1} → {0,1}``).
        output: ``g(input, received) -> output``; called after the last
            round with the party's full received transcript.
    """

    def __init__(
        self,
        input_value: Any,
        length: int,
        broadcast: BroadcastFunction,
        output: OutputFunction,
    ) -> None:
        self.input_value = input_value
        self.length = length
        self.broadcast = broadcast
        self.output = output

    def run(self) -> PartyProgram:
        # This generator body runs once per party per round — the innermost
        # loop of every Monte-Carlo trial — so attribute lookups are hoisted
        # out of the loop.
        received: list[int] = []
        broadcast = self.broadcast
        input_value = self.input_value
        append = received.append
        for _ in range(self.length):
            heard = yield broadcast(input_value, received)
            append(heard)
        return self.output(input_value, received)
