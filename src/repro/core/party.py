"""Party abstractions.

A :class:`Party` is one participant of a beeping protocol.  Its behaviour is
a generator returned by :meth:`Party.run`:

* the generator **yields** the bit the party beeps this round;
* the engine **sends** back the bit the party received from the channel;
* the generator **returns** (via ``StopIteration``) the party's final output.

This coroutine style lets complex multi-phase protocols be written as
ordinary sequential code.  Example::

    class EchoParty(Party):
        def __init__(self, bit):
            self.bit = bit

        def run(self):
            received = yield self.bit     # beep my bit, hear the OR
            return received               # output what I heard

For protocols given in the paper's functional form (a broadcast function per
round plus an output function), :class:`FunctionalParty` adapts the
``(T, f, g)`` formalism to the coroutine interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Generator, Sequence

__all__ = ["Party", "FunctionalParty", "PartyProgram"]

# The coroutine type of a party: yields beeped bits, receives channel bits,
# returns the party's output.
PartyProgram = Generator[int, int, Any]

# f_m^i in the paper: (input, received prefix) -> bit to beep in round m.
BroadcastFunction = Callable[[Any, Sequence[int]], int]
# g^i in the paper: (input, full received transcript) -> output.
OutputFunction = Callable[[Any, Sequence[int]], Any]


class Party(ABC):
    """One participant in a beeping protocol.

    Subclasses implement :meth:`run`.  A party instance is single-use: the
    engine calls ``run`` exactly once per execution.  Simulators that need to
    re-run a party from scratch (rewind-if-error) re-create it through its
    protocol's factory.
    """

    @abstractmethod
    def run(self) -> PartyProgram:
        """The party's program; see the module docstring for the calling
        convention."""


class FunctionalParty(Party):
    """A party defined by the paper's ``(T, {f_m}, g)`` formalism.

    Args:
        input_value: The party's input ``x^i``.
        length: Number of rounds ``T``.
        broadcast: ``f(input, received_prefix) -> bit``; called once per
            round with the received bits of all *previous* rounds (so in
            round ``m`` the prefix has length ``m - 1``, matching
            ``f_m^i : X^i × {0,1}^{m-1} → {0,1}``).
        output: ``g(input, received) -> output``; called after the last
            round with the party's full received transcript.
    """

    def __init__(
        self,
        input_value: Any,
        length: int,
        broadcast: BroadcastFunction,
        output: OutputFunction,
    ) -> None:
        self.input_value = input_value
        self.length = length
        self.broadcast = broadcast
        self.output = output

    def run(self) -> PartyProgram:
        # This generator body runs once per party per round — the innermost
        # loop of every Monte-Carlo trial — so attribute lookups are hoisted
        # out of the loop.
        received: list[int] = []
        broadcast = self.broadcast
        input_value = self.input_value
        append = received.append
        for _ in range(self.length):
            heard = yield broadcast(input_value, received)
            append(heard)
        return self.output(input_value, received)
