"""Zero-overhead observability for the simulation stack.

The rewind-if-error coding scheme succeeds or fails through internal
events — chunk attempts, rewinds, owner disagreements, 0→1 noise hits —
that the result objects only summarize.  This package exposes them as a
**trace-event stream**: instrumented layers (the engine, the simulators,
the trial runners) accept an ``observe=`` keyword and emit typed events
to an :class:`Observer`, which fans them out to pluggable sinks
(:class:`MetricsCollector` in memory, :class:`JsonlSink` on disk,
:class:`SummarySink` for a terminal digest).

Two hard guarantees:

* **Disabled is free.**  ``observe=None`` (the default) costs one
  ``is not None`` test per *execution* — never per round — and the
  :data:`NO_OBSERVER` singleton behaves identically.  The engine hot
  loop contains no instrumentation at all; every event is derived after
  the fact from state the run computes anyway (columnar transcripts,
  channel-stats deltas, simulator reports).
* **Tracing never perturbs.**  Instrumentation consumes no RNG draws,
  so traced and untraced runs are bitwise identical — same transcripts,
  outputs, and :class:`~repro.analysis.sweep.SweepPoint` values
  (enforced by ``tests/unit/test_observe.py``).

Event schema (``"event"`` key plus the listed fields):

========================  ======================================================
event                     fields
========================  ======================================================
``protocol_run``          engine summary, one per execution: ``protocol``,
                          ``n_parties``, ``rounds``, ``beeps_sent``,
                          ``or_ones``, ``flips_up``, ``flips_down``,
                          ``total_energy``, ``elapsed_s``
``noise_flip``            one per noisy round (derived from the transcript's
                          noisy mask): ``round``, ``or_value``, ``direction``
                          (``"up"`` = 0→1, ``"down"`` = 1→0; shared-view
                          convention under independent noise)
``simulation``            one per ``simulate`` call: ``scheme``,
                          ``inner_length``, ``simulated_rounds``,
                          ``overhead``, ``completed``, ``chunk_attempts``,
                          ``chunk_commits``, ``rewinds``
``chunk_attempt``         one per chunk attempt (chunk-commit) or per
                          non-idle leaf (hierarchical): ``attempt``,
                          ``committed_rounds``, ``chunk_rounds``,
                          ``sim_rounds``, ``owner_rounds``,
                          ``verify_rounds``, ``flag``, ``verdict``,
                          ``committed`` (hierarchical leaves omit the
                          verification fields — verdicts arrive later via
                          ``progress_check``)
``owners_phase``          one per owners phase: ``attempt``, ``iterations``,
                          ``owner_rounds``, ``ones``, ``owners_assigned``,
                          ``unowned_ones`` (phantom 1s — the 0→1 artifacts
                          owner-finding exposes), ``disagreement``
``progress_check``        hierarchical only: ``level``, ``votes``,
                          ``chunks_before``, ``chunks_after``, ``truncated``
``rewind``                one per rewind-walk pop: ``iteration``,
                          ``position`` (the transcript index discarded)
``trial``                 one per sweep trial (from the runner): ``index``,
                          ``success``, ``rounds``, ``flips``,
                          ``total_energy``; serial backends add
                          ``elapsed_s``
``worker_chunk``          pool backends only, one per dispatched chunk
                          (vectorized-process: per stripe): ``chunk``,
                          ``trials``, ``busy_s``
``backend_selected``      ``backend=auto`` planner, one per batch:
                          ``backend``, ``reason``, ``scheme``, ``n``,
                          ``trials``, ``workers``, plus the delegated
                          runner's observed ``fallback_reason`` (null
                          when the batch ran as planned).  Machine-
                          dependent by design — it reflects the local
                          crossover calibration and CPU count, never
                          the results
``sweep_batch``           one per ``run_trials`` batch: ``trials``,
                          ``workers``, ``utilization``, ``elapsed_s``,
                          ``parallel``, ``fallback``, plus the merged
                          cross-process counters ``channel_rounds``,
                          ``beeps_sent``, ``flips_up``, ``flips_down``
``sweep_point``           one per aggregated grid point: the point's
                          ``params``, ``trials``, ``successes``,
                          ``mean_rounds``, ``mean_overhead``
``cache_hit``             sweep-service result store, one per probed key
                          found (the point is *not* recomputed): ``key``,
                          plus ``index`` when the caller supplies it
``cache_miss``            one per probed key absent or discarded as
                          corrupt (the point will be computed): ``key``,
                          optional ``index``
``cache_put``             one per point checkpointed into the store:
                          ``key``, optional ``index``
``sweep_run``             one per resumable-driver call
                          (:func:`repro.service.run_sweep_resumable`):
                          ``total``, ``computed``, ``hits``,
                          ``elapsed_s``
========================  ======================================================

Wall-clock fields (``elapsed_s``, ``busy_s``, ``utilization``) vary run
to run, and ``backend_selected`` varies by machine; every other field is
seed-determined and backend-invariant.
"""

from repro.observe.observer import NO_OBSERVER, NullObserver, Observer
from repro.observe.sinks import (
    JsonlSink,
    MetricsCollector,
    Sink,
    SummarySink,
    read_jsonl,
)

__all__ = [
    "Observer",
    "NullObserver",
    "NO_OBSERVER",
    "Sink",
    "MetricsCollector",
    "JsonlSink",
    "SummarySink",
    "read_jsonl",
]
