"""The observer: the one object instrumented code talks to.

An :class:`Observer` fans trace events out to its sinks; a
:class:`NullObserver` (the module-level :data:`NO_OBSERVER` singleton)
swallows them.  Instrumented code never branches on sink types — it holds
an observer (or ``None``) and calls :meth:`Observer.emit`.

The zero-overhead contract: every instrumented hot path takes
``observe=None`` and guards its *entire* instrumentation — including any
``perf_counter`` call — behind one ``observe is not None and
observe.enabled`` test, evaluated once per execution (never per round).
Instrumentation reads state the execution computes anyway (transcript
columns, channel-stats deltas, simulator reports) and **never consumes
RNG draws**, so traced and untraced runs are bitwise identical.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.observe.sinks import Sink

__all__ = ["Observer", "NullObserver", "NO_OBSERVER"]


class Observer:
    """Dispatches trace events to a list of sinks.

    Args:
        sinks: The sinks to feed.  The observer owns their lifecycle:
            :meth:`close` closes every sink (idempotently), and the
            observer works as a context manager.

    Events are plain dicts with an ``"event"`` key naming the event type
    (see :mod:`repro.observe` for the schema) plus event-specific fields.
    Emission order is deterministic for a fixed seed; wall-clock fields
    (``elapsed_s`` and friends) are the only run-to-run variant values.
    """

    __slots__ = ("sinks", "enabled")

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self.sinks = list(sinks)
        #: Master switch; ``False`` turns :meth:`emit` into a no-op so an
        #: observer can be threaded through an API surface but muted.
        self.enabled = True

    def emit(self, event: str, /, **fields: Any) -> None:
        """Send one event to every sink."""
        if not self.enabled:
            return
        record = {"event": event, **fields}
        for sink in self.sinks:
            sink.handle(record)

    def close(self) -> None:
        """Close every sink (flush files, print summaries)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Observer":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(sinks={self.sinks!r})"


class NullObserver(Observer):
    """An observer that records nothing — the disabled path.

    ``enabled`` is pinned ``False`` so instrumentation guarded by
    ``observe.enabled`` short-circuits; :meth:`emit` is additionally a
    hard no-op in case a call site skips the guard.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(())
        self.enabled = False

    def emit(self, event: str, /, **fields: Any) -> None:
        pass


#: Shared do-nothing observer.  APIs accept ``observe=None`` as the
#: disabled default; this singleton exists for call sites that want a
#: non-None observer object unconditionally.
NO_OBSERVER = NullObserver()
