"""Trace-event sinks: where emitted events go.

Three concrete sinks cover the standard workflows:

* :class:`MetricsCollector` — in-memory: keeps the full event list plus
  running counters, for programmatic inspection and tests;
* :class:`JsonlSink` — one JSON object per line, the on-disk interchange
  format (``python -m repro trace --output events.jsonl``);
* :class:`SummarySink` — aggregates like the collector and renders a
  per-event-type summary table to a stream on :meth:`~Sink.close`.

Sinks receive plain dicts and must not mutate them (they may be shared by
several sinks).  Aggregation convention shared by the collector and the
summary sink: every event type gets an occurrence count, and every
``int``/``float`` field is summed under ``"<event>.<field>"`` — so e.g.
``counters["chunk_attempt.committed"]`` is the number of committed chunks
and ``counters["protocol_run.flips_up"]`` the total 0→1 noise hits.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import Any, IO, Iterable, Mapping

__all__ = [
    "Sink",
    "MetricsCollector",
    "JsonlSink",
    "SummarySink",
    "read_jsonl",
]


class Sink(ABC):
    """One destination for trace events."""

    @abstractmethod
    def handle(self, record: Mapping[str, Any]) -> None:
        """Consume one event record (a dict with an ``"event"`` key)."""

    def close(self) -> None:
        """Flush and release resources.  Idempotent; default no-op."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False


def _accumulate(
    counters: dict[str, float], record: Mapping[str, Any]
) -> None:
    """The shared aggregation rule (see the module docstring)."""
    event = record["event"]
    counters[event] = counters.get(event, 0) + 1
    for key, value in record.items():
        if key == "event":
            continue
        # bool is an int subclass on purpose: flag fields become counts.
        if isinstance(value, (int, float)):
            name = f"{event}.{key}"
            counters[name] = counters.get(name, 0) + value


class MetricsCollector(Sink):
    """In-memory sink: full event list + aggregate counters.

    Attributes:
        events: Every record received, in emission order.
        counters: Occurrence counts per event type and summed numeric
            fields under ``"<event>.<field>"``.
    """

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self.counters: dict[str, float] = {}

    def handle(self, record: Mapping[str, Any]) -> None:
        self.events.append(dict(record))
        _accumulate(self.counters, record)

    def count(self, event: str) -> int:
        """How many events of this type were received."""
        return int(self.counters.get(event, 0))

    def total(self, event: str, field: str) -> float:
        """Sum of ``field`` over all events of this type (0.0 if none)."""
        return float(self.counters.get(f"{event}.{field}", 0.0))

    def events_of(self, event: str) -> list[dict[str, Any]]:
        """The records of one event type, in emission order."""
        return [
            record for record in self.events if record["event"] == event
        ]

    def clear(self) -> None:
        """Drop everything collected so far."""
        self.events.clear()
        self.counters.clear()


class JsonlSink(Sink):
    """Write one JSON object per event to a file or stream.

    Built for long-running producers whose output is tailed live (e.g.
    ``repro sweep status`` watching a resumable sweep): with
    ``append=True`` the file is opened in line-buffered append mode, and
    ``flush=True`` additionally flushes after every event, so a reader
    never sees a truncated JSON line and an interrupted run keeps every
    event written so far.  The sink is a context manager (like every
    :class:`Sink`), so ``with JsonlSink(path) as sink: ...`` guarantees
    the close/flush.

    Args:
        target: A path (opened lazily on the first event, closed by
            :meth:`close`) or an already-open text stream (left open —
            the caller owns it).
        append: Open paths in append mode (``"a"``, line-buffered)
            instead of truncating; existing events survive a restart.
        flush: Flush after every event — each line hits the OS as soon
            as it is emitted, at a small throughput cost.
    """

    def __init__(
        self,
        target: str | IO[str],
        *,
        append: bool = False,
        flush: bool = False,
    ) -> None:
        if hasattr(target, "write"):
            self._stream: IO[str] | None = target  # type: ignore[assignment]
            self._path = None
        else:
            self._stream = None
            self._path = str(target)
        self._owns_stream = self._path is not None
        self._append = append
        self._flush = flush

    def handle(self, record: Mapping[str, Any]) -> None:
        if self._stream is None:
            assert self._path is not None
            mode = "a" if self._append else "w"
            # buffering=1 is line buffering for text files: each complete
            # line reaches the OS on its own, never a partial JSON object.
            self._stream = open(
                self._path, mode, buffering=1, encoding="utf-8"
            )
        self._stream.write(json.dumps(record, sort_keys=False) + "\n")
        if self._flush:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            if self._owns_stream:
                self._stream.close()
                self._stream = None
            else:
                self._stream.flush()


def read_jsonl(lines: Iterable[str]) -> list[dict[str, Any]]:
    """Parse JSONL content back into event records (blank lines skipped).

    The inverse of :class:`JsonlSink` — ``read_jsonl(open(path))`` gives
    back exactly the records that were emitted, so a file written in one
    process can be replayed into a :class:`MetricsCollector` in another.
    """
    return [json.loads(line) for line in lines if line.strip()]


class SummarySink(Sink):
    """Aggregate events and print a compact summary on close.

    Args:
        stream: Where to print; ``None`` means ``sys.stdout`` resolved at
            close time (so pytest capture and late redirection work).
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream
        self.counters: dict[str, float] = {}
        #: Per-backend ``backend_selected`` counts: the auto planner's
        #: choices are strings, which the numeric aggregation rule would
        #: otherwise drop from the summary entirely.
        self.backends: dict[str, int] = {}
        self._closed = False

    def handle(self, record: Mapping[str, Any]) -> None:
        _accumulate(self.counters, record)
        if record.get("event") == "backend_selected":
            backend = str(record.get("backend"))
            self.backends[backend] = self.backends.get(backend, 0) + 1

    def render(self) -> str:
        """The summary as text (what :meth:`close` prints)."""
        events = sorted(
            name for name in self.counters if "." not in name
        )
        if not events:
            return "no events observed"
        lines = ["observed events:"]
        for event in events:
            lines.append(f"  {event:<18} x{int(self.counters[event])}")
            fields = sorted(
                name
                for name in self.counters
                if name.startswith(event + ".")
            )
            for name in fields:
                value = self.counters[name]
                rendered = (
                    f"{value:g}" if value == int(value) else f"{value:.4f}"
                )
                lines.append(
                    f"    {name.split('.', 1)[1]:<20} {rendered}"
                )
            if event == "backend_selected":
                for backend in sorted(self.backends):
                    lines.append(
                        f"    backend={backend:<12} "
                        f"x{self.backends[backend]}"
                    )
        return "\n".join(lines)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        stream = self._stream
        if stream is None:
            import sys

            stream = sys.stdout
        print(self.render(), file=stream)
