"""Crossover calibration: measure where the vectorized backend wins.

The ``auto`` planner (:mod:`repro.parallel.planner`) routes on a
*measured* table, not a belief: per scheme, the smallest party count at
which the party-collapsed vectorized path beats the scalar engine on
this machine.  This module produces that table — ``repro bench
calibrate`` is a thin CLI wrapper around :func:`run_calibration` — by
timing both engines over an ``n`` grid with wall-clock-budgeted trial
counts (no hard-coded per-``n`` trial tables; see
:func:`trials_for_budget`, which the micro-benchmarks share).

Calibration is honest about its machine: the table records the CPU count
and budget it was measured with, and the planner treats it as local
truth — re-run ``repro bench calibrate`` after moving to different
hardware, or point ``$REPRO_CROSSOVER`` at a per-machine table.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable

from repro.channels import CorrelatedNoiseChannel, SuppressionNoiseChannel
from repro.parallel.executors import (
    ChannelSpec,
    ProtocolExecutor,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.parallel.runner import SerialRunner
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.tasks import ParityTask

__all__ = [
    "trials_for_budget",
    "run_calibration",
    "write_crossover",
    "CALIBRATION_SCHEMES",
    "NETWORK_CALIBRATION_SCHEMES",
    "DEFAULT_N_GRID",
    "NETWORK_N_GRID",
]

#: scheme key (simulator class name) -> (simulator spec, channel spec).
#: Channels match the micro-benchmark pairings: correlated noise for the
#: shared-transcript schemes, suppression for rewind.
CALIBRATION_SCHEMES = {
    "ChunkCommitSimulator": (
        SimulatorSpec.of(ChunkCommitSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
    "RewindSimulator": (
        SimulatorSpec.of(RewindSimulator),
        ChannelSpec.of(SuppressionNoiseChannel, 0.1),
    ),
    "RepetitionSimulator": (
        SimulatorSpec.of(RepetitionSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
    "HierarchicalSimulator": (
        SimulatorSpec.of(HierarchicalSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
}

DEFAULT_N_GRID = (2, 4, 8, 16, 32)

#: Node counts for the graph schemes — network batches pay off at larger
#: ``n`` than the single-hop collapses, so they get their own grid
#: (perfect squares: the calibration topology is a square grid graph).
NETWORK_N_GRID = (16, 64, 256, 1024)

#: Crossover sentinel when the vectorized path never won on the grid.
NEVER = 1 << 30


def _network_scheme(task_factory, simulator_spec=None):
    """An ``n``-parameterized builder returning ``(task, executor)``.

    The graph schemes cannot use the fixed ``(simulator, channel)`` pair
    shape — the topology, the task, and (for broadcast) the protocol
    length all depend on ``n`` — so their registry entries are callables;
    :func:`run_calibration` accepts both shapes.  The channel matches the
    network micro-benchmark pairing: per-node noise at 0.1 on a square
    grid graph.
    """

    def build(n: int):
        from repro.network.channel import NetworkBeepingChannel
        from repro.network.topology import TopologySpec

        side = max(2, int(round(n ** 0.5)))
        spec = TopologySpec.of("grid", rows=side, cols=side)
        task = task_factory(spec.build())
        channel = ChannelSpec.of(
            NetworkBeepingChannel, 0.1, topology=spec
        )
        if simulator_spec is None:
            return task, ProtocolExecutor(task, channel)
        return task, SimulationExecutor(
            task=task, channel=channel, simulator=simulator_spec
        )

    build.n_grid = NETWORK_N_GRID
    return build


def _network_calibration_schemes():
    from repro.network.local_broadcast import LocalBroadcastSimulator
    from repro.network.mis import MISTask
    from repro.network.tasks import BroadcastTask, NeighborORTask

    return {
        "NeighborORTask": _network_scheme(NeighborORTask),
        "BroadcastTask": _network_scheme(BroadcastTask),
        "MISTask": _network_scheme(MISTask),
        "LocalBroadcastSimulator": _network_scheme(
            NeighborORTask,
            SimulatorSpec.of(LocalBroadcastSimulator),
        ),
    }


#: scheme key (crossover-table row) -> n-parameterized builder.
NETWORK_CALIBRATION_SCHEMES = _network_calibration_schemes()


def trials_for_budget(
    per_trial_s: float,
    budget_s: float,
    *,
    min_trials: int = 2,
    max_trials: int = 512,
) -> int:
    """How many trials fit a wall-clock budget, given one trial's cost.

    Pure arithmetic, clamped to ``[min_trials, max_trials]`` — the floor
    keeps rates statistically meaningful when a single trial overruns
    the budget, the ceiling stops sub-microsecond points from spinning.
    Shared by the calibrator and the micro-benchmarks (which previously
    hard-coded a trials-per-``n`` table that drifted from reality as the
    engines got faster).
    """
    if budget_s <= 0:
        return min_trials
    per_trial = max(per_trial_s, 1e-9)
    return max(min_trials, min(max_trials, int(budget_s / per_trial)))


def _rate(runner, task, executor, budget_s: float, seed: int) -> float:
    """Trials per second under ``runner``, budget-derived trial count."""
    start = time.perf_counter()
    runner.run_trials(task, executor, 1, seed=seed)
    per_trial = time.perf_counter() - start
    trials = trials_for_budget(per_trial, budget_s)
    start = time.perf_counter()
    runner.run_trials(task, executor, trials, seed=seed)
    elapsed = time.perf_counter() - start
    return trials / elapsed if elapsed > 0 else float("inf")


def run_calibration(
    *,
    n_grid: tuple[int, ...] = DEFAULT_N_GRID,
    budget_s: float = 0.25,
    seed: int = 2026,
    schemes: dict | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Measure scalar vs vectorized rates per (scheme, n); build the
    crossover table the ``auto`` planner consumes.

    ``vectorized_min_n`` per scheme is the smallest grid ``n`` from which
    the vectorized path wins at every measured ``n`` onward (crossovers
    are monotone in ``n``: the collapse amortizes per-round party work).
    A scheme that never wins gets a never-select sentinel.

    A scheme entry is either the classic ``(simulator_spec,
    channel_spec)`` pair — measured over :class:`~repro.tasks.ParityTask`
    on the shared ``n_grid`` — or an ``n``-parameterized builder callable
    returning ``(task, executor)`` (the network schemes), optionally
    carrying its own grid as a ``n_grid`` attribute.
    """
    from repro.vectorized import VectorizedRunner

    if schemes is None:
        schemes = {
            **CALIBRATION_SCHEMES,
            **NETWORK_CALIBRATION_SCHEMES,
        }
    serial = SerialRunner()
    vectorized = VectorizedRunner()
    table: dict = {
        "format": 1,
        "calibrated": {
            "cpu_count": os.cpu_count() or 1,
            "budget_s": budget_s,
            "n_grid": list(n_grid),
            "seed": seed,
        },
        "process_min_trials": 8,
        "default_vectorized_min_n": 16,
        "schemes": {},
    }
    for scheme, entry in schemes.items():
        builder = entry if callable(entry) else None
        grid = (
            getattr(builder, "n_grid", n_grid)
            if builder is not None
            else n_grid
        )
        measured = []
        for n in grid:
            if builder is not None:
                task, executor = builder(n)
                n = getattr(task, "n_parties", n)
            else:
                simulator_spec, channel_spec = entry
                task = ParityTask(n)
                executor = SimulationExecutor(
                    task=task,
                    channel=channel_spec,
                    simulator=simulator_spec,
                )
            scalar_rate = _rate(serial, task, executor, budget_s, seed)
            vector_rate = _rate(vectorized, task, executor, budget_s, seed)
            measured.append(
                {
                    "n": n,
                    "scalar_trials_per_s": round(scalar_rate, 3),
                    "vectorized_trials_per_s": round(vector_rate, 3),
                    "speedup": round(vector_rate / scalar_rate, 3),
                }
            )
            if progress is not None:
                progress(
                    f"{scheme} n={n}: scalar {scalar_rate:.1f}/s, "
                    f"vectorized {vector_rate:.1f}/s "
                    f"(x{vector_rate / scalar_rate:.2f})"
                )
        min_n = NEVER
        for point in reversed(measured):
            if point["speedup"] >= 1.0:
                min_n = point["n"]
            else:
                break
        table["schemes"][scheme] = {
            "vectorized_min_n": min_n,
            "measured": measured,
        }
    return table


def write_crossover(table: dict, path: str) -> None:
    """Write the table and drop the planner's cache so the new numbers
    take effect in-process."""
    from repro.parallel.planner import _reset_crossover_cache

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(table, handle, indent=2, sort_keys=True)
        handle.write("\n")
    _reset_crossover_cache()
