"""Picklable sweep executors.

The sweep layer accepts any ``(inputs, trial_seed) -> ExecutionResult``
callable, and most call sites historically used closures.  Closures cannot
cross a process boundary, so a closure-driven sweep silently degrades the
:class:`~repro.parallel.runner.ProcessPoolRunner` to its serial fallback.
The dataclasses here are the picklable equivalents: they name the task,
the channel recipe, and (optionally) the simulator recipe as plain data,
and build everything fresh inside the worker from the per-trial seed —
exactly the calls the closures made, so results are bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.channels.base import Channel
from repro.core.engine import run_protocol
from repro.core.result import ExecutionResult
from repro.simulation.base import Simulator
from repro.tasks.base import Task

__all__ = [
    "ChannelSpec",
    "SimulatorSpec",
    "ProtocolExecutor",
    "SimulationExecutor",
]


def _freeze_kwargs(kwargs: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class ChannelSpec:
    """A channel recipe: ``factory(*args, **kwargs, rng=trial_seed)``.

    ``factory`` is a channel class or classmethod (picklable by
    reference); the per-trial seed is injected under ``seed_kwarg``
    (``None`` for seedless channels such as ``NoiselessChannel``).

    Network channels carry their graph as a declarative
    :class:`~repro.network.topology.TopologySpec` under ``topology``
    rather than a live :class:`~repro.network.topology.Topology`: the
    spec is tiny, picklable and content-addressable (sweep cache keys
    hash the recipe, not the adjacency arrays), and :meth:`make` builds
    the graph inside the worker — memoized, so per-trial construction
    costs a cache lookup — and passes it as the factory's first
    positional argument.

    >>> from repro.channels import CorrelatedNoiseChannel
    >>> spec = ChannelSpec.of(CorrelatedNoiseChannel, 0.1)
    >>> spec.make(7).epsilon
    0.1
    """

    factory: Callable[..., Channel]
    args: tuple[Any, ...] = ()
    kwargs: tuple[tuple[str, Any], ...] = ()
    seed_kwarg: str | None = "rng"
    topology: Any = None  # TopologySpec | None (Any: layering, picklability)

    @classmethod
    def of(
        cls,
        factory: Callable[..., Channel],
        *args: Any,
        seed_kwarg: str | None = "rng",
        topology: Any = None,
        **kwargs: Any,
    ) -> "ChannelSpec":
        """Convenience constructor mirroring the factory's call shape."""
        return cls(factory, args, _freeze_kwargs(kwargs), seed_kwarg, topology)

    def make(self, trial_seed: int) -> Channel:
        """Build the channel for one trial."""
        kwargs = dict(self.kwargs)
        if self.seed_kwarg is not None:
            kwargs[self.seed_kwarg] = trial_seed
        args = self.args
        if self.topology is not None:
            args = (self.topology.build(), *args)
        return self.factory(*args, **kwargs)


@dataclass(frozen=True)
class SimulatorSpec:
    """A simulator recipe: ``factory(*args, **kwargs)`` per trial.

    Simulators are stateless across ``simulate`` calls (all randomness
    comes from the channel and ``shared_seed``), so constructing one per
    trial is equivalent to sharing an instance — and safe under
    multiprocessing.
    """

    factory: Callable[..., Simulator]
    args: tuple[Any, ...] = ()
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(
        cls, factory: Callable[..., Simulator], *args: Any, **kwargs: Any
    ) -> "SimulatorSpec":
        """Convenience constructor mirroring the factory's call shape."""
        return cls(factory, args, _freeze_kwargs(kwargs))

    def make(self) -> Simulator:
        """Build the simulator for one trial."""
        return self.factory(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class ProtocolExecutor:
    """Run the task's noiseless protocol raw over a per-trial channel.

    ``record_sent=False`` is the memory lever for long Monte-Carlo sweeps:
    the columnar transcript then stores three bytes per round regardless
    of the party count, and trial outcomes (outputs, rounds, stats) are
    unaffected — the engine's fast path is bitwise identical either way.
    """

    task: Task
    channel: ChannelSpec
    record_sent: bool = True

    def __call__(
        self,
        inputs: Sequence[Any],
        trial_seed: int,
        observe: "Observer | None" = None,
    ) -> ExecutionResult:
        return run_protocol(
            self.task.noiseless_protocol(),
            inputs,
            self.channel.make(trial_seed),
            record_sent=self.record_sent,
            observe=observe,
        )


@dataclass(frozen=True)
class SimulationExecutor:
    """Run the task's protocol through a simulation scheme per trial."""

    task: Task
    channel: ChannelSpec
    simulator: SimulatorSpec

    def __call__(
        self,
        inputs: Sequence[Any],
        trial_seed: int,
        observe: "Observer | None" = None,
    ) -> ExecutionResult:
        return self.simulator.make().simulate(
            self.task.noiseless_protocol(),
            inputs,
            self.channel.make(trial_seed),
            observe=observe,
        )
