"""The calibrated ``auto`` backend planner.

``make_runner(backend="auto")`` returns an :class:`AutoRunner` that picks
a concrete backend *per batch* — serial, process, vectorized, or the
composed vectorized-process — from a measured crossover table instead of
a hard-coded rule.  The table (:mod:`repro.parallel` package data
``crossover.json``, refreshable with ``repro bench calibrate``) records,
per scheme, the smallest party count at which the party-collapsed
vectorized path actually beats the scalar engine on the calibrating
machine; below it the planner dispatches scalar even though a collapsed
form exists.  That is the fix for the small-``n`` regression: the rewind
collapse *loses* to the scalar engine at ``n = 8`` (the per-trial numpy
setup outweighs the tiny round count), and a planner that routes on
capability instead of measurement would ship that loss to every
``backend=auto`` user.

The choice is purely wall-clock: every backend is bitwise-identical for
the same ``(seed, index)``, so the planner can never change a result —
only how fast it arrives.  Each decision is recorded in
:attr:`AutoRunner.last_decision` and, when tracing, emitted as a
``backend_selected`` event (machine-dependent by design: it reflects the
local calibration and CPU count).
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.parallel.runner import (
    Executor,
    ProcessPoolRunner,
    SerialRunner,
    TrialBatch,
    TrialRunner,
)
from repro.rng import derive_seed
from repro.tasks.base import Task

__all__ = ["AutoRunner", "load_crossover", "DEFAULT_CROSSOVER_PATH"]

#: The shipped calibration table (regenerate: ``repro bench calibrate``).
DEFAULT_CROSSOVER_PATH = os.path.join(
    os.path.dirname(__file__), "crossover.json"
)

#: Environment override so a locally calibrated table can be used without
#: editing the installed package.
CROSSOVER_ENV = "REPRO_CROSSOVER"

_cached_table: dict | None = None
_cached_path: str | None = None


def load_crossover(path: str | None = None) -> dict:
    """The crossover table: ``path`` arg, else ``$REPRO_CROSSOVER``, else
    the shipped package data.  Cached per path; missing or unreadable
    tables degrade to an empty dict (the planner then uses its
    conservative defaults rather than failing the sweep)."""
    global _cached_table, _cached_path
    resolved = path or os.environ.get(CROSSOVER_ENV) or DEFAULT_CROSSOVER_PATH
    if _cached_table is not None and _cached_path == resolved:
        return _cached_table
    try:
        with open(resolved, "r", encoding="utf-8") as handle:
            table = json.load(handle)
        if not isinstance(table, dict):
            table = {}
    except (OSError, ValueError):
        table = {}
    _cached_table = table
    _cached_path = resolved
    return table


def _reset_crossover_cache() -> None:
    """Test hook / post-calibration refresh."""
    global _cached_table, _cached_path
    _cached_table = None
    _cached_path = None


class AutoRunner(TrialRunner):
    """Per-batch backend planner over the measured crossover table.

    Args:
        workers: The parallelism budget; ``1`` (or ``None``) restricts
            the plan to in-process backends.
        chunk_size: Forwarded to whichever pool backend gets picked.
        crossover: An explicit table (tests); ``None`` loads via
            :func:`load_crossover`.

    Sub-runners are constructed lazily and cached, so a sweep that
    alternates between collapsible and scalar points reuses one pool and
    one warmed vectorized runner throughout.
    """

    #: Used for any scheme the table has no entry for.
    DEFAULT_VECTORIZED_MIN_N = 16
    #: Below this many trials a pool's dispatch overhead cannot pay off.
    DEFAULT_PROCESS_MIN_TRIALS = 8

    def __init__(
        self,
        workers: int | None = 1,
        chunk_size: int | None = None,
        crossover: dict | None = None,
    ) -> None:
        self._workers = workers if workers is not None else 1
        self._chunk_size = chunk_size
        self._crossover = crossover
        self._runners: dict[str, TrialRunner] = {}
        self.last_fallback_reason: str | None = None
        #: The most recent plan: ``{"backend", "reason", "scheme", "n",
        #: "trials", "workers"}`` (``None`` before the first batch).
        self.last_decision: dict[str, Any] | None = None

    @property
    def workers(self) -> int:
        return self._workers

    def _table(self) -> dict:
        if self._crossover is not None:
            return self._crossover
        return load_crossover()

    def _collapse_probe(
        self, executor: Executor, seed: int
    ) -> tuple[str | None, str | None]:
        """``(scheme_name, None)`` when the batch can collapse, else
        ``(scheme_name_or_None, reason)`` mirroring the vectorized
        runner's classification (without requiring numpy).

        Network batches report the route's crossover key — the task type
        name for raw protocol routes (``"MISTask"``), the simulator name
        for the local-broadcast route — so graph schemes get their own
        measured ``vectorized_min_n`` rows.
        """
        from repro.parallel.executors import SimulationExecutor

        simulator = None
        scheme = None
        if isinstance(executor, SimulationExecutor):
            simulator = executor.simulator.make()
            scheme = type(simulator).__name__
        try:
            from repro.vectorized.noise import HAVE_NUMPY
            from repro.vectorized.runner import _COLLAPSED_SCHEMES
            from repro.vectorized.schemes import CHANNEL_KINDS
        except ImportError:  # pragma: no cover - broken install
            return scheme, "vectorized package unavailable"
        if not HAVE_NUMPY:
            return scheme, "numpy unavailable"
        if simulator is None:
            reason = "executor is not a SimulationExecutor"
        elif type(simulator) not in _COLLAPSED_SCHEMES:
            reason = f"no collapsed form for {scheme}"
        else:
            probe = executor.channel.make(derive_seed(seed, "trial[0]"))
            if type(probe) in CHANNEL_KINDS:
                return scheme, None
            reason = f"no collapsed replay for {type(probe).__name__}"
        from repro.vectorized.network import classify_network

        route, net_reason = classify_network(executor, seed)
        if route is not None:
            return route.scheme, None
        return scheme, f"{reason}; {net_reason}"

    def _plan(
        self, task: Task, executor: Executor, trials: int, seed: int
    ) -> tuple[str, str, str | None, int | None]:
        """``(backend, reason, scheme, n)`` for this batch."""
        table = self._table()
        scheme, no_collapse = self._collapse_probe(executor, seed)
        n = getattr(task, "n_parties", None)
        process_min_trials = int(
            table.get(
                "process_min_trials", self.DEFAULT_PROCESS_MIN_TRIALS
            )
        )
        pool_ok = (
            self._workers > 1 and trials >= process_min_trials
        )
        if no_collapse is None:
            entry = table.get("schemes", {}).get(scheme, {})
            min_n = int(
                entry.get(
                    "vectorized_min_n",
                    table.get(
                        "default_vectorized_min_n",
                        self.DEFAULT_VECTORIZED_MIN_N,
                    ),
                )
            )
            if n is not None and n < min_n:
                # Measured crossover says the collapse *loses* here.
                reason = (
                    f"n={n} below measured vectorized crossover "
                    f"{min_n} for {scheme}"
                )
                if pool_ok:
                    return "process", reason, scheme, n
                return "serial", reason, scheme, n
            reason = (
                f"collapsible {scheme} at n={n} >= crossover {min_n}"
            )
            if pool_ok:
                return (
                    "vectorized-process",
                    reason + f"; striping over {self._workers} workers",
                    scheme,
                    n,
                )
            return "vectorized", reason, scheme, n
        if pool_ok:
            return (
                "process",
                f"{no_collapse}; pooling over {self._workers} workers",
                scheme,
                n,
            )
        if self._workers > 1:
            return (
                "serial",
                f"{no_collapse}; {trials} trials below pool "
                f"threshold {process_min_trials}",
                scheme,
                n,
            )
        return "serial", no_collapse, scheme, n

    def _runner_for(self, backend: str) -> TrialRunner:
        runner = self._runners.get(backend)
        if runner is not None:
            return runner
        if backend == "serial":
            runner = SerialRunner()
        elif backend == "process":
            runner = ProcessPoolRunner(
                workers=self._workers, chunk_size=self._chunk_size
            )
        elif backend == "vectorized":
            from repro.vectorized import VectorizedRunner

            runner = VectorizedRunner()
        else:  # "vectorized-process"
            from repro.vectorized import VectorizedProcessRunner

            runner = VectorizedProcessRunner(
                workers=self._workers, chunk_size=self._chunk_size
            )
        self._runners[backend] = runner
        return runner

    def run_trials(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        *,
        seed: int = 0,
        observe: "Observer | None" = None,
    ) -> TrialBatch:
        backend, reason, scheme, n = self._plan(
            task, executor, trials, seed
        )
        self.last_decision = {
            "backend": backend,
            "reason": reason,
            "scheme": scheme,
            "n": n,
            "trials": trials,
            "workers": self._workers,
        }
        runner = self._runner_for(backend)
        batch = runner.run_trials(
            task, executor, trials, seed=seed, observe=observe
        )
        self.last_fallback_reason = getattr(
            runner, "last_fallback_reason", None
        )
        self.last_decision["fallback_reason"] = self.last_fallback_reason
        if observe is not None and observe.enabled:
            # Emitted after the batch so the event can also report the
            # delegated runner's observed downgrade, not just the plan.
            observe.emit("backend_selected", **self.last_decision)
        return batch

    def close(self) -> None:
        for runner in self._runners.values():
            runner.close()
        self._runners.clear()
