"""Pluggable Monte-Carlo trial runners.

Every sweep in this package reduces to the same embarrassingly parallel
unit: *run one independently seeded trial and record what happened*.
:func:`run_trial` is that unit, and a :class:`TrialRunner` decides how a
batch of them executes — in-process (:class:`SerialRunner`) or across a
reusable process pool (:class:`ProcessPoolRunner`).

**Determinism contract.**  A trial's behaviour depends only on
``(master seed, trial index)``: inputs come from
``spawn(seed, f"inputs[{index}]")`` and the executor's channel/protocol
randomness from ``derive_seed(seed, f"trial[{index}]")`` — never from the
dispatch order, the worker a trial lands on, or the chunking.  Runners
return records sorted by trial index, and all aggregation happens on the
returned records in index order, so every backend produces **bitwise
identical** sweep results for the same seed.  Wall-clock measurements
live in :class:`TrialBatch.timing` only, never in the records.

The process-pool backend degrades gracefully: with ``workers=1``, with an
unpicklable task/executor (e.g. a closure), or when the pool cannot start
(restricted environments), it runs the batch serially — same records,
``timing["fallback"]`` flags the downgrade.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.channels.stats import ChannelStats
from repro.core.result import ExecutionResult
from repro.errors import ConfigurationError
from repro.rng import derive_seed, spawn
from repro.tasks.base import Task

__all__ = [
    "TrialRecord",
    "TrialBatch",
    "run_trial",
    "TrialRunner",
    "SerialRunner",
    "ProcessPoolRunner",
]

Executor = Callable[[Sequence[Any], int], ExecutionResult]


@dataclass(frozen=True)
class TrialRecord:
    """Everything a sweep aggregates about one trial.

    Records are plain picklable data so workers can ship them back
    cheaply; they deliberately exclude transcripts and outputs (which can
    be arbitrarily large and are not aggregated by any sweep).

    Attributes:
        index: Trial index within the batch (the seed-derivation key).
        success: ``task.is_correct(inputs, outputs)`` for this trial.
        rounds: Channel rounds the execution reported.
        chunk_attempts: ``report.chunk_attempts`` when the executor was a
            simulator, else ``None``.
        completed: ``report.completed`` when present, else ``None``.
        channel_rounds / beeps_sent / or_ones / flips_up / flips_down:
            The execution's :class:`ChannelStats` delta, flattened.
        total_energy: Total beeps across parties.
    """

    index: int
    success: bool
    rounds: float
    chunk_attempts: float | None
    completed: bool | None
    channel_rounds: int
    beeps_sent: int
    or_ones: int
    flips_up: int
    flips_down: int
    total_energy: int

    @property
    def flips(self) -> int:
        """Total noise events observed during the trial."""
        return self.flips_up + self.flips_down

    def channel_stats(self) -> ChannelStats:
        """The trial's channel counters as a :class:`ChannelStats`."""
        return ChannelStats(
            rounds=self.channel_rounds,
            beeps_sent=self.beeps_sent,
            or_ones=self.or_ones,
            flips_up=self.flips_up,
            flips_down=self.flips_down,
        )


@dataclass
class TrialBatch:
    """A completed batch: records in trial-index order plus timing.

    ``timing`` is wall-clock bookkeeping (trials/sec, worker utilization,
    fallback flags).  It is *never* folded into deterministic outputs —
    see the module docstring's determinism contract.
    """

    records: list[TrialRecord]
    timing: dict[str, float]

    def aggregate_channel_stats(self) -> ChannelStats:
        """Sum of the per-trial channel counters (drift tripwire)."""
        total = ChannelStats()
        for record in self.records:
            total.rounds += record.channel_rounds
            total.beeps_sent += record.beeps_sent
            total.or_ones += record.or_ones
            total.flips_up += record.flips_up
            total.flips_down += record.flips_down
        return total


def run_trial(
    task: Task, executor: Executor, seed: int, index: int
) -> TrialRecord:
    """Run trial ``index`` of a batch — the determinism contract's unit.

    Inputs are sampled from ``spawn(seed, f"inputs[{index}]")`` and the
    executor receives ``derive_seed(seed, f"trial[{index}]")``, so the
    record depends only on ``(seed, index)`` and both labels match what
    the historical serial loop in :mod:`repro.analysis.sweep` used —
    existing benchmark results stay valid.
    """
    inputs = task.sample_inputs(spawn(seed, f"inputs[{index}]"))
    trial_seed = derive_seed(seed, f"trial[{index}]")
    result = executor(inputs, trial_seed)
    report = result.metadata.get("report")
    stats = result.channel_stats
    return TrialRecord(
        index=index,
        success=bool(task.is_correct(inputs, result.outputs)),
        rounds=float(result.rounds),
        chunk_attempts=(
            float(report.chunk_attempts) if report is not None else None
        ),
        completed=(
            bool(report.completed) if report is not None else None
        ),
        channel_rounds=stats.rounds,
        beeps_sent=stats.beeps_sent,
        or_ones=stats.or_ones,
        flips_up=stats.flips_up,
        flips_down=stats.flips_down,
        total_energy=result.total_energy,
    )


def _validate_trials(trials: int) -> None:
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")


def _run_chunk(
    task: Task, executor: Executor, seed: int, indices: list[int]
) -> tuple[list[TrialRecord], float]:
    """Worker entry point: run a contiguous block of trials.

    Returns the records plus the worker's busy time for the utilization
    metric.  Module-level so the pool can pickle it by reference.
    """
    start = time.perf_counter()
    records = [run_trial(task, executor, seed, index) for index in indices]
    return records, time.perf_counter() - start


def _serial_records(
    task: Task,
    executor: Executor,
    trials: int,
    seed: int,
    collect_times: bool = False,
) -> tuple[list[TrialRecord], float, list[float] | None]:
    start = time.perf_counter()
    if collect_times:
        times: list[float] | None = []
        records = []
        last = start
        for index in range(trials):
            records.append(run_trial(task, executor, seed, index))
            now = time.perf_counter()
            times.append(now - last)
            last = now
    else:
        times = None
        records = [
            run_trial(task, executor, seed, index)
            for index in range(trials)
        ]
    return records, time.perf_counter() - start, times


def _emit_batch_events(
    observe: "Observer",
    batch: TrialBatch,
    trial_times: list[float] | None = None,
) -> None:
    """Runner trace events: one ``trial`` per record plus the
    ``sweep_batch`` summary with merged cross-process counters.

    Emitted in the parent after the batch completes, from the returned
    records — which the determinism contract makes identical across
    backends — so traced and untraced sweeps agree bitwise.
    """
    for record in batch.records:
        fields: dict[str, Any] = {
            "index": record.index,
            "success": record.success,
            "rounds": record.rounds,
            "flips": record.flips,
            "total_energy": record.total_energy,
        }
        if trial_times is not None:
            fields["elapsed_s"] = trial_times[record.index]
        observe.emit("trial", **fields)
    totals = batch.aggregate_channel_stats()
    timing = batch.timing
    observe.emit(
        "sweep_batch",
        trials=len(batch.records),
        workers=int(timing["workers"]),
        utilization=timing["utilization"],
        elapsed_s=timing["elapsed_s"],
        parallel=bool(timing["parallel"]),
        fallback=bool(timing["fallback"]),
        channel_rounds=totals.rounds,
        beeps_sent=totals.beeps_sent,
        flips_up=totals.flips_up,
        flips_down=totals.flips_down,
    )


def _timing(
    *,
    elapsed: float,
    trials: int,
    workers: int,
    chunks: int,
    busy: float,
    parallel: bool,
    fallback: bool,
) -> dict[str, float]:
    return {
        "elapsed_s": elapsed,
        "trials_per_s": trials / elapsed if elapsed > 0 else float("inf"),
        "workers": float(workers),
        "chunks": float(chunks),
        "busy_s": busy,
        "utilization": (
            busy / (elapsed * workers) if elapsed > 0 and workers else 1.0
        ),
        "parallel": 1.0 if parallel else 0.0,
        "fallback": 1.0 if fallback else 0.0,
    }


class TrialRunner(ABC):
    """Strategy interface: how a batch of independent trials executes."""

    @property
    @abstractmethod
    def workers(self) -> int:
        """Maximum concurrent trials this runner aims for."""

    @abstractmethod
    def run_trials(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        *,
        seed: int = 0,
        observe: "Observer | None" = None,
    ) -> TrialBatch:
        """Run ``trials`` independent trials; records in index order.

        ``observe`` (optional :class:`~repro.observe.Observer`) receives
        one ``trial`` event per record and a ``sweep_batch`` summary
        (plus ``worker_chunk`` events on the process-pool backend).
        Events are emitted in the parent process from the returned
        records, so tracing never changes the records themselves.
        """

    def close(self) -> None:
        """Release held resources (pools).  Idempotent."""

    def __enter__(self) -> "TrialRunner":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False


class SerialRunner(TrialRunner):
    """The historical in-process loop — the reference backend."""

    @property
    def workers(self) -> int:
        return 1

    def run_trials(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        *,
        seed: int = 0,
        observe: "Observer | None" = None,
    ) -> TrialBatch:
        _validate_trials(trials)
        tracing = observe is not None and observe.enabled
        records, elapsed, times = _serial_records(
            task, executor, trials, seed, collect_times=tracing
        )
        batch = TrialBatch(
            records=records,
            timing=_timing(
                elapsed=elapsed,
                trials=trials,
                workers=1,
                chunks=1,
                busy=elapsed,
                parallel=False,
                fallback=False,
            ),
        )
        if tracing:
            _emit_batch_events(observe, batch, trial_times=times)
        return batch


class ProcessPoolRunner(TrialRunner):
    """Chunked dispatch over a reusable :class:`ProcessPoolExecutor`.

    The pool is created lazily on first use and reused across
    ``run_trials`` calls (and hence across sweep grid points), so worker
    startup is amortised over a whole curve.  Close it explicitly (or use
    the runner as a context manager) when done.

    Args:
        workers: Pool size; ``None`` means ``os.cpu_count()``.
        chunk_size: Trials per dispatched work item; ``None`` picks
            ``ceil(trials / (4 * workers))`` so each worker sees ~4 chunks
            (decent load balancing without per-trial pickling overhead).
        mp_context: Optional :mod:`multiprocessing` context (e.g. to force
            ``"spawn"``); ``None`` uses the platform default.

    Falls back to the serial path — with identical results — when
    ``workers == 1``, when the task/executor cannot be pickled, or when
    the pool cannot start or breaks mid-batch.  ``last_fallback_reason``
    records why.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        mp_context: Any = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._workers = workers
        self.chunk_size = chunk_size
        self._mp_context = mp_context
        self._pool = None
        self._pool_failed = False
        self.last_fallback_reason: str | None = None

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self):
        if self._pool is None and not self._pool_failed:
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                context = (
                    self._mp_context
                    if self._mp_context is not None
                    else multiprocessing.get_context()
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers, mp_context=context
                )
            except (ImportError, OSError, ValueError):
                # No multiprocessing support here (restricted sandbox,
                # missing /dev/shm, ...): permanently degrade to serial.
                self._pool_failed = True
        return self._pool

    def _chunk_indices(self, trials: int) -> list[list[int]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(trials / (4 * self._workers)))
        return [
            list(range(low, min(low + size, trials)))
            for low in range(0, trials, size)
        ]

    def _serial_fallback(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        seed: int,
        reason: str | None,
        observe: "Observer | None" = None,
    ) -> TrialBatch:
        self.last_fallback_reason = reason
        tracing = observe is not None and observe.enabled
        records, elapsed, times = _serial_records(
            task, executor, trials, seed, collect_times=tracing
        )
        batch = TrialBatch(
            records=records,
            timing=_timing(
                elapsed=elapsed,
                trials=trials,
                workers=1,
                chunks=1,
                busy=elapsed,
                parallel=False,
                # workers == 1 is a designed serial path, not a downgrade.
                fallback=reason is not None,
            ),
        )
        if tracing:
            _emit_batch_events(observe, batch, trial_times=times)
        return batch

    def run_trials(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        *,
        seed: int = 0,
        observe: "Observer | None" = None,
    ) -> TrialBatch:
        _validate_trials(trials)
        if self._workers == 1:
            return self._serial_fallback(
                task, executor, trials, seed, None, observe
            )
        try:
            pickle.dumps((task, executor))
        except Exception:
            return self._serial_fallback(
                task,
                executor,
                trials,
                seed,
                "unpicklable task/executor",
                observe,
            )
        pool = self._ensure_pool()
        if pool is None:
            return self._serial_fallback(
                task,
                executor,
                trials,
                seed,
                "process pool failed to start",
                observe,
            )
        chunks = self._chunk_indices(trials)
        start = time.perf_counter()
        try:
            futures = [
                pool.submit(_run_chunk, task, executor, seed, chunk)
                for chunk in chunks
            ]
            outcomes = [future.result() for future in futures]
        except Exception:
            # A worker died (OOM, signal) or the pool broke: recover the
            # batch serially so the sweep still completes correctly.
            self.close()
            self._pool_failed = True
            return self._serial_fallback(
                task,
                executor,
                trials,
                seed,
                "process pool broke mid-batch",
                observe,
            )
        elapsed = time.perf_counter() - start
        self.last_fallback_reason = None
        records = [
            record for chunk_records, _ in outcomes for record in chunk_records
        ]
        records.sort(key=lambda record: record.index)
        busy = sum(busy_time for _, busy_time in outcomes)
        batch = TrialBatch(
            records=records,
            timing=_timing(
                elapsed=elapsed,
                trials=trials,
                workers=self._workers,
                chunks=len(chunks),
                busy=busy,
                parallel=True,
                fallback=False,
            ),
        )
        if observe is not None and observe.enabled:
            for chunk_no, (chunk, (_, busy_time)) in enumerate(
                zip(chunks, outcomes)
            ):
                observe.emit(
                    "worker_chunk",
                    chunk=chunk_no,
                    trials=len(chunk),
                    busy_s=busy_time,
                )
            _emit_batch_events(observe, batch)
        return batch

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
