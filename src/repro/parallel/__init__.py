"""Parallel Monte-Carlo trial running.

This package makes every sweep in :mod:`repro.analysis.sweep` pluggable
over a :class:`TrialRunner` backend:

* :class:`SerialRunner` — the historical in-process loop;
* :class:`ProcessPoolRunner` — chunked dispatch over a reusable process
  pool, with graceful serial fallback;
* ``VectorizedRunner`` / ``VectorizedProcessRunner``
  (:mod:`repro.vectorized`) — party-collapsed numpy batches, single-core
  or striped across a pool of vectorized workers;
* :class:`~repro.parallel.planner.AutoRunner` (``backend="auto"``) — a
  per-batch planner routing between all of the above on a measured
  crossover table (``repro bench calibrate``).

All backends produce **bitwise identical** results for the same master
seed (see :mod:`repro.parallel.runner` for the determinism contract), so
switching is purely a wall-clock decision: ``--workers N`` /
``--backend`` on the CLI, ``REPRO_WORKERS=N`` for the benchmark harness,
or :func:`use_runner` / :func:`set_default_runner` from code.

Closure executors cannot cross process boundaries; the picklable specs in
:mod:`repro.parallel.executors` (:class:`ProtocolExecutor`,
:class:`SimulationExecutor`) are the multiprocessing-friendly equivalents.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.parallel.executors import (
    ChannelSpec,
    ProtocolExecutor,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.parallel.runner import (
    ProcessPoolRunner,
    SerialRunner,
    TrialBatch,
    TrialRecord,
    TrialRunner,
    run_trial,
)

__all__ = [
    "TrialRunner",
    "SerialRunner",
    "ProcessPoolRunner",
    "TrialRecord",
    "TrialBatch",
    "run_trial",
    "ChannelSpec",
    "SimulatorSpec",
    "ProtocolExecutor",
    "SimulationExecutor",
    "make_runner",
    "RUNNER_BACKENDS",
    "get_default_runner",
    "set_default_runner",
    "use_runner",
]

_default_runner: TrialRunner = SerialRunner()


#: Backend names ``make_runner`` accepts (the CLI's ``--backend`` choices).
RUNNER_BACKENDS = (
    "auto",
    "serial",
    "process",
    "vectorized",
    "vectorized-process",
)


def make_runner(
    workers: int | None = 1,
    chunk_size: int | None = None,
    backend: str | None = None,
) -> TrialRunner:
    """A runner from the backend registry.

    ``backend`` selects explicitly: ``"serial"``, ``"process"`` (a pool
    of ``workers``), ``"vectorized"`` (the trial-batched numpy backend of
    :mod:`repro.vectorized`; requires numpy, scalar-fallback for batches
    it cannot collapse), or ``"vectorized-process"`` (the composed
    backend: contiguous trial stripes over a pool of vectorized
    workers).  ``"auto"`` returns the calibrated per-batch planner
    (:class:`~repro.parallel.planner.AutoRunner`), which routes each
    batch on the measured crossover table.  ``None`` keeps the
    historical rule: serial when ``workers <= 1``, a process pool
    otherwise.  Every backend honours the determinism contract, so the
    choice is purely a wall-clock decision.
    """
    if backend == "auto":
        # Imported lazily, like the vectorized backends it plans over.
        from repro.parallel.planner import AutoRunner

        return AutoRunner(workers=workers, chunk_size=chunk_size)
    if backend is None:
        if workers is None or workers <= 1:
            return SerialRunner()
        return ProcessPoolRunner(workers=workers, chunk_size=chunk_size)
    if backend == "serial":
        return SerialRunner()
    if backend == "process":
        return ProcessPoolRunner(workers=workers, chunk_size=chunk_size)
    if backend == "vectorized":
        # Imported lazily: the vectorized package needs numpy only at
        # construction, and serial/process users shouldn't pay for it.
        from repro.vectorized import VectorizedRunner

        return VectorizedRunner()
    if backend == "vectorized-process":
        from repro.vectorized import VectorizedProcessRunner

        return VectorizedProcessRunner(
            workers=workers, chunk_size=chunk_size
        )
    from repro.errors import ConfigurationError

    raise ConfigurationError(
        f"unknown runner backend {backend!r}; "
        f"expected one of {', '.join(RUNNER_BACKENDS)}"
    )


def get_default_runner() -> TrialRunner:
    """The runner sweeps use when no explicit ``runner=`` is passed."""
    return _default_runner


def set_default_runner(runner: TrialRunner | None) -> None:
    """Install the process-wide default runner (``None`` resets to serial).

    The caller keeps ownership: closing a previously installed pool is
    the caller's job (see :func:`use_runner` for scoped installs).
    """
    global _default_runner
    _default_runner = runner if runner is not None else SerialRunner()


@contextmanager
def use_runner(runner: TrialRunner | None) -> Iterator[TrialRunner]:
    """Scoped :func:`set_default_runner`: restores the previous default.

    Does not close ``runner`` on exit — reuse it across several scopes
    and close it once.
    """
    previous = get_default_runner()
    set_default_runner(runner)
    try:
        yield get_default_runner()
    finally:
        set_default_runner(previous)
