"""repro — a reproduction of *Noisy Beeps* (Efremenko, Kol, Saxena; PODC 2020).

The package implements the n-party beeping model under correlated stochastic
noise, the paper's O(log n)-overhead noise-resilient simulation scheme
(Theorem 1.2, chunked simulation with owner finding), the constant-overhead
scheme for suppression noise, the ``InputSet_n`` hard instance, and the full
lower-bound machinery of Appendix C (feasible sets, good players, the ζ
progress measure) evaluated exactly on small instances.

Quickstart::

    import random
    from repro import (
        CorrelatedNoiseChannel, ChunkCommitSimulator, InputSetTask,
    )

    task = InputSetTask(n_parties=8)
    inputs = task.sample_inputs(random.Random(0))
    channel = CorrelatedNoiseChannel(epsilon=0.1, rng=1)
    result = ChunkCommitSimulator().simulate(
        task.noiseless_protocol(), inputs, channel
    )
    assert result.common_output() == task.reference_output(inputs)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro.channels import (
    BudgetedAdversaryChannel,
    BurstNoiseChannel,
    Channel,
    ScriptedChannel,
    ChannelStats,
    CorrectingAdversaryChannel,
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    RoundOutcome,
    SharedFlipReductionChannel,
    SuppressionNoiseChannel,
)
from repro.core import (
    Burst,
    ExecutionResult,
    SequentialProtocol,
    TruncatedProtocol,
    announce_input,
    FormalProtocol,
    FunctionalParty,
    FunctionalProtocol,
    Party,
    Protocol,
    RoundRecord,
    Silence,
    Transcript,
    run_protocol,
)
from repro.core.formal import NoiseModel, formalize_protocol
from repro.coding import (
    BlockCode,
    GreedyRandomCode,
    HadamardCode,
    MLDecoder,
    MinDistanceDecoder,
    RepetitionCode,
)
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    OneSidedReductionProtocol,
    OwnersProtocol,
    RepetitionSimulator,
    RewindSimulator,
    SimulationParameters,
    SimulationReport,
    Simulator,
    repetitions_for,
)
from repro.tasks import (
    BitExchangeTask,
    InputSetTask,
    MaxIdTask,
    OrTask,
    ParityTask,
    PointerChasingTask,
    SizeEstimateTask,
    Task,
)
from repro.parallel import (
    ChannelSpec,
    ProcessPoolRunner,
    ProtocolExecutor,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
    TrialRunner,
    get_default_runner,
    make_runner,
    set_default_runner,
    use_runner,
)
from repro.analysis.sweep import (
    SweepPoint,
    SweepSpec,
    estimate_success,
    overhead_curve,
    run_sweep,
    run_sweep_point,
    success_curve,
)
from repro.observe import (
    JsonlSink,
    MetricsCollector,
    NO_OBSERVER,
    NullObserver,
    Observer,
    Sink,
    SummarySink,
    read_jsonl,
)
from repro.service import (
    ResultStore,
    ShardSpec,
    SweepGrid,
    merge_sweep,
    plan_shards,
    run_sweep_resumable,
    sweep_status,
    validate_shards,
)
from repro.lowerbound import LowerBoundAnalyzer
from repro.errors import (
    ChannelError,
    CodingError,
    ConfigurationError,
    DecodingError,
    ProtocolDesyncError,
    ProtocolError,
    ReproError,
    SimulationBudgetExceeded,
    SimulationError,
    TaskError,
    TranscriptError,
)

__version__ = "1.0.0"

__all__ = [
    # channels
    "Channel",
    "ChannelStats",
    "RoundOutcome",
    "NoiselessChannel",
    "CorrelatedNoiseChannel",
    "OneSidedNoiseChannel",
    "SuppressionNoiseChannel",
    "IndependentNoiseChannel",
    "CorrectingAdversaryChannel",
    "BudgetedAdversaryChannel",
    "SharedFlipReductionChannel",
    "BurstNoiseChannel",
    "ScriptedChannel",
    # core
    "Party",
    "Burst",
    "Silence",
    "FunctionalParty",
    "Protocol",
    "FunctionalProtocol",
    "FormalProtocol",
    "formalize_protocol",
    "NoiseModel",
    "RoundRecord",
    "Transcript",
    "ExecutionResult",
    "run_protocol",
    "SequentialProtocol",
    "TruncatedProtocol",
    "announce_input",
    # coding
    "BlockCode",
    "RepetitionCode",
    "HadamardCode",
    "GreedyRandomCode",
    "MLDecoder",
    "MinDistanceDecoder",
    # simulation
    "Simulator",
    "SimulationParameters",
    "SimulationReport",
    "RepetitionSimulator",
    "ChunkCommitSimulator",
    "HierarchicalSimulator",
    "RewindSimulator",
    "OwnersProtocol",
    "OneSidedReductionProtocol",
    "repetitions_for",
    # tasks
    "Task",
    "InputSetTask",
    "OrTask",
    "ParityTask",
    "BitExchangeTask",
    "MaxIdTask",
    "SizeEstimateTask",
    "PointerChasingTask",
    # parallel trial running
    "TrialRunner",
    "SerialRunner",
    "ProcessPoolRunner",
    "make_runner",
    "get_default_runner",
    "set_default_runner",
    "use_runner",
    "ChannelSpec",
    "SimulatorSpec",
    "ProtocolExecutor",
    "SimulationExecutor",
    # sweeps
    "SweepSpec",
    "SweepPoint",
    "run_sweep_point",
    "run_sweep",
    "estimate_success",
    "success_curve",
    "overhead_curve",
    # observability
    "Observer",
    "NullObserver",
    "NO_OBSERVER",
    "Sink",
    "MetricsCollector",
    "JsonlSink",
    "SummarySink",
    "read_jsonl",
    # sweep service (resumable, cached, sharded)
    "ResultStore",
    "SweepGrid",
    "run_sweep_resumable",
    "sweep_status",
    "ShardSpec",
    "plan_shards",
    "validate_shards",
    "merge_sweep",
    # experiments / reporting (lazy — see __getattr__)
    "run_experiment",
    "ExperimentResult",
    "REGISTRY",
    "generate_report",
    # lower bound
    "LowerBoundAnalyzer",
    # errors
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "ProtocolDesyncError",
    "TranscriptError",
    "ChannelError",
    "CodingError",
    "DecodingError",
    "SimulationError",
    "SimulationBudgetExceeded",
    "TaskError",
]


# The experiment registry imports all 13 experiment modules; the report
# generator pulls in the registry.  Resolve these names lazily (PEP 562)
# so ``import repro`` stays light for library users.
_LAZY_EXPORTS = {
    "run_experiment": ("repro.experiments", "run_experiment"),
    "ExperimentResult": ("repro.experiments", "ExperimentResult"),
    "REGISTRY": ("repro.experiments", "REGISTRY"),
    "generate_report": ("repro.analysis.reporting", "generate_report"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: resolve once per process
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
