"""The trial-batched vectorized backend.

:class:`VectorizedRunner` is the third :class:`~repro.parallel.runner.
TrialRunner` backend, next to ``SerialRunner`` and ``ProcessPoolRunner``.
It targets the scalar engine's worst cases — the chunk-commit scheme's
``n²`` inner-party replays and the rewind scheme's strictly sequential
alarm rounds — by running each trial through the party-collapsed
simulations of :mod:`repro.vectorized.schemes`, with the whole batch's
shared-noise draws prefetched as rows of one packed numpy bit-matrix
(:class:`~repro.vectorized.noise.BatchFlips`) and ML decoding vectorized
over the codebook (:class:`~repro.vectorized.decoder.VectorizedMLDecoder`,
shared — memo included — across the batch).

The determinism contract of :mod:`repro.parallel.runner` is preserved
*bitwise*: inputs come from ``spawn(seed, f"inputs[{index}]")``, channels
from ``executor.channel.make(derive_seed(seed, f"trial[{index}]"))`` —
the exact calls :func:`~repro.parallel.runner.run_trial` makes — and the
collapsed schemes replay the scalar RNG draw order flip for flip.  Any
trial a vectorized sweep records can therefore be replayed on the scalar
engine from its ``(seed, index)`` alone, which is what the cross-backend
equivalence suite does.

Graph-topology batches route to the trial-batched CSR kernel of
:mod:`repro.vectorized.network` instead: the network protocol families
(neighbor-OR, broadcast, MIS) raw or under the local-broadcast
repetition wrapper, over a single-noise-kind ``NetworkBeepingChannel``.
Batches neither model collapses (simulators outside both registries,
channel families outside the correlated shared-bit or network models,
per-node epsilon vectors) run through the scalar :func:`run_trial` loop —
same records, with ``timing["fallback"]`` set and the reason in
``last_fallback_reason``, mirroring the process-pool backend's downgrade
protocol.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.parallel.executors import SimulationExecutor
from repro.parallel.runner import (
    Executor,
    TrialBatch,
    TrialRecord,
    TrialRunner,
    _emit_batch_events,
    _run_chunk,
    _serial_records,
    _timing,
    _validate_trials,
)
from repro.rng import derive_seed, spawn
from repro.simulation.chunked import ChunkCommitSimulator
from repro.simulation.hierarchical import HierarchicalSimulator
from repro.simulation.repetition_sim import RepetitionSimulator
from repro.simulation.rewind import RewindSimulator
from repro.tasks.base import Task
from repro.vectorized.network import (
    NetworkRoute,
    classify_network,
    network_records,
)
from repro.vectorized.noise import BatchFlips, require_numpy
from repro.vectorized.schemes import (
    CHANNEL_KINDS,
    simulate_chunked,
    simulate_rewind,
)
from repro.vectorized.schemes_hierarchical import simulate_hierarchical
from repro.vectorized.schemes_repetition import simulate_repetition

__all__ = ["VectorizedRunner"]

#: Simulator types with a party-collapsed form.  Exact types: a subclass
#: may override scheme steps the collapsed forms hard-code.
_COLLAPSED_SCHEMES = {
    ChunkCommitSimulator: simulate_chunked,
    RewindSimulator: simulate_rewind,
    RepetitionSimulator: simulate_repetition,
    HierarchicalSimulator: simulate_hierarchical,
}


class VectorizedRunner(TrialRunner):
    """In-process backend running batches through collapsed simulations.

    Args:
        prefetch: Shared-noise flip indicators prefetched per trial into
            the batch bit-matrix; draws beyond it continue seamlessly
            from each trial's transferred generator state.  Purely an
            amortization knob — results are identical for any value.

    Requires numpy (raises :class:`~repro.errors.ConfigurationError` at
    construction when missing, so callers can gate on it cleanly).
    """

    def __init__(self, prefetch: int = 4096) -> None:
        require_numpy()
        self.prefetch = prefetch
        #: Why the last batch fell back to the scalar loop (``None`` when
        #: it ran vectorized), mirroring ``ProcessPoolRunner``.
        self.last_fallback_reason: str | None = None
        # (chunk_length, rate_constant, code_seed, up, down) ->
        # (code, VectorizedMLDecoder); shared across batches so the
        # decode memo warms once per parameter point, not once per trial.
        self._codebooks: dict[tuple, tuple] = {}

    @property
    def workers(self) -> int:
        return 1

    def _classify(self, executor: Executor, seed: int):
        """The collapsed scheme for this batch, or a fallback reason.

        Routes come in two shapes: a ``(simulator, collapsed)`` pair for
        the single-hop party-collapsed schemes, or a
        :class:`~repro.vectorized.network.NetworkRoute` for the batched
        graph kernel.  Both are tried; a batch falls back to the scalar
        loop only when neither applies, with the reasons joined.
        """
        route, reason = self._classify_single_hop(executor, seed)
        if route is not None:
            return route, None
        net_route, net_reason = classify_network(executor, seed)
        if net_route is not None:
            return net_route, None
        return None, f"{reason}; {net_reason}"

    def _classify_single_hop(self, executor: Executor, seed: int):
        if not isinstance(executor, SimulationExecutor):
            return None, "executor is not a SimulationExecutor"
        simulator = executor.simulator.make()
        collapsed = _COLLAPSED_SCHEMES.get(type(simulator))
        if collapsed is None:
            return None, (
                f"no collapsed form for {type(simulator).__name__}"
            )
        probe = executor.channel.make(derive_seed(seed, "trial[0]"))
        if type(probe) not in CHANNEL_KINDS:
            return None, (
                f"no collapsed replay for {type(probe).__name__}"
            )
        return (simulator, collapsed), None

    def _serial_fallback(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        seed: int,
        reason: str,
        observe: "Observer | None",
    ) -> TrialBatch:
        self.last_fallback_reason = reason
        tracing = observe is not None and observe.enabled
        records, elapsed, times = _serial_records(
            task, executor, trials, seed, collect_times=tracing
        )
        batch = TrialBatch(
            records=records,
            timing=_timing(
                elapsed=elapsed,
                trials=trials,
                workers=1,
                chunks=1,
                busy=elapsed,
                parallel=False,
                fallback=True,
            ),
        )
        if tracing:
            _emit_batch_events(observe, batch, trial_times=times)
        return batch

    def _route_records(
        self,
        route: Any,
        task: Task,
        executor: Executor,
        seed: int,
        indices: list[int],
        collect_times: bool = False,
    ) -> tuple[list[TrialRecord], list[float] | None]:
        """Dispatch a classified route to its batched implementation."""
        if isinstance(route, NetworkRoute):
            return network_records(
                route,
                task,
                executor,
                seed,
                indices,
                prefetch=self.prefetch,
                collect_times=collect_times,
            )
        return self._collapsed_records(
            route, task, executor, seed, indices, collect_times
        )

    def _collapsed_records(
        self,
        route: tuple,
        task: Task,
        executor: Executor,
        seed: int,
        indices: list[int],
        collect_times: bool = False,
    ) -> tuple[list[TrialRecord], list[float] | None]:
        """Run the given global trial indices through a collapsed scheme.

        The per-trial seed labels use the *global* index, so a stripe of
        a larger batch produces exactly the records a whole-batch run
        would for those indices — the composed process backend's
        correctness hinges on this.
        """
        simulator, collapsed = route
        # The exact per-trial channel constructions run_trial's executor
        # would make, batched up front so their noise streams can be
        # prefetched as one packed trial x draw bit-matrix.
        channels = [
            executor.channel.make(derive_seed(seed, f"trial[{index}]"))
            for index in indices
        ]
        epsilon = getattr(channels[0], "epsilon", 0.0)
        flip_rows: BatchFlips | None = None
        if epsilon > 0.0:
            flip_rows = BatchFlips(
                [channel._rng for channel in channels],
                epsilon,
                columns=self.prefetch,
            )

        records: list[TrialRecord] = []
        times: list[float] | None = [] if collect_times else None
        last = time.perf_counter()
        for row, index in enumerate(indices):
            inputs = task.sample_inputs(spawn(seed, f"inputs[{index}]"))
            outcome = collapsed(
                simulator,
                task.noiseless_protocol(),
                inputs,
                channels[row],
                flips=(
                    flip_rows.stream(row)
                    if flip_rows is not None
                    else None
                ),
                codebook_cache=self._codebooks,
            )
            report = outcome.report
            stats = outcome.channel_stats
            records.append(
                TrialRecord(
                    index=index,
                    success=bool(task.is_correct(inputs, outcome.outputs)),
                    rounds=float(outcome.rounds),
                    chunk_attempts=float(report.chunk_attempts),
                    completed=bool(report.completed),
                    channel_rounds=stats.rounds,
                    beeps_sent=stats.beeps_sent,
                    or_ones=stats.or_ones,
                    flips_up=stats.flips_up,
                    flips_down=stats.flips_down,
                    total_energy=outcome.total_energy,
                )
            )
            if times is not None:
                now = time.perf_counter()
                times.append(now - last)
                last = now
        return records, times

    def run_indices(
        self,
        task: Task,
        executor: Executor,
        seed: int,
        indices: list[int],
    ) -> tuple[list[TrialRecord], float]:
        """Run an arbitrary list of global trial indices — the composed
        process backend's stripe unit.

        Returns ``(records, busy_seconds)``.  Batches that cannot
        collapse run the scalar :func:`run_trial` loop over the same
        indices (``last_fallback_reason`` records why), so a stripe is
        always bitwise-identical to the corresponding slice of any other
        backend's batch.
        """
        start = time.perf_counter()
        route, reason = self._classify(executor, seed)
        if route is None:
            self.last_fallback_reason = reason
            return _run_chunk(task, executor, seed, list(indices))
        self.last_fallback_reason = None
        records, _ = self._route_records(
            route, task, executor, seed, list(indices)
        )
        return records, time.perf_counter() - start

    def run_trials(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        *,
        seed: int = 0,
        observe: "Observer | None" = None,
    ) -> TrialBatch:
        _validate_trials(trials)
        route, reason = self._classify(executor, seed)
        if route is None:
            return self._serial_fallback(
                task, executor, trials, seed, reason, observe
            )
        self.last_fallback_reason = None
        tracing = observe is not None and observe.enabled

        start = time.perf_counter()
        records, times = self._route_records(
            route,
            task,
            executor,
            seed,
            list(range(trials)),
            collect_times=tracing,
        )
        elapsed = time.perf_counter() - start
        batch = TrialBatch(
            records=records,
            timing=_timing(
                elapsed=elapsed,
                trials=trials,
                workers=1,
                chunks=1,
                busy=elapsed,
                parallel=False,
                fallback=False,
            ),
        )
        if tracing:
            _emit_batch_events(observe, batch, trial_times=times)
        return batch
