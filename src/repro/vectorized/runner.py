"""The trial-batched vectorized backend.

:class:`VectorizedRunner` is the third :class:`~repro.parallel.runner.
TrialRunner` backend, next to ``SerialRunner`` and ``ProcessPoolRunner``.
It targets the scalar engine's worst cases — the chunk-commit scheme's
``n²`` inner-party replays and the rewind scheme's strictly sequential
alarm rounds — by running each trial through the party-collapsed
simulations of :mod:`repro.vectorized.schemes`, with the whole batch's
shared-noise draws prefetched as rows of one packed numpy bit-matrix
(:class:`~repro.vectorized.noise.BatchFlips`) and ML decoding vectorized
over the codebook (:class:`~repro.vectorized.decoder.VectorizedMLDecoder`,
shared — memo included — across the batch).

The determinism contract of :mod:`repro.parallel.runner` is preserved
*bitwise*: inputs come from ``spawn(seed, f"inputs[{index}]")``, channels
from ``executor.channel.make(derive_seed(seed, f"trial[{index}]"))`` —
the exact calls :func:`~repro.parallel.runner.run_trial` makes — and the
collapsed schemes replay the scalar RNG draw order flip for flip.  Any
trial a vectorized sweep records can therefore be replayed on the scalar
engine from its ``(seed, index)`` alone, which is what the cross-backend
equivalence suite does.

Batches the backend cannot collapse (non-simulation executors, simulators
other than chunk-commit/rewind, channel families outside the correlated
shared-bit model) run through the scalar :func:`run_trial` loop instead —
same records, with ``timing["fallback"]`` set and the reason in
``last_fallback_reason``, mirroring the process-pool backend's downgrade
protocol.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.parallel.executors import SimulationExecutor
from repro.parallel.runner import (
    Executor,
    TrialBatch,
    TrialRecord,
    TrialRunner,
    _emit_batch_events,
    _serial_records,
    _timing,
    _validate_trials,
)
from repro.rng import derive_seed, spawn
from repro.simulation.chunked import ChunkCommitSimulator
from repro.simulation.rewind import RewindSimulator
from repro.tasks.base import Task
from repro.vectorized.noise import BatchFlips, require_numpy
from repro.vectorized.schemes import (
    CHANNEL_KINDS,
    simulate_chunked,
    simulate_rewind,
)

__all__ = ["VectorizedRunner"]

#: Simulator types with a party-collapsed form.  Exact types: a subclass
#: may override scheme steps the collapsed forms hard-code.
_COLLAPSED_SCHEMES = {
    ChunkCommitSimulator: simulate_chunked,
    RewindSimulator: simulate_rewind,
}


class VectorizedRunner(TrialRunner):
    """In-process backend running batches through collapsed simulations.

    Args:
        prefetch: Shared-noise flip indicators prefetched per trial into
            the batch bit-matrix; draws beyond it continue seamlessly
            from each trial's transferred generator state.  Purely an
            amortization knob — results are identical for any value.

    Requires numpy (raises :class:`~repro.errors.ConfigurationError` at
    construction when missing, so callers can gate on it cleanly).
    """

    def __init__(self, prefetch: int = 4096) -> None:
        require_numpy()
        self.prefetch = prefetch
        #: Why the last batch fell back to the scalar loop (``None`` when
        #: it ran vectorized), mirroring ``ProcessPoolRunner``.
        self.last_fallback_reason: str | None = None
        # (chunk_length, rate_constant, code_seed, up, down) ->
        # (code, VectorizedMLDecoder); shared across batches so the
        # decode memo warms once per parameter point, not once per trial.
        self._codebooks: dict[tuple, tuple] = {}

    @property
    def workers(self) -> int:
        return 1

    def _classify(self, executor: Executor, seed: int):
        """The collapsed scheme for this batch, or a fallback reason."""
        if not isinstance(executor, SimulationExecutor):
            return None, "executor is not a SimulationExecutor"
        simulator = executor.simulator.make()
        collapsed = _COLLAPSED_SCHEMES.get(type(simulator))
        if collapsed is None:
            return None, (
                f"no collapsed form for {type(simulator).__name__}"
            )
        probe = executor.channel.make(derive_seed(seed, "trial[0]"))
        if type(probe) not in CHANNEL_KINDS:
            return None, (
                f"no collapsed replay for {type(probe).__name__}"
            )
        return (simulator, collapsed), None

    def _serial_fallback(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        seed: int,
        reason: str,
        observe: "Observer | None",
    ) -> TrialBatch:
        self.last_fallback_reason = reason
        tracing = observe is not None and observe.enabled
        records, elapsed, times = _serial_records(
            task, executor, trials, seed, collect_times=tracing
        )
        batch = TrialBatch(
            records=records,
            timing=_timing(
                elapsed=elapsed,
                trials=trials,
                workers=1,
                chunks=1,
                busy=elapsed,
                parallel=False,
                fallback=True,
            ),
        )
        if tracing:
            _emit_batch_events(observe, batch, trial_times=times)
        return batch

    def run_trials(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        *,
        seed: int = 0,
        observe: "Observer | None" = None,
    ) -> TrialBatch:
        _validate_trials(trials)
        route, reason = self._classify(executor, seed)
        if route is None:
            return self._serial_fallback(
                task, executor, trials, seed, reason, observe
            )
        simulator, collapsed = route
        self.last_fallback_reason = None
        tracing = observe is not None and observe.enabled

        start = time.perf_counter()
        # The exact per-trial channel constructions run_trial's executor
        # would make, batched up front so their noise streams can be
        # prefetched as one packed trial x draw bit-matrix.
        channels = [
            executor.channel.make(derive_seed(seed, f"trial[{index}]"))
            for index in range(trials)
        ]
        epsilon = getattr(channels[0], "epsilon", 0.0)
        flip_rows: BatchFlips | None = None
        if epsilon > 0.0:
            flip_rows = BatchFlips(
                [channel._rng for channel in channels],
                epsilon,
                columns=self.prefetch,
            )

        records: list[TrialRecord] = []
        times: list[float] | None = [] if tracing else None
        last = start
        for index in range(trials):
            inputs = task.sample_inputs(spawn(seed, f"inputs[{index}]"))
            outcome = collapsed(
                simulator,
                task.noiseless_protocol(),
                inputs,
                channels[index],
                flips=(
                    flip_rows.stream(index)
                    if flip_rows is not None
                    else None
                ),
                codebook_cache=self._codebooks,
            )
            report = outcome.report
            stats = outcome.channel_stats
            records.append(
                TrialRecord(
                    index=index,
                    success=bool(task.is_correct(inputs, outcome.outputs)),
                    rounds=float(outcome.rounds),
                    chunk_attempts=float(report.chunk_attempts),
                    completed=bool(report.completed),
                    channel_rounds=stats.rounds,
                    beeps_sent=stats.beeps_sent,
                    or_ones=stats.or_ones,
                    flips_up=stats.flips_up,
                    flips_down=stats.flips_down,
                    total_energy=outcome.total_energy,
                )
            )
            if times is not None:
                now = time.perf_counter()
                times.append(now - last)
                last = now
        elapsed = time.perf_counter() - start
        batch = TrialBatch(
            records=records,
            timing=_timing(
                elapsed=elapsed,
                trials=trials,
                workers=1,
                chunks=1,
                busy=elapsed,
                parallel=False,
                fallback=False,
            ),
        )
        if tracing:
            _emit_batch_events(observe, batch, trial_times=times)
        return batch
