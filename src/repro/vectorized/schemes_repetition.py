"""Party-collapsed form of the repetition simulator (footnote 1).

The scalar :class:`~repro.simulation.repetition_sim.RepetitionSimulator`
wraps each inner party in a coroutine that beeps every inner bit
``repetitions`` times and majority-decodes the channel's answers, then
drives the wrapped protocol through the full engine.  On the shared-bit
channels (every party hears the same bit — the families in
:data:`~repro.vectorized.schemes.CHANNEL_KINDS`) all parties decode the
same majority, so the per-party work is redundant: one live inner-party
set plus one windowed draw per virtual round reproduces the execution
bitwise — same RNG draw order, rounds, channel statistics, per-party
energy and outputs, including the engine's
:class:`~repro.errors.ProtocolDesyncError` when parties disagree on when
to stop.

Over non-shared channels (independent noise, adversaries) each party
majority-votes its *own* receptions, which no collapse can replicate —
those batches take the runner's scalar fallback, exactly as before.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.channels.base import Channel
from repro.core.protocol import Protocol
from repro.errors import ProtocolDesyncError
from repro.simulation.base import SimulationReport
from repro.simulation.repetition_sim import RepetitionSimulator
from repro.vectorized.noise import FlipStream, require_numpy
from repro.vectorized.schemes import (
    CollapsedOutcome,
    _InnerPrograms,
    _shared_channel,
)

__all__ = ["simulate_repetition"]


def simulate_repetition(
    simulator: RepetitionSimulator,
    protocol: Protocol,
    inputs: Sequence[Any],
    channel: Channel,
    *,
    shared_seed: int | None = None,
    flips: FlipStream | None = None,
    codebook_cache: dict | None = None,
) -> CollapsedOutcome:
    """The repetition scheme, party-collapsed; bitwise equal to
    ``simulator.simulate(protocol, inputs, channel)`` on the supported
    channels (minus the transcript).

    ``flips`` optionally injects a pre-built noise stream (the runner's
    batched prefetch).  ``codebook_cache`` is accepted for call symmetry;
    the repetition scheme has no codebook.
    """
    require_numpy()
    del codebook_cache
    inner_length = simulator._require_fixed_length(protocol)
    noise = simulator._resolve_noise_model(channel)
    # Repetition must beat the worse of the two flip directions.
    epsilon = max(noise.up, noise.down)
    n_parties = protocol.n_parties
    repetitions = simulator.params.resolve_repetitions(n_parties, epsilon)

    shared = _shared_channel(channel, flips)
    programs = _InnerPrograms(protocol, inputs, shared_seed, strict=False)
    energy = [0] * n_parties

    while True:
        bits = programs.bits
        finished_count = sum(1 for bit in bits if bit is None)
        if finished_count == n_parties:
            break
        if finished_count:
            laggards = [
                index for index, bit in enumerate(bits) if bit is not None
            ]
            raise ProtocolDesyncError(
                f"parties {laggards} still communicating after others "
                f"finished at round {shared.stats.rounds}"
            )
        beeps = 0
        for index, bit in enumerate(bits):
            beeps += bit
            energy[index] += bit * repetitions
        or_value = 1 if beeps else 0
        ones = shared.window(or_value, beeps, repetitions)
        decoded = 1 if 2 * ones > repetitions else 0
        programs.advance(decoded)

    report = SimulationReport(
        scheme=type(simulator).__name__,
        inner_length=inner_length,
        simulated_rounds=shared.stats.rounds,
        completed=True,
        extra={"repetitions": repetitions},
    )
    return CollapsedOutcome(
        outputs=programs.outputs(),
        rounds=shared.stats.rounds,
        channel_stats=shared.stats,
        beeps_per_party=tuple(energy),
        report=report,
    )
