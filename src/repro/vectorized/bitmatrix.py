"""Packed trial×round bit-matrices and byte-per-position mask helpers.

Two packings coexist in this repository and this module converts between
them and plain 0/1 arrays:

* **bit-per-position** (``numpy.packbits`` rows) — the storage layout of
  the vectorized backend's batched noise prefetch
  (:class:`~repro.vectorized.noise.BatchFlips`): each row is one trial's
  draw stream, eight draws per byte.
* **byte-per-position** — the hot-path mask layout introduced by the
  scalar ML decoder (``repro.coding.ml._word_to_int`` packs a word with
  ``bytes(word)``, one byte per position, big-endian).  A uint8 array's
  ``tobytes()`` is exactly that packing, so vectorized received words and
  scalar integer masks address the same memo space;
  :func:`mask_int` / :func:`bits_from_mask` are the bridge, pinned
  against the scalar decoder by the property suite.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.vectorized.noise import require_numpy

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "pack_rows",
    "unpack_rows",
    "mask_int",
    "bits_from_mask",
    "popcount_rows",
]


def pack_rows(bits: "_np.ndarray") -> "_np.ndarray":
    """Pack a (rows, columns) 0/1 uint8 matrix bitwise along each row.

    Row ``i`` of the result is ``numpy.packbits(bits[i])``: eight columns
    per byte, most-significant bit first, zero-padded to a whole byte.
    """
    require_numpy()
    if bits.ndim != 2:
        raise ConfigurationError(
            f"pack_rows expects a 2-D matrix, got shape {bits.shape}"
        )
    return _np.packbits(bits, axis=1)


def unpack_rows(packed: "_np.ndarray", columns: int) -> "_np.ndarray":
    """Invert :func:`pack_rows`, trimming the zero padding to ``columns``."""
    require_numpy()
    if packed.ndim != 2:
        raise ConfigurationError(
            f"unpack_rows expects a 2-D matrix, got shape {packed.shape}"
        )
    if columns > packed.shape[1] * 8:
        raise ConfigurationError(
            f"cannot unpack {columns} columns from {packed.shape[1]} bytes"
        )
    return _np.unpackbits(packed, axis=1)[:, :columns]


def mask_int(bits: "_np.ndarray") -> int:
    """The scalar decoder's integer mask for a 0/1 word.

    Equals ``repro.coding.ml._word_to_int(bits)``: one byte per position,
    big-endian — a uint8 array's ``tobytes()`` is already that layout.
    """
    return int.from_bytes(bits.tobytes(), "big")


def bits_from_mask(mask: int, length: int) -> "_np.ndarray":
    """Invert :func:`mask_int` for a word of ``length`` positions."""
    require_numpy()
    return _np.frombuffer(
        mask.to_bytes(length, "big"), dtype=_np.uint8
    ).copy()


def popcount_rows(packed: "_np.ndarray") -> "_np.ndarray":
    """Per-row popcounts of a :func:`pack_rows` matrix (padding is zero)."""
    require_numpy()
    return _np.bitwise_count(packed).sum(axis=1)
