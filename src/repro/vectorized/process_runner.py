"""The composed ``vectorized-process`` backend: stripes × collapse.

:class:`VectorizedProcessRunner` multiplies the two fastest backends: it
cuts a batch into contiguous trial stripes (the balanced
:func:`~repro.service.shards.plan_shards` rule) and dispatches each to a
pool worker that runs it through an in-process
:class:`~repro.vectorized.runner.VectorizedRunner` — so every core runs
party-collapsed simulations, with its own warmed codebook/decoder memo.

Determinism is inherited, not re-argued: a stripe worker derives every
per-trial seed from the *global* trial index
(``derive_seed(seed, f"trial[{index}]")`` — see
:meth:`VectorizedRunner.run_indices`), so stripe boundaries and worker
counts cannot change a single record, and the merged batch is bitwise
identical to the serial, process and single-core vectorized backends.

The downgrade protocol mirrors :class:`~repro.parallel.runner.
ProcessPoolRunner`: ``workers == 1``, an unpicklable task/executor, a
pool that cannot start, or a pool that breaks mid-batch all fall back to
the in-process vectorized runner — same records, ``timing["fallback"]``
flags pool-level downgrades, and ``last_fallback_reason`` records why
the batch did not run as intended (including, when the pool is fine but
the batch cannot collapse, the collapse reason reported by the stripe
workers).
"""

from __future__ import annotations

import math
import os
import pickle
import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.errors import ConfigurationError
from repro.parallel.runner import (
    Executor,
    TrialBatch,
    TrialRecord,
    TrialRunner,
    _emit_batch_events,
    _timing,
    _validate_trials,
)
from repro.tasks.base import Task
from repro.vectorized.noise import require_numpy
from repro.vectorized.runner import VectorizedRunner

__all__ = ["VectorizedProcessRunner"]

#: Per-process cached runner, so the codebook/decoder memo warms once per
#: worker (pool processes are reused across batches and grid points).
_WORKER_RUNNER: VectorizedRunner | None = None


def _stripe_worker(
    task: Task,
    executor: Executor,
    seed: int,
    indices: list[int],
    prefetch: int,
) -> tuple[list[TrialRecord], float, str | None]:
    """Worker entry point: one contiguous stripe of global trial indices.

    Module-level so the pool can pickle it by reference.  Returns the
    stripe's records, the worker's busy time, and the in-worker fallback
    reason (``None`` when the stripe ran collapsed).
    """
    global _WORKER_RUNNER
    if _WORKER_RUNNER is None or _WORKER_RUNNER.prefetch != prefetch:
        _WORKER_RUNNER = VectorizedRunner(prefetch=prefetch)
    records, busy = _WORKER_RUNNER.run_indices(task, executor, seed, indices)
    return records, busy, _WORKER_RUNNER.last_fallback_reason


class VectorizedProcessRunner(TrialRunner):
    """Contiguous vectorized stripes over a reusable process pool.

    Args:
        workers: Pool size; ``None`` means ``os.cpu_count()``.
        chunk_size: Trials per stripe; ``None`` cuts one balanced stripe
            per worker (``ceil(trials / workers)``) — stripes are large
            on purpose, so each worker's batched noise prefetch and
            codebook memo amortize over many trials.
        prefetch: Forwarded to each worker's
            :class:`~repro.vectorized.runner.VectorizedRunner`.
        mp_context: Optional :mod:`multiprocessing` context; ``None``
            uses the platform default.

    Requires numpy (raises :class:`~repro.errors.ConfigurationError` at
    construction when missing, so callers can gate on it cleanly).
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        prefetch: int = 4096,
        mp_context: Any = None,
    ) -> None:
        require_numpy()
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._workers = workers
        self.chunk_size = chunk_size
        self.prefetch = prefetch
        self._mp_context = mp_context
        self._pool = None
        self._pool_failed = False
        self.last_fallback_reason: str | None = None
        # In-process runner for the workers == 1 and recovery paths;
        # keeps its codebook memo across batches like a pool worker.
        self._local = VectorizedRunner(prefetch=prefetch)

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self):
        if self._pool is None and not self._pool_failed:
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                context = (
                    self._mp_context
                    if self._mp_context is not None
                    else multiprocessing.get_context()
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers, mp_context=context
                )
            except (ImportError, OSError, ValueError):
                # No multiprocessing support here (restricted sandbox,
                # missing /dev/shm, ...): permanently degrade.
                self._pool_failed = True
        return self._pool

    def _stripe_indices(self, trials: int) -> list[list[int]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(trials / self._workers))
        return [
            list(range(low, min(low + size, trials)))
            for low in range(0, trials, size)
        ]

    def _inprocess_fallback(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        seed: int,
        reason: str | None,
        observe: "Observer | None",
    ) -> TrialBatch:
        """Run the whole batch through the in-process vectorized runner.

        ``reason`` is the pool-level downgrade cause (``None`` for the
        designed ``workers == 1`` path); the surfaced
        ``last_fallback_reason`` prefers it over any in-runner collapse
        fallback, and ``timing["fallback"]`` flags only pool-level
        downgrades — ``workers == 1`` is a configuration, not a failure.
        """
        tracing = observe is not None and observe.enabled
        batch = self._local.run_trials(task, executor, trials, seed=seed)
        self.last_fallback_reason = (
            reason
            if reason is not None
            else self._local.last_fallback_reason
        )
        if reason is not None:
            batch.timing["fallback"] = 1.0
        if tracing:
            _emit_batch_events(observe, batch)
        return batch

    def run_trials(
        self,
        task: Task,
        executor: Executor,
        trials: int,
        *,
        seed: int = 0,
        observe: "Observer | None" = None,
    ) -> TrialBatch:
        _validate_trials(trials)
        if self._workers == 1:
            return self._inprocess_fallback(
                task, executor, trials, seed, None, observe
            )
        try:
            pickle.dumps((task, executor))
        except Exception:
            return self._inprocess_fallback(
                task,
                executor,
                trials,
                seed,
                "unpicklable task/executor",
                observe,
            )
        pool = self._ensure_pool()
        if pool is None:
            return self._inprocess_fallback(
                task,
                executor,
                trials,
                seed,
                "process pool failed to start",
                observe,
            )
        stripes = self._stripe_indices(trials)
        start = time.perf_counter()
        try:
            futures = [
                pool.submit(
                    _stripe_worker,
                    task,
                    executor,
                    seed,
                    stripe,
                    self.prefetch,
                )
                for stripe in stripes
            ]
            outcomes = [future.result() for future in futures]
        except Exception:
            # A worker died (OOM, signal) or the pool broke: recover the
            # batch in-process so the sweep still completes correctly.
            self.close()
            self._pool_failed = True
            return self._inprocess_fallback(
                task,
                executor,
                trials,
                seed,
                "process pool broke mid-batch",
                observe,
            )
        elapsed = time.perf_counter() - start
        # The pool ran; surface any in-worker collapse fallback (every
        # stripe classifies identically, so the first reason is *the*
        # reason) without flagging timing["fallback"] — records are
        # bitwise-identical either way.
        self.last_fallback_reason = next(
            (
                reason
                for _, _, reason in outcomes
                if reason is not None
            ),
            None,
        )
        records = [
            record
            for stripe_records, _, _ in outcomes
            for record in stripe_records
        ]
        records.sort(key=lambda record: record.index)
        busy = sum(busy_time for _, busy_time, _ in outcomes)
        batch = TrialBatch(
            records=records,
            timing=_timing(
                elapsed=elapsed,
                trials=trials,
                workers=self._workers,
                chunks=len(stripes),
                busy=busy,
                parallel=True,
                fallback=False,
            ),
        )
        if observe is not None and observe.enabled:
            for stripe_no, (stripe, (_, busy_time, _)) in enumerate(
                zip(stripes, outcomes)
            ):
                observe.emit(
                    "worker_chunk",
                    chunk=stripe_no,
                    trials=len(stripe),
                    busy_s=busy_time,
                )
            _emit_batch_events(observe, batch)
        return batch

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
