"""Party-collapsed, trial-batchable forms of the simulation schemes.

The scalar engine runs a simulation scheme as ``n`` coroutine parties
exchanging one bit per round through a channel object.  Under correlated
noise every party of these schemes walks through *identical shared state*
(that is the point of the correlated model), so the per-party work is
``n``-fold redundant: each chunk attempt re-creates ``n²`` inner parties,
all ``n`` parties decode the same received word, and every phase's round
window is a function of a handful of shared quantities.  The collapsed
forms below compute each shared quantity once, drive a *single* set of
``n`` live inner-party coroutines, and replace per-round channel calls
with windowed draws from a :class:`~repro.vectorized.noise.FlipStream` —
while reproducing the scalar execution *bitwise*: same RNG draw order,
same decoded symbols (via the byte-packed
:class:`~repro.vectorized.decoder.VectorizedMLDecoder`), same rounds,
channel statistics, per-party energy, outputs and report fields.  The
cross-backend equivalence suite (``tests/unit/test_vectorized_equivalence``)
enforces this against the scalar engine trial by trial.

Determinism assumption: inner parties are deterministic functions of
``(inputs, received prefix)``.  The scalar schemes already rely on exactly
this (``InnerReplay`` re-creates parties on every attempt; rewind replays
after pops), so the collapsed forms add no new assumption.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.channels.base import Channel
from repro.channels.correlated import CorrelatedNoiseChannel
from repro.channels.noiseless import NoiselessChannel
from repro.channels.one_sided import (
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.channels.stats import ChannelStats
from repro.core.protocol import Protocol
from repro.errors import ConfigurationError, ProtocolError
from repro.simulation.base import SimulationReport, Simulator
from repro.simulation.chunked import ChunkCommitSimulator
from repro.simulation.owners import (
    NEXT,
    build_owners_code,
    position_symbol,
    symbol_position,
)
from repro.simulation.rewind import RewindSimulator
from repro.vectorized.decoder import VectorizedMLDecoder
from repro.vectorized.noise import FlipStream, require_numpy

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "CHANNEL_KINDS",
    "CollapsedOutcome",
    "simulate_chunked",
    "simulate_rewind",
]

# NOTE: the collapsed repetition and hierarchical forms live in
# repro.vectorized.schemes_repetition / schemes_hierarchical; they build
# on the shared machinery here (_SharedChannel, _InnerPrograms,
# _chunk_phase12, _chunk_flags, _shared_codebook).

#: Channel classes the collapsed schemes can replay bitwise, mapped to the
#: draw rule their noise follows (see ``_SharedChannel``).  Exact types:
#: a subclass may override delivery and must take the scalar path.
CHANNEL_KINDS: dict[type, str] = {
    NoiselessChannel: "noiseless",
    CorrelatedNoiseChannel: "correlated",
    OneSidedNoiseChannel: "one_sided",
    SuppressionNoiseChannel: "suppression",
}


@dataclass
class CollapsedOutcome:
    """What a collapsed simulation produces — the scalar result minus the
    transcript (which no sweep aggregates).

    Field-for-field comparable with the scalar
    :class:`~repro.core.result.ExecutionResult` of the same trial:
    ``rounds == result.rounds``, ``channel_stats == result.channel_stats``,
    ``beeps_per_party == result.beeps_per_party``, ``outputs ==
    result.outputs`` and ``report`` matches ``result.metadata["report"]``.
    """

    outputs: list[Any]
    rounds: int
    channel_stats: ChannelStats
    beeps_per_party: tuple[int, ...]
    report: SimulationReport

    @property
    def total_energy(self) -> int:
        return sum(self.beeps_per_party)


class _SharedChannel:
    """Windowed, stats-exact replay of a correlated channel's delivery.

    Reproduces, draw for draw, what the scalar channel would deliver for
    the three access shapes the collapsed schemes need: a constant-OR
    window (phase-1/verification votes), a codeword window (owners
    phase), and a single round (rewind).  Statistics accrue exactly as
    ``transmit_shared``/``transmit_shared_run`` record them.
    """

    __slots__ = ("kind", "flips", "stats")

    def __init__(self, kind: str, flips: FlipStream) -> None:
        self.kind = kind
        self.flips = flips
        self.stats = ChannelStats()

    def window(self, or_value: int, beeps: int, rounds: int) -> int:
        """Transmit ``rounds`` rounds of constant OR; return received ones."""
        stats = self.stats
        stats.rounds += rounds
        stats.beeps_sent += beeps * rounds
        stats.or_ones += or_value * rounds
        kind = self.kind
        if kind == "correlated":
            flipped = self.flips.count(rounds)
            if or_value:
                stats.flips_down += flipped
                return rounds - flipped
            stats.flips_up += flipped
            return flipped
        if kind == "one_sided":
            if or_value:
                return rounds
            flipped = self.flips.count(rounds)
            stats.flips_up += flipped
            return flipped
        if kind == "suppression":
            if not or_value:
                return 0
            flipped = self.flips.count(rounds)
            stats.flips_down += flipped
            return rounds - flipped
        return or_value * rounds  # noiseless

    def word(self, bits: "_np.ndarray", weight: int) -> "_np.ndarray":
        """Transmit a codeword round-by-round; return the received word.

        ``bits`` is the round-wise true OR (only the speaker beeps, so the
        OR *is* its codeword); ``weight`` is its popcount.
        """
        length = len(bits)
        stats = self.stats
        stats.rounds += length
        stats.beeps_sent += weight
        stats.or_ones += weight
        kind = self.kind
        if kind == "correlated":
            flipped = self.flips.take(length)
            down = int((flipped & bits).sum())
            stats.flips_down += down
            stats.flips_up += int(flipped.sum()) - down
            return bits ^ flipped
        if kind == "one_sided":
            received = bits.copy()
            silent = length - weight
            if silent:
                flipped = self.flips.take(silent)
                received[bits == 0] = flipped
                stats.flips_up += int(flipped.sum())
            return received
        if kind == "suppression":
            received = bits.copy()
            if weight:
                flipped = self.flips.take(weight)
                received[bits == 1] = 1 - flipped
                stats.flips_down += int(flipped.sum())
            return received
        return bits  # noiseless

    def round(self, or_value: int, beeps: int) -> int:
        """Transmit a single round; return the shared received bit."""
        stats = self.stats
        stats.rounds += 1
        stats.beeps_sent += beeps
        stats.or_ones += or_value
        kind = self.kind
        if kind == "correlated":
            flipped = self.flips.take1()
            if flipped:
                if or_value:
                    stats.flips_down += 1
                    return 0
                stats.flips_up += 1
                return 1
            return or_value
        if kind == "one_sided":
            if or_value:
                return 1
            flipped = self.flips.take1()
            stats.flips_up += flipped
            return flipped
        if kind == "suppression":
            if not or_value:
                return 0
            flipped = self.flips.take1()
            stats.flips_down += flipped
            return 0 if flipped else 1
        return or_value  # noiseless


class _InnerPrograms:
    """The ``n`` inner-party coroutines, advanced in lockstep.

    The scalar schemes give each of the ``n`` outer parties its own fresh
    copy of one inner party per attempt (``n²`` constructions); since all
    copies receive the same shared bits, one live set suffices.  ``strict``
    selects the chunk schemes' ``InnerReplay`` error contract (a party
    must yield exactly ``length()`` bits); the rewind scheme tolerates
    early termination (bits become ``None``).
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        shared_seed: int | None,
        strict: bool,
    ) -> None:
        self._protocol = protocol
        self._inputs = list(inputs)
        self._shared_seed = shared_seed
        self._strict = strict
        self.bits: list[int | None] = []
        self.position = 0
        self._programs: list[Any] = []
        self._finished: list[bool] = []
        self._outputs: list[Any] = []
        self.restart()

    def restart(self) -> None:
        """Fresh coroutines at position 0 (one ``create_parties`` call)."""
        parties = self._protocol.create_parties(
            self._inputs, shared_seed=self._shared_seed
        )
        self._programs = [party.run() for party in parties]
        count = len(self._programs)
        self.bits = [None] * count
        self._finished = [False] * count
        self._outputs = [None] * count
        self.position = 0
        for index, program in enumerate(self._programs):
            try:
                self.bits[index] = next(program)
            except StopIteration as stop:
                self._finished[index] = True
                self._outputs[index] = stop.value

    def rebuild(self, prefix: Sequence[int]) -> None:
        """Restart and replay a received prefix (the rewind/reject path)."""
        self.restart()
        for received in prefix:
            self.advance(received)

    def advance(self, received: int) -> None:
        """Deliver one shared received bit to every party."""
        strict = self._strict
        finished = self._finished
        bits = self.bits
        outputs = self._outputs
        for index, program in enumerate(self._programs):
            if finished[index]:
                if strict:
                    raise ProtocolError(
                        "inner party finished before its declared length"
                    )
                continue
            try:
                bits[index] = program.send(received)
            except StopIteration as stop:
                finished[index] = True
                outputs[index] = stop.value
                bits[index] = None
        self.position += 1

    def outputs(self) -> list[Any]:
        """Per-party outputs; strict mode requires every party finished."""
        if self._strict and not all(self._finished):
            raise ProtocolError(
                "inner protocol did not finish at its declared length"
            )
        return list(self._outputs)

    def outputs_over(self, prefix: Sequence[int]) -> list[Any]:
        """Outputs of a fresh replay over ``prefix`` (the padded path)."""
        self.rebuild(prefix)
        return self.outputs()


def _channel_kind(channel: Channel) -> str:
    kind = CHANNEL_KINDS.get(type(channel))
    if kind is None:
        raise ConfigurationError(
            f"collapsed simulation cannot replay {type(channel).__name__}; "
            "use the scalar engine"
        )
    return kind


def _shared_channel(
    channel: Channel, flips: FlipStream | None
) -> _SharedChannel:
    kind = _channel_kind(channel)
    if flips is None:
        flips = FlipStream(channel._rng, getattr(channel, "epsilon", 0.0))
    return _SharedChannel(kind, flips)


def _shared_codebook(params, chunk_length: int, noise, codebook_cache):
    """The owners codebook + vectorized decoder for one parameter point,
    via the batch-shared cache.

    Both chunk schemes — the iterative chunk-commit and the hierarchical
    ``A_l`` — construct the codebook with identical parameters, so a
    cache entry warmed by one is safely reused by the other.
    """
    cache_key = (
        chunk_length,
        params.code_rate_constant,
        params.code_seed,
        noise.up,
        noise.down,
    )
    cached = (
        codebook_cache.get(cache_key) if codebook_cache is not None else None
    )
    if cached is not None:
        return cached
    code = build_owners_code(
        chunk_length,
        rate_constant=params.code_rate_constant,
        seed=params.code_seed,
    )
    decoder = VectorizedMLDecoder(code, noise)
    if codebook_cache is not None:
        codebook_cache[cache_key] = (code, decoder)
    return code, decoder


def _chunk_phase12(
    programs: _InnerPrograms,
    shared: _SharedChannel,
    energy: "_np.ndarray",
    chunk_rounds: int,
    repetitions: int,
    n_parties: int,
    codebook,
    codeword_weights,
    decoder: VectorizedMLDecoder,
):
    """Phases 1+2 of Algorithm 1 over the live programs, collapsed.

    Phase 1 repetition-hardens ``chunk_rounds`` virtual rounds into the
    chunk transcript ``pi`` (advancing the programs as it goes); phase 2
    runs the finding-owners phase.  Returns ``(pi, beep_rows,
    beep_matrix, owners, claimed_by)`` and accrues per-party ``energy``
    in place — exactly the shared quantities both chunk schemes verify
    against.
    """
    # Phase 1: repetition-harden each virtual round into pi.  The
    # window's received ones collapse to one popcount of the flip
    # stream; the majority rule matches repeated_bit exactly.
    beep_rows: list[list[int]] = [[] for _ in range(n_parties)]
    pi: list[int] = []
    for _ in range(chunk_rounds):
        beeps = 0
        bits = programs.bits
        for index, bit in enumerate(bits):
            if bit is None:
                raise ProtocolError(
                    "inner protocol shorter than its declared length"
                )
            beep_rows[index].append(bit)
            beeps += bit
        or_value = 1 if beeps else 0
        ones = shared.window(or_value, beeps, repetitions)
        decoded = 1 if 2 * ones > repetitions else 0
        pi.append(decoded)
        programs.advance(decoded)
    beep_matrix = _np.array(beep_rows, dtype=_np.uint8)
    energy += beep_matrix.sum(axis=1, dtype=_np.int64) * repetitions

    # Phase 2: finding owners.  All shared bookkeeping (turn, claimed
    # set, owner table) is computed once instead of once per party;
    # only the speaker's claimed-by-me record is party-local.
    ones_positions = [j for j, bit in enumerate(pi) if bit == 1]
    iterations = len(ones_positions) + n_parties
    claimed: set[int] = set()
    owners: dict[int, int] = {}
    claimed_by: list[set[int]] = [set() for _ in range(n_parties)]
    turn = 0
    for _ in range(iterations):
        if 0 <= turn < n_parties:
            speaker = turn
            row = beep_rows[speaker]
            candidate = next(
                (
                    j
                    for j in ones_positions
                    if row[j] == 1 and j not in claimed
                ),
                None,
            )
            sent_symbol = (
                NEXT if candidate is None else position_symbol(candidate)
            )
            word = codebook[sent_symbol]
            weight = int(codeword_weights[sent_symbol])
            energy[speaker] += weight
        else:
            speaker = None
            sent_symbol = None
            word = codebook[0]  # SILENCE: the all-zero codeword
            weight = 0
        received = shared.word(word, weight)
        decoded_symbol = decoder.decode(received)
        if decoded_symbol == NEXT:
            turn += 1
        else:
            position = symbol_position(decoded_symbol)
            if position is not None and position < len(pi):
                claimed.add(position)
                if 0 <= turn < n_parties:
                    owners[position] = turn
                if speaker is not None and decoded_symbol == sent_symbol:
                    claimed_by[speaker].add(position)
    return pi, beep_rows, beep_matrix, owners, claimed_by


def _chunk_flags(
    pi: list[int],
    beep_matrix: "_np.ndarray",
    owners: dict[int, int],
    claimed_by: list[set[int]],
) -> "_np.ndarray":
    """Per-party error flags for one simulated chunk (vectorized
    :func:`~repro.simulation.chunk_common.chunk_error_flag`):

    * ``pi_p = 0`` but the party beeped 1 — its beep was suppressed;
    * ``pi_p = 1`` with no owner — shared state, every party flags;
    * a party owns a position it never successfully claimed.
    """
    pi_row = _np.array(pi, dtype=_np.uint8)
    flags = ((beep_matrix == 1) & (pi_row == 0)).any(axis=1)
    if any(
        value == 1 and position not in owners
        for position, value in enumerate(pi)
    ):
        flags[:] = True
    for position, owner in owners.items():
        if pi[position] == 1 and position not in claimed_by[owner]:
            flags[owner] = True
    return flags


def simulate_chunked(
    simulator: ChunkCommitSimulator,
    protocol: Protocol,
    inputs: Sequence[Any],
    channel: Channel,
    *,
    shared_seed: int | None = None,
    flips: FlipStream | None = None,
    codebook_cache: dict | None = None,
) -> CollapsedOutcome:
    """The chunk-commit scheme, party-collapsed; bitwise equal to
    ``simulator.simulate(protocol, inputs, channel)`` on the supported
    channels (minus the transcript).

    ``flips`` optionally injects a pre-built noise stream (the runner's
    batched prefetch); ``codebook_cache`` shares the owners codebook and
    vectorized decoder (including its memo) across the trials of a batch —
    the scalar scheme rebuilds both per trial.
    """
    require_numpy()
    if not channel.correlated:
        raise ConfigurationError(
            "ChunkCommitSimulator relies on a shared transcript and "
            "requires a correlated channel; use RepetitionSimulator "
            "for independent noise"
        )
    inner_length = simulator._require_fixed_length(protocol)
    noise = simulator._resolve_noise_model(channel)
    epsilon = max(noise.up, noise.down)
    params = simulator.params

    n_parties = protocol.n_parties
    chunk_length = params.resolve_chunk_length(n_parties)
    repetitions = params.resolve_repetitions(n_parties, epsilon)
    verification_repetitions = params.resolve_verification_repetitions(
        n_parties, epsilon
    )
    num_chunks = max(1, math.ceil(inner_length / chunk_length))
    max_attempts = (
        math.ceil(params.attempt_slack * num_chunks) + params.attempt_extra
    )

    code, decoder = _shared_codebook(
        params, chunk_length, noise, codebook_cache
    )

    report = SimulationReport(
        scheme=type(simulator).__name__,
        inner_length=inner_length,
        extra={
            "repetitions": repetitions,
            "verification_repetitions": verification_repetitions,
            "chunk_length": chunk_length,
            "max_attempts": max_attempts,
            "codeword_length": code.codeword_length,
        },
    )

    shared = _shared_channel(channel, flips)
    programs = _InnerPrograms(protocol, inputs, shared_seed, strict=True)
    energy = _np.zeros(n_parties, dtype=_np.int64)
    codebook = decoder._codebook
    codeword_weights = decoder._mask_weights

    committed: list[int] = []
    attempts = 0
    while len(committed) < inner_length and attempts < max_attempts:
        attempts += 1
        chunk_rounds = min(chunk_length, inner_length - len(committed))
        if programs.position != len(committed):
            # The previous attempt was rejected: replay the committed
            # prefix once (the scalar scheme replays it n times, once per
            # outer party, on *every* attempt).
            programs.rebuild(committed)

        pi, beep_rows, beep_matrix, owners, claimed_by = _chunk_phase12(
            programs,
            shared,
            energy,
            chunk_rounds,
            repetitions,
            n_parties,
            codebook,
            codeword_weights,
            decoder,
        )

        # Phase 3: per-party error flags (vectorized over the beep
        # matrix) and the OR vote; a clean vote commits the chunk.
        flags = _chunk_flags(pi, beep_matrix, owners, claimed_by)
        flag_beeps = int(flags.sum())
        or_flag = 1 if flag_beeps else 0
        ones = shared.window(or_flag, flag_beeps, verification_repetitions)
        verdict = 1 if 2 * ones > verification_repetitions else 0
        energy += flags * verification_repetitions
        if verdict == 0:
            committed.extend(pi)
            report.chunk_commits += 1
        report.chunk_attempts = attempts

    report.completed = len(committed) == inner_length
    if report.completed and programs.position == inner_length:
        # The live programs just consumed the full committed transcript —
        # their outputs are the final replay's outputs (determinism).
        outputs = programs.outputs()
    else:
        padded = committed + [0] * (inner_length - len(committed))
        outputs = programs.outputs_over(padded)

    report.simulated_rounds = shared.stats.rounds
    simulator._enforce_completion(report)
    return CollapsedOutcome(
        outputs=outputs,
        rounds=shared.stats.rounds,
        channel_stats=shared.stats,
        beeps_per_party=tuple(int(value) for value in energy),
        report=report,
    )


def simulate_rewind(
    simulator: RewindSimulator,
    protocol: Protocol,
    inputs: Sequence[Any],
    channel: Channel,
    *,
    shared_seed: int | None = None,
    flips: FlipStream | None = None,
    codebook_cache: dict | None = None,
) -> CollapsedOutcome:
    """The rewind random walk, party-collapsed; bitwise equal to
    ``simulator.simulate(protocol, inputs, channel)`` on the supported
    channels (minus the transcript).

    The scalar walk re-replays every party's inner coroutine from scratch
    after each pop.  Collapsed, the sent-bit column of position ``p`` is a
    function of ``working[:p]`` alone, so columns survive pops in a cache
    and a full replay is only needed when an append *changes* a received
    bit under cached columns.  Per-party dispute sets shrink to an
    incremental counter vector.  (``codebook_cache`` is accepted for call
    symmetry; the rewind scheme has no codebook.)
    """
    require_numpy()
    del codebook_cache
    if not channel.correlated:
        raise ConfigurationError(
            "RewindSimulator requires a correlated channel (the working "
            "transcript must be shared)"
        )
    inner_length = simulator._require_fixed_length(protocol)
    params = simulator.params
    iterations = (
        math.ceil(params.rewind_budget_factor * inner_length)
        + params.rewind_budget_extra
    )
    report = SimulationReport(
        scheme=type(simulator).__name__,
        inner_length=inner_length,
        extra={"iterations": iterations},
    )

    shared = _shared_channel(channel, flips)
    n_parties = protocol.n_parties
    programs = _InnerPrograms(protocol, inputs, shared_seed, strict=False)
    energy = _np.zeros(n_parties, dtype=_np.int64)
    zero_column = _np.zeros(n_parties, dtype=_np.uint8)

    working: list[int] = []
    # Cached sent-bit columns: column p depends only on working[:p], and
    # cached_received mirrors the receive history the columns beyond p
    # were computed under.  A pop leaves the cache intact; an append that
    # changes a received bit truncates everything above it.
    cached_columns: list["_np.ndarray"] = []
    cached_received: list[int] = []
    disputes = _np.zeros(n_parties, dtype=_np.int64)
    rewinds = 0
    stale = False  # live programs out of sync with ``working``

    for _ in range(iterations):
        # Alarm round: a party beeps iff it currently disputes a position.
        alarm_beeps = int((disputes > 0).sum())
        or_alarm = 1 if alarm_beeps else 0
        heard_alarm = shared.round(or_alarm, alarm_beeps)
        energy += disputes > 0

        if heard_alarm == 1:
            if working:
                position = len(working) - 1
                popped = working.pop()
                if popped == 0:
                    # Exactly the parties that beeped 1 there disputed it.
                    disputes -= cached_columns[position]
                rewinds += 1
                if programs.position > len(working):
                    stale = True
            # Dummy round keeps the iteration at two rounds; all silent.
            shared.round(0, 0)
        else:
            position = len(working)
            simulating = position < inner_length
            if simulating:
                if position < len(cached_columns):
                    column = cached_columns[position]
                else:
                    if stale or programs.position != position:
                        programs.rebuild(working)
                        stale = False
                    column = _np.array(
                        [
                            bit if bit is not None else 0
                            for bit in programs.bits
                        ],
                        dtype=_np.uint8,
                    )
                    cached_columns.append(column)
                beeps = int(column.sum())
            else:
                column = zero_column
                beeps = 0
            or_value = 1 if beeps else 0
            received = shared.round(or_value, beeps)
            energy += column
            if simulating:
                if position < len(cached_received):
                    if cached_received[position] != received:
                        # The past changed: columns above are invalid.
                        del cached_columns[position + 1 :]
                        del cached_received[position + 1 :]
                        cached_received[position] = received
                        if programs.position > position:
                            stale = True
                else:
                    cached_received.append(received)
                working.append(received)
                if received == 0:
                    disputes += column
                if not stale and programs.position == position:
                    programs.advance(received)

    report.rewinds = rewinds
    report.completed = (
        len(working) == inner_length and int(disputes[0]) == 0
    )

    padded = working + [0] * (inner_length - len(working))
    outputs = programs.outputs_over(padded)

    report.simulated_rounds = shared.stats.rounds
    simulator._enforce_completion(report)
    return CollapsedOutcome(
        outputs=outputs,
        rounds=shared.stats.rounds,
        channel_stats=shared.stats,
        beeps_per_party=tuple(int(value) for value in energy),
        report=report,
    )
