"""Vectorized shared-noise streams, bitwise-matched to the scalar channels.

Every correlated channel in this package decides its per-round noise with a
single comparison ``u < ε`` against the next uniform draw of its
``random.Random`` (see ``Channel._next_noise_float`` and the
``_deliver_shared`` overrides): the correlated channel draws every round,
the one-sided channel only on silent rounds, the suppression channel only
on beeping rounds.  That means the *flip indicator stream* — the sequence
``[u_0 < ε, u_1 < ε, ...]`` in draw order — fully determines a channel's
behaviour, and a trial's noise can be replayed bitwise from any generator
producing the same uniforms.

:func:`numpy_stream` transfers a ``random.Random``'s Mersenne-Twister state
into a ``numpy.random.RandomState``: both generate doubles with the same
``genrand_res53`` recipe, so ``random_sample(k)`` reproduces ``k`` calls of
``Random.random()`` exactly (verified by golden pins in
``tests/unit/test_rng.py`` and property tests).  :class:`FlipStream` builds
on that to serve flip indicators in blocks, and :class:`BatchFlips`
prefetches the first ``columns`` indicators of a whole batch of trials as
rows of a packed numpy bit-matrix — the trial×draw layout the vectorized
backend batches over.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError

try:  # numpy is an optional dependency of the vectorized backend only.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "require_numpy",
    "numpy_stream",
    "FlipStream",
    "BatchFlips",
]

HAVE_NUMPY = _np is not None

#: Flip indicators generated per refill; purely an amortization knob —
#: the delivered stream is identical for any block size.
_FLIP_BLOCK = 8192


def require_numpy() -> None:
    """Raise a clear error when numpy is unavailable."""
    if _np is None:
        raise ConfigurationError(
            "the vectorized backend requires numpy; install numpy or use "
            "the serial/process backends (--backend serial|process)"
        )


def numpy_stream(rng: random.Random) -> "_np.random.RandomState":
    """A ``RandomState`` continuing ``rng``'s exact uniform stream.

    CPython's ``random.Random`` and numpy's legacy ``RandomState`` share
    both the MT19937 core and the 53-bit double construction, so after the
    state transfer ``random_sample(k)`` returns exactly the next ``k``
    values ``rng.random()`` would have produced.  ``rng`` itself is left
    untouched (its state is copied, not consumed).
    """
    require_numpy()
    version, internal, _gauss = rng.getstate()
    if version != 3:  # pragma: no cover - CPython has used version 3 forever
        raise ConfigurationError(
            f"unsupported random.Random state version {version}"
        )
    key, pos = internal[:-1], internal[-1]
    stream = _np.random.RandomState()
    stream.set_state(("MT19937", _np.asarray(key, dtype=_np.uint32), pos))
    return stream


class FlipStream:
    """The flip-indicator stream of one trial's channel randomness.

    Serves the sequence ``[rng.random() < epsilon, ...]`` in draw order,
    generated in vectorized blocks.  The buffer is a ``bytes`` of 0/1 so
    the three access patterns of the collapsed schemes are all C-speed:
    ``take1`` (one round), ``count`` (popcount of a constant-OR window),
    and ``take`` (a codeword window as a uint8 array).

    Args:
        rng: The channel's generator; its current state is copied.
        epsilon: The channel's flip probability.
        preload: Optional pre-generated prefix of the indicator stream
            (from :class:`BatchFlips`); served before drawing more.
    """

    __slots__ = ("_stream", "_epsilon", "_buffer", "_pos", "draws")

    def __init__(
        self,
        rng: random.Random,
        epsilon: float,
        preload: bytes | None = None,
    ) -> None:
        self._stream = numpy_stream(rng)
        self._epsilon = epsilon
        self._buffer = preload if preload is not None else b""
        self._pos = 0
        #: Indicators consumed so far (draw-order position; test hook).
        self.draws = 0

    def _refill(self) -> None:
        uniforms = self._stream.random_sample(_FLIP_BLOCK)
        self._buffer = (uniforms < self._epsilon).astype(_np.uint8).tobytes()
        self._pos = 0

    def take1(self) -> int:
        """The next flip indicator, as a plain int."""
        if self._pos >= len(self._buffer):
            self._refill()
        bit = self._buffer[self._pos]
        self._pos += 1
        self.draws += 1
        return bit

    def count(self, rounds: int) -> int:
        """Number of flips among the next ``rounds`` indicators.

        The whole window of a constant-OR run (phase-1 repetition votes,
        verification votes) only ever needs this popcount.
        """
        total = 0
        remaining = rounds
        while remaining > 0:
            if self._pos >= len(self._buffer):
                self._refill()
            chunk = min(remaining, len(self._buffer) - self._pos)
            end = self._pos + chunk
            total += self._buffer.count(1, self._pos, end)
            self._pos = end
            remaining -= chunk
        self.draws += rounds
        return total

    def take(self, rounds: int) -> "_np.ndarray":
        """The next ``rounds`` indicators as a uint8 array (codeword windows)."""
        pieces = []
        remaining = rounds
        while remaining > 0:
            if self._pos >= len(self._buffer):
                self._refill()
            chunk = min(remaining, len(self._buffer) - self._pos)
            end = self._pos + chunk
            pieces.append(
                _np.frombuffer(
                    self._buffer, dtype=_np.uint8, count=chunk,
                    offset=self._pos,
                )
            )
            self._pos = end
            remaining -= chunk
        self.draws += rounds
        if len(pieces) == 1:
            return pieces[0]
        if not pieces:
            return _np.zeros(0, dtype=_np.uint8)
        return _np.concatenate(pieces)


class BatchFlips:
    """Batched flip prefetch: trials as rows of a packed bit-matrix.

    Generates the first ``columns`` flip indicators of every trial in one
    vectorized pass — one ``random_sample`` per row, one comparison and one
    ``packbits`` for the whole batch — and keeps them packed 8 trials'
    worth of draws per byte.  :meth:`stream` hands each trial a
    :class:`FlipStream` preloaded with its row; draws beyond the prefetch
    continue seamlessly from the row's transferred generator state.

    Args:
        rngs: One ``random.Random`` per trial (the channels' generators).
        epsilon: Shared flip probability.
        columns: Indicators prefetched per trial.
    """

    def __init__(
        self,
        rngs: "list[random.Random]",
        epsilon: float,
        columns: int = 4096,
    ) -> None:
        require_numpy()
        from repro.vectorized.bitmatrix import pack_rows

        self.epsilon = epsilon
        self.columns = columns
        self._streams = [numpy_stream(rng) for rng in rngs]
        if columns > 0 and self._streams:
            uniforms = _np.empty((len(self._streams), columns))
            for row, stream in enumerate(self._streams):
                uniforms[row] = stream.random_sample(columns)
            bits = (uniforms < epsilon).astype(_np.uint8)
            #: The prefetched trial×draw flip matrix, rows packed.
            self.packed = pack_rows(bits)
        else:
            self.packed = _np.zeros((len(self._streams), 0), dtype=_np.uint8)

    def __len__(self) -> int:
        return len(self._streams)

    def stream(self, index: int) -> FlipStream:
        """Trial ``index``'s flip stream, starting from the packed row."""
        from repro.vectorized.bitmatrix import unpack_rows

        preload: bytes | None = None
        if self.columns > 0:
            row = unpack_rows(
                self.packed[index : index + 1], self.columns
            )[0]
            preload = row.tobytes()
        flip_stream = FlipStream.__new__(FlipStream)
        flip_stream._stream = self._streams[index]
        flip_stream._epsilon = self.epsilon
        flip_stream._buffer = preload if preload is not None else b""
        flip_stream._pos = 0
        flip_stream.draws = 0
        return flip_stream
