"""The trial-batched vectorized backend (numpy-optional).

A third :class:`~repro.parallel.runner.TrialRunner` backend that executes
Monte-Carlo batches through party-collapsed simulations over packed numpy
bit-matrices, bitwise-equivalent to the scalar engine trial by trial:

* :mod:`repro.vectorized.noise` — MT19937 state transfer from
  ``random.Random`` into numpy, flip-indicator streams, batched prefetch;
* :mod:`repro.vectorized.bitmatrix` — packed trial×round bit-matrices and
  the byte-per-position mask bridge to the scalar decoder;
* :mod:`repro.vectorized.decoder` — whole-codebook ML decoding;
* :mod:`repro.vectorized.schemes` — the collapsed chunk-commit and
  rewind simulations;
* :mod:`repro.vectorized.runner` — :class:`VectorizedRunner`, with
  scalar fallback for batches it cannot collapse.

Importing this package never requires numpy; constructing the runner (or
calling any vectorized entry point) raises a clear
:class:`~repro.errors.ConfigurationError` when numpy is missing.  Select
the backend with ``make_runner(backend="vectorized")`` or
``--backend vectorized`` on the CLI.
"""

from repro.vectorized.bitmatrix import (
    bits_from_mask,
    mask_int,
    pack_rows,
    popcount_rows,
    unpack_rows,
)
from repro.vectorized.decoder import VectorizedMLDecoder
from repro.vectorized.noise import (
    HAVE_NUMPY,
    BatchFlips,
    FlipStream,
    numpy_stream,
    require_numpy,
)
from repro.vectorized.runner import VectorizedRunner
from repro.vectorized.schemes import (
    CHANNEL_KINDS,
    CollapsedOutcome,
    simulate_chunked,
    simulate_rewind,
)

__all__ = [
    "HAVE_NUMPY",
    "require_numpy",
    "numpy_stream",
    "FlipStream",
    "BatchFlips",
    "pack_rows",
    "unpack_rows",
    "mask_int",
    "bits_from_mask",
    "popcount_rows",
    "VectorizedMLDecoder",
    "CHANNEL_KINDS",
    "CollapsedOutcome",
    "simulate_chunked",
    "simulate_rewind",
    "VectorizedRunner",
]
