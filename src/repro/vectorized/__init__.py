"""The trial-batched vectorized backend (numpy-optional).

A third :class:`~repro.parallel.runner.TrialRunner` backend that executes
Monte-Carlo batches through party-collapsed simulations over packed numpy
bit-matrices, bitwise-equivalent to the scalar engine trial by trial:

* :mod:`repro.vectorized.noise` — MT19937 state transfer from
  ``random.Random`` into numpy, flip-indicator streams, batched prefetch;
* :mod:`repro.vectorized.bitmatrix` — packed trial×round bit-matrices and
  the byte-per-position mask bridge to the scalar decoder;
* :mod:`repro.vectorized.decoder` — whole-codebook ML decoding;
* :mod:`repro.vectorized.schemes` — the collapsed chunk-commit and
  rewind simulations, plus the shared phase-1/2 machinery;
* :mod:`repro.vectorized.schemes_repetition` /
  :mod:`repro.vectorized.schemes_hierarchical` — the collapsed
  repetition and Appendix-D.2 hierarchy simulations;
* :mod:`repro.vectorized.network` — the trial-batched CSR
  neighborhood-OR kernel and the batched graph drivers (neighbor-OR,
  broadcast, MIS, local-broadcast wrapper);
* :mod:`repro.vectorized.runner` — :class:`VectorizedRunner`, with
  scalar fallback for batches it cannot collapse;
* :mod:`repro.vectorized.process_runner` —
  :class:`VectorizedProcessRunner`, the composed backend striping a
  batch across a process pool of vectorized workers.

Importing this package never requires numpy; constructing a runner (or
calling any vectorized entry point) raises a clear
:class:`~repro.errors.ConfigurationError` when numpy is missing.  Select
the backends with ``make_runner(backend="vectorized")`` /
``make_runner(backend="vectorized-process")`` or the matching
``--backend`` values on the CLI.
"""

from repro.vectorized.bitmatrix import (
    bits_from_mask,
    mask_int,
    pack_rows,
    popcount_rows,
    unpack_rows,
)
from repro.vectorized.decoder import VectorizedMLDecoder
from repro.vectorized.network import (
    NetworkBatchKernel,
    NetworkRoute,
    classify_network,
    network_records,
)
from repro.vectorized.noise import (
    HAVE_NUMPY,
    BatchFlips,
    FlipStream,
    numpy_stream,
    require_numpy,
)
from repro.vectorized.process_runner import VectorizedProcessRunner
from repro.vectorized.runner import VectorizedRunner
from repro.vectorized.schemes import (
    CHANNEL_KINDS,
    CollapsedOutcome,
    simulate_chunked,
    simulate_rewind,
)
from repro.vectorized.schemes_hierarchical import simulate_hierarchical
from repro.vectorized.schemes_repetition import simulate_repetition

__all__ = [
    "HAVE_NUMPY",
    "require_numpy",
    "numpy_stream",
    "FlipStream",
    "BatchFlips",
    "pack_rows",
    "unpack_rows",
    "mask_int",
    "bits_from_mask",
    "popcount_rows",
    "VectorizedMLDecoder",
    "CHANNEL_KINDS",
    "CollapsedOutcome",
    "simulate_chunked",
    "simulate_rewind",
    "simulate_repetition",
    "simulate_hierarchical",
    "NetworkBatchKernel",
    "NetworkRoute",
    "classify_network",
    "network_records",
    "VectorizedRunner",
    "VectorizedProcessRunner",
]
