"""Party-collapsed form of the Appendix-D.2 hierarchy (``A_l``).

The scalar :class:`~repro.simulation.hierarchical.HierarchicalSimulator`
runs ``n`` party coroutines whose control flow — leaf simulations,
binary-search progress checks, truncations — is a pure function of
*shared* state under correlated noise.  The collapse therefore keeps the
recursion as plain driver code: each non-idle leaf runs the same phase
1+2 machinery as the chunk-commit collapse
(:func:`~repro.vectorized.schemes._chunk_phase12`), each progress-check
vote is one windowed draw, and per-party error flags become a boolean
vector per chunk, OR-reduced over prefixes.  Inner parties stay *live*
across leaves — the scalar scheme re-replays the full working prefix in
every leaf, ``n`` times over — and are rebuilt only after a truncation
actually rewinds them.  Bitwise equal to the scalar execution: same RNG
draw order, rounds, channel statistics, per-party energy, outputs,
report fields and error parity.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.channels.base import Channel
from repro.core.protocol import Protocol
from repro.errors import ConfigurationError
from repro.simulation.base import SimulationReport
from repro.simulation.hierarchical import HierarchicalSimulator
from repro.vectorized.noise import FlipStream, require_numpy
from repro.vectorized.schemes import (
    CollapsedOutcome,
    _chunk_flags,
    _chunk_phase12,
    _InnerPrograms,
    _shared_channel,
    _shared_codebook,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = ["simulate_hierarchical"]


def simulate_hierarchical(
    simulator: HierarchicalSimulator,
    protocol: Protocol,
    inputs: Sequence[Any],
    channel: Channel,
    *,
    shared_seed: int | None = None,
    flips: FlipStream | None = None,
    codebook_cache: dict | None = None,
) -> CollapsedOutcome:
    """The ``A_L`` hierarchy, party-collapsed; bitwise equal to
    ``simulator.simulate(protocol, inputs, channel)`` on the supported
    channels (minus the transcript).

    ``flips`` optionally injects a pre-built noise stream (the runner's
    batched prefetch); ``codebook_cache`` shares the owners codebook and
    vectorized decoder across the trials of a batch — and with the
    chunk-commit collapse, whose codebook parameters are identical.
    """
    require_numpy()
    if not channel.correlated:
        raise ConfigurationError(
            "HierarchicalSimulator relies on a shared transcript and "
            "requires a correlated channel"
        )
    inner_length = simulator._require_fixed_length(protocol)
    noise = simulator._resolve_noise_model(channel)
    epsilon = max(noise.up, noise.down)
    params = simulator.params

    n_parties = protocol.n_parties
    chunk_length = params.resolve_chunk_length(n_parties)
    repetitions = params.resolve_repetitions(n_parties, epsilon)
    verification_repetitions = params.resolve_verification_repetitions(
        n_parties, epsilon
    )
    num_chunks = max(1, math.ceil(inner_length / chunk_length))
    depth = math.ceil(math.log2(num_chunks)) + simulator.extra_levels
    level_repetition_step = simulator.level_repetition_step
    code, decoder = _shared_codebook(
        params, chunk_length, noise, codebook_cache
    )

    report = SimulationReport(
        scheme=type(simulator).__name__,
        inner_length=inner_length,
        extra={
            "repetitions": repetitions,
            "verification_repetitions": verification_repetitions,
            "chunk_length": chunk_length,
            "depth": depth,
            "leaf_budget": 1 << depth,
            "codeword_length": code.codeword_length,
        },
    )

    shared = _shared_channel(channel, flips)
    programs = _InnerPrograms(protocol, inputs, shared_seed, strict=True)
    energy = _np.zeros(n_parties, dtype=_np.int64)
    codebook = decoder._codebook
    codeword_weights = decoder._mask_weights

    # Working state: per appended chunk, its transcript pi and each
    # party's error-flag vector (truncation only removes suffixes, so
    # flags stay valid — the scalar scheme's remembered-beeps argument).
    chunk_pis: list[list[int]] = []
    chunk_flag_rows: list["_np.ndarray"] = []
    working_rounds = 0
    leaf_calls = 0
    truncated_chunks = 0
    checks = 0

    def leaf() -> None:
        """``A_0``: simulate the next chunk (if any) and append it."""
        nonlocal leaf_calls, working_rounds
        leaf_calls += 1
        if working_rounds >= inner_length:
            return  # idle leaf; shared decision, zero rounds
        chunk_rounds = min(chunk_length, inner_length - working_rounds)
        if programs.position != working_rounds:
            # A truncation rewound the working prefix past the live
            # programs: replay it once (the scalar scheme replays it n
            # times, once per outer party, in *every* leaf).
            programs.rebuild(
                [bit for chunk in chunk_pis for bit in chunk]
            )
        pi, _, beep_matrix, owners, claimed_by = _chunk_phase12(
            programs,
            shared,
            energy,
            chunk_rounds,
            repetitions,
            n_parties,
            codebook,
            codeword_weights,
            decoder,
        )
        chunk_pis.append(pi)
        chunk_flag_rows.append(
            _chunk_flags(pi, beep_matrix, owners, claimed_by)
        )
        working_rounds += len(pi)

    def progress_check(level: int) -> None:
        """Binary-search the longest consistent working prefix; truncate."""
        nonlocal checks, truncated_chunks, working_rounds, energy
        checks += 1
        votes = verification_repetitions + level_repetition_step * level
        low, high = 0, len(chunk_pis)
        while low < high:
            mid = (low + high + 1) // 2
            flags = chunk_flag_rows[0].copy()
            for row in chunk_flag_rows[1:mid]:
                flags |= row
            flag_beeps = int(flags.sum())
            or_flag = 1 if flag_beeps else 0
            ones = shared.window(or_flag, flag_beeps, votes)
            verdict = 1 if 2 * ones > votes else 0
            energy += flags * votes
            if verdict == 0:
                low = mid
            else:
                high = mid - 1
        if low < len(chunk_pis):
            truncated_chunks += len(chunk_pis) - low
            del chunk_pis[low:]
            del chunk_flag_rows[low:]
            working_rounds = sum(len(chunk) for chunk in chunk_pis)

    def run_level(level: int) -> None:
        if level == 0:
            leaf()
            return
        run_level(level - 1)
        run_level(level - 1)
        progress_check(level)

    run_level(depth)

    report.chunk_attempts = leaf_calls
    report.chunk_commits = len(chunk_pis)
    report.rewinds = truncated_chunks
    report.completed = working_rounds == inner_length
    report.extra["progress_checks"] = checks

    if report.completed and programs.position == inner_length:
        # The live programs just consumed the full committed transcript —
        # their outputs are the final replay's outputs (determinism).
        outputs = programs.outputs()
    else:
        committed = [bit for chunk in chunk_pis for bit in chunk]
        committed = committed[:inner_length]
        padded = committed + [0] * (inner_length - len(committed))
        outputs = programs.outputs_over(padded)

    report.simulated_rounds = shared.stats.rounds
    simulator._enforce_completion(report)
    return CollapsedOutcome(
        outputs=outputs,
        rounds=shared.stats.rounds,
        channel_stats=shared.stats,
        beeps_per_party=tuple(int(value) for value in energy),
        report=report,
    )
