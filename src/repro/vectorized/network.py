"""Trial-batched network rounds: the CSR neighborhood-OR kernel.

The scalar :class:`~repro.network.channel.NetworkBeepingChannel` walks
the beeping nodes' out-neighborhoods in pure Python — O(Σ out-degree)
*interpreter* steps per round per trial.  This module batches a whole
Monte-Carlo batch into one matrix: a round's beeps are a
``(n_nodes, trials)`` uint8 matrix ``B`` (node-major, so CSR gathers and
scatters touch contiguous ``trials``-wide rows — measured ~3× faster
than the trial-major layout at 10^5 nodes) and one call computes every
trial's neighborhood OR at once:

1. gather the active beeping rows' out-neighborhoods through the numpy
   CSR mirrors (:meth:`~repro.network.topology.Topology.csr_arrays`);
2. group the expanded (target, source) pairs by target with one stable
   argsort, OR each group with ``np.maximum.reduceat``;
3. scatter the per-target ORs into a reusable ``heard`` buffer (only
   previously-written rows are cleared, so silent stretches cost
   nothing).

The expansion plan of step 1–2 depends only on *which* nodes beep, not
on the per-trial bits, so it is cached and reused while the beeping set
is unchanged — local-broadcast bursts repeat one plan ``k`` times.

Noise replays the scalar channel's exact draw order through
:class:`~repro.vectorized.noise.FlipStream`/:class:`~repro.vectorized.
noise.BatchFlips` (per-delivery erasure draws in ascending-beeper ×
CSR-out order, then per-node flip draws in node order), and the batched
drivers re-run the party state machines of the network tasks
(neighbor-OR, flooding broadcast, MIS election) over whole-batch
matrices, with the local-broadcast repetition wrapper folded in as
``k``-round majority bursts.  Every trial of a batch is bitwise
identical — records, noise accounting, draw counts — to the scalar
engine's :func:`~repro.parallel.runner.run_trial` for the same
``(seed, index)``, which is what ``tests/unit/
test_network_vectorized_equivalence.py`` pins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.network.channel import NetworkBeepingChannel
from repro.network.local_broadcast import (
    LocalBroadcastSimulator,
    local_broadcast_repetitions,
)
from repro.network.mis import _MISProtocol
from repro.network.tasks import _BroadcastProtocol, _NeighborORProtocol
from repro.network.topology import Topology
from repro.parallel.executors import ProtocolExecutor, SimulationExecutor
from repro.parallel.runner import TrialRecord
from repro.rng import derive_seed, spawn
from repro.vectorized.noise import BatchFlips, require_numpy

try:  # numpy is optional for the package, required to *run* this module.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "NetworkBatchKernel",
    "NetworkRoute",
    "classify_network",
    "network_records",
]


class NetworkBatchKernel:
    """One neighborhood-OR round for a whole trial batch.

    Matrices are node-major ``(n_nodes, trials)`` uint8.  :meth:`step`
    computes the *clean* (noise-free) reception of every trial at once;
    noise is layered on top by the batched channel below, per trial, so
    the kernel itself stays reusable for benchmarks and future schemes.

    Args:
        topology: The graph (its numpy CSR mirrors are gathered).
        trials: Batch width (columns of every matrix).
        hear_self: Whether a beeping node hears its own beep.
    """

    def __init__(
        self, topology: Topology, trials: int, hear_self: bool = False
    ) -> None:
        require_numpy()
        _, _, out_ptr, out_idx = topology.csr_arrays()
        self.n = topology.n
        self.trials = trials
        self.hear_self = hear_self
        self._out_ptr = out_ptr
        self._out_idx = out_idx
        self._heard = _np.zeros((self.n, trials), dtype=_np.uint8)
        self._dirty: Any = None
        self._plan_key: bytes | None = None
        self._plan: tuple | None = None

    def plan(self, act: "_np.ndarray") -> tuple:
        """The expansion plan for beeping-node set ``act`` (ascending).

        Returns ``(sources_sorted, seg_starts, uniq_targets)``: the
        (target-grouped) source index of every delivery, the group
        boundaries, and the distinct reached nodes.  Cached while the
        beeping set is unchanged.
        """
        key = act.tobytes()
        if key == self._plan_key:
            return self._plan
        ptr = self._out_ptr
        starts = ptr[act]
        counts = ptr[act + 1] - starts
        total = int(counts.sum())
        offsets = _np.repeat(_np.cumsum(counts) - counts, counts)
        positions = (
            _np.arange(total, dtype=_np.int64)
            - offsets
            + _np.repeat(starts, counts)
        )
        targets = self._out_idx[positions]
        sources = _np.repeat(act, counts)
        order = _np.argsort(targets, kind="stable")
        targets_sorted = targets[order]
        boundary = _np.empty(total, dtype=bool)
        if total:
            boundary[0] = True
            boundary[1:] = targets_sorted[1:] != targets_sorted[:-1]
        seg_starts = _np.nonzero(boundary)[0]
        uniq = targets_sorted[seg_starts]
        self._plan_key = key
        self._plan = (sources[order], seg_starts, uniq)
        return self._plan

    def expansion(self, act: "_np.ndarray") -> "_np.ndarray":
        """The delivery targets of beeping set ``act`` in the scalar
        channel's walk order (ascending beeper, CSR out-list order) —
        one entry per erasure draw of the per-edge noise model."""
        ptr = self._out_ptr
        starts = ptr[act]
        counts = ptr[act + 1] - starts
        total = int(counts.sum())
        offsets = _np.repeat(_np.cumsum(counts) - counts, counts)
        positions = (
            _np.arange(total, dtype=_np.int64)
            - offsets
            + _np.repeat(starts, counts)
        )
        return self._out_idx[positions]

    def step(
        self, B: "_np.ndarray", active: "_np.ndarray"
    ) -> tuple["_np.ndarray", "_np.ndarray"]:
        """All trials' clean neighborhood OR of beep matrix ``B``.

        ``active`` is the ascending superset of rows that may contain a
        beep (the drivers track it; rows outside are assumed zero, which
        is what keeps a round's cost off O(n·trials)).  Returns
        ``(heard, touched)`` — ``heard`` is a reusable buffer valid until
        the next call, zero outside the ``touched`` rows.
        """
        heard = self._heard
        if self._dirty is not None and self._dirty.size:
            heard[self._dirty] = 0
        act = active[B[active].any(axis=1)] if active.size else active
        sources_sorted, seg_starts, uniq = self.plan(act)
        if uniq.size:
            values = B[sources_sorted]
            heard[uniq] = _np.maximum.reduceat(values, seg_starts, axis=0)
        touched = uniq
        if self.hear_self and act.size:
            heard[act] |= B[act]
            touched = _np.union1d(uniq, act)
        self._dirty = touched
        return heard, touched


class _BatchNetworkChannel:
    """Batched stand-in for ``trials`` per-trial network channels.

    Wraps the kernel with the scalar channel's noise semantics and
    bookkeeping: per-trial beep/OR/flip counters (``ChannelStats``
    deltas), per-delivery erasure draws and per-node flip draws pulled
    from each trial's :class:`~repro.vectorized.noise.FlipStream` in the
    scalar draw order, and ``k``-repetition majority bursts for the
    local-broadcast wrapper.  ``virtual_round`` returns ``(received,
    touched)`` where ``touched`` lists the possibly-nonzero rows (or
    ``None`` when any row may be set, e.g. under per-node noise);
    ``received`` is only valid until the next call.
    """

    def __init__(
        self,
        topology: Topology,
        trials: int,
        *,
        hear_self: bool,
        epsilon: float,
        edge_epsilon: float,
        streams: "list | None",
        repetitions: int = 1,
    ) -> None:
        self.kernel = NetworkBatchKernel(topology, trials, hear_self)
        self.n = topology.n
        self.trials = trials
        self.hear_self = hear_self
        self.epsilon = epsilon
        self.edge_epsilon = edge_epsilon
        self.streams = streams
        self.k = repetitions
        self.rounds = 0
        self.beeps = _np.zeros(trials, dtype=_np.int64)
        self.or_ones = _np.zeros(trials, dtype=_np.int64)
        self.flips_up = _np.zeros(trials, dtype=_np.int64)
        self.flips_down = _np.zeros(trials, dtype=_np.int64)
        self._noisy = epsilon > 0.0 or edge_epsilon > 0.0
        if self._noisy:
            self._received = _np.zeros((self.n, trials), dtype=_np.uint8)
        self._recv_dirty: Any = None
        # Per-trial expansion cache for the per-edge draws (beeping sets
        # are per-trial there; bursts reuse one expansion k times).
        self._trial_plans: list = [(None, None)] * trials

    # -- one physical round -------------------------------------------

    def _count_round(self, B, active, scale: int) -> None:
        beeps = (
            B[active].sum(axis=0, dtype=_np.int64)
            if active.size
            else _np.zeros(self.trials, dtype=_np.int64)
        )
        self.beeps += beeps * scale
        self.or_ones += (beeps > 0).astype(_np.int64) * scale
        self.rounds += scale

    def _physical_round(self, B, active):
        if self.edge_epsilon > 0.0:
            return self._edge_round(B, active)
        heard, touched = self.kernel.step(B, active)
        if self.epsilon > 0.0:
            return self._node_noise(heard), None
        return heard, touched

    def _node_noise(self, heard):
        """Per-node flip draws, node order — one draw per node per round,
        exactly the scalar channel's uniform discipline."""
        received = self._received
        n = self.n
        for trial, stream in enumerate(self.streams):
            flips = stream.take(n)
            clean = heard[:, trial]
            _np.bitwise_xor(clean, flips, out=received[:, trial])
            n_flips = int(flips.sum())
            down = int((flips & clean).sum())
            self.flips_down[trial] += down
            self.flips_up[trial] += n_flips - down
        return received

    def _edge_round(self, B, active):
        """Per-delivery erasure draws in the scalar walk order.

        Draw counts depend on each trial's own beeping set, so the
        expansion is per trial here; the per-trial plan cache keeps
        local-broadcast bursts (same beepers k rounds running) at one
        expansion per burst.
        """
        received = self._received
        if self._recv_dirty is not None and self._recv_dirty.size:
            received[self._recv_dirty] = 0
        sub = B[active] if active.size else None
        touched_parts = []
        for trial, stream in enumerate(self.streams):
            act = (
                active[sub[:, trial] > 0]
                if sub is not None
                else active
            )
            key = act.tobytes()
            cached_key, targets = self._trial_plans[trial]
            if key != cached_key:
                targets = self.kernel.expansion(act)
                self._trial_plans[trial] = (key, targets)
            erased = stream.take(targets.size)
            delivered = targets[erased == 0]
            clean_nodes = _np.unique(targets)
            heard_nodes = _np.unique(delivered)
            if self.hear_self and act.size:
                clean_nodes = _np.union1d(clean_nodes, act)
                heard_nodes = _np.union1d(heard_nodes, act)
            self.flips_down[trial] += clean_nodes.size - heard_nodes.size
            if heard_nodes.size:
                received[heard_nodes, trial] = 1
                touched_parts.append(heard_nodes)
        if touched_parts:
            touched = _np.unique(_np.concatenate(touched_parts))
        else:
            touched = _np.zeros(0, dtype=_np.int64)
        self._recv_dirty = touched
        return received, touched

    # -- one virtual round (k-repetition majority) --------------------

    def virtual_round(self, B, active):
        """One inner-protocol round: ``k`` physical rounds of ``B`` with
        per-node strict-majority decode (``k = 1``: the round itself)."""
        k = self.k
        self._count_round(B, active, k)
        if not self._noisy:
            # Majority of k identical clean receptions is the reception.
            return self.kernel.step(B, active)
        if k == 1:
            return self._physical_round(B, active)
        counts = _np.zeros((self.n, self.trials), dtype=_np.int32)
        for _ in range(k):
            received, touched = self._physical_round(B, active)
            if touched is None:
                counts += received
            elif touched.size:
                counts[touched] += received[touched]
        return (2 * counts > k).astype(_np.uint8), None


# ---------------------------------------------------------------------
# Batched drivers: the party state machines over whole-batch matrices
# ---------------------------------------------------------------------


def _run_neighbor_or(protocol, inputs, vchan):
    """``_NeighborORParty``: beep your bit once, output what you heard."""
    B = _np.ascontiguousarray(
        _np.asarray(inputs, dtype=_np.uint8).T
    )
    active = _np.nonzero(B.any(axis=1))[0]
    received, _ = vchan.virtual_round(B, active)
    return received.T.tolist()


def _run_broadcast(protocol, inputs, vchan):
    """``_BroadcastParty``: node 0 floods its bit; a listener beeps from
    the round *after* it first hears, and outputs 1 iff informed."""
    n, trials = vchan.n, vchan.trials
    bits = _np.asarray([row[0] for row in inputs], dtype=_np.uint8)
    informed = _np.zeros((n, trials), dtype=_np.uint8)
    B = _np.zeros((n, trials), dtype=_np.uint8)
    B[0] = bits
    active_mask = _np.zeros(n, dtype=_np.uint8)
    active_mask[0] = 1
    active = _np.nonzero(active_mask)[0]
    for _ in range(protocol.rounds):
        received, touched = vchan.virtual_round(B, active)
        if touched is None:
            updated = _np.nonzero(received.any(axis=1))[0]
        elif touched.size:
            updated = touched[received[touched].any(axis=1)]
        else:
            updated = touched
        updated = updated[updated != 0]  # the source never listens
        if updated.size:
            informed[updated] |= received[updated]
            B[updated] = informed[updated]
            active_mask[updated] = 1
            active = _np.nonzero(active_mask)[0]
    outputs = informed.T.tolist()
    for trial in range(trials):
        outputs[trial][0] = int(bits[trial])
    return outputs


def _run_mis(protocol, inputs, vchan):
    """``_MISParty``: candidate round, winner round, decide; decided
    nodes stay silent through the protocol's fixed 2·phases rounds."""
    n, trials = vchan.n, vchan.trials
    tapes = _np.asarray(inputs, dtype=_np.uint8)  # (trials, n, phases)
    undecided = _np.ones((n, trials), dtype=_np.uint8)
    in_mis = _np.zeros((n, trials), dtype=_np.uint8)
    cand = _np.zeros((n, trials), dtype=_np.uint8)
    wins = _np.zeros((n, trials), dtype=_np.uint8)
    rows = _np.arange(n)
    empty = _np.zeros(0, dtype=_np.int64)
    for phase in range(protocol.phases):
        if rows.size:
            coins = tapes[:, rows, phase].T
            cand[rows] = coins & undecided[rows]
            active = rows[cand[rows].any(axis=1)]
        else:
            active = empty
        recv_cand, _ = vchan.virtual_round(cand, active)
        if rows.size:
            wins[rows] = 0
        if active.size:
            wins[active] = cand[active] & (recv_cand[active] == 0)
            active2 = active[wins[active].any(axis=1)]
        else:
            active2 = empty
        recv_wins, _ = vchan.virtual_round(wins, active2)
        if rows.size:
            won = wins[rows]
            dominated = undecided[rows] & (1 - won) & recv_wins[rows]
            in_mis[rows] |= won
            undecided[rows] &= 1 - (won | dominated)
            rows = rows[undecided[rows].any(axis=1)]
    member = in_mis.T.tolist()
    open_ = undecided.T.tolist()
    return [
        [
            True if m else (None if u else False)
            for m, u in zip(member[trial], open_[trial])
        ]
        for trial in range(trials)
    ]


_DRIVERS: dict[type, Callable] = {
    _NeighborORProtocol: _run_neighbor_or,
    _BroadcastProtocol: _run_broadcast,
    _MISProtocol: _run_mis,
}


# ---------------------------------------------------------------------
# Classification + record assembly
# ---------------------------------------------------------------------


@dataclass
class NetworkRoute:
    """A batch the network kernel can run: which driver, over what."""

    #: Crossover-table key: the task type name for raw protocol routes,
    #: the simulator type name for the local-broadcast route.
    scheme: str
    driver: Callable
    protocol: Any
    #: Probe channel — static parameters only (topology, epsilons,
    #: hear_self); per-trial channels are built fresh for their draws.
    channel: NetworkBeepingChannel
    simulator: LocalBroadcastSimulator | None


def classify_network(executor, seed: int):
    """The batched network route for this executor, or a fallback reason.

    Collapses: the three network protocol families above, raw
    (``ProtocolExecutor``) or under the local-broadcast repetition
    wrapper, over a :class:`~repro.network.channel.NetworkBeepingChannel`
    with at most one noise kind active (per-node ``epsilon`` *or*
    per-edge ``edge_epsilon`` — the registry never mixes them, and the
    flip streams replay a single threshold).  Everything else (size
    estimation's data-dependent phases, per-node epsilon vectors,
    other simulators) stays on the scalar engine.
    """
    simulator = None
    if isinstance(executor, SimulationExecutor):
        simulator = executor.simulator.make()
        if type(simulator) is not LocalBroadcastSimulator:
            return None, (
                f"no batched network form for {type(simulator).__name__}"
            )
    elif not isinstance(executor, ProtocolExecutor):
        return None, (
            f"no batched form for {type(executor).__name__} executors"
        )
    protocol = executor.task.noiseless_protocol()
    driver = _DRIVERS.get(type(protocol))
    if driver is None:
        return None, (
            f"no batched network driver for {type(protocol).__name__}"
        )
    probe = executor.channel.make(derive_seed(seed, "trial[0]"))
    if type(probe) is not NetworkBeepingChannel:
        return None, (
            f"no batched network replay for {type(probe).__name__}"
        )
    if probe.node_epsilons is not None:
        return None, (
            "per-node epsilon vectors have no batched replay"
        )
    if probe.epsilon > 0.0 and probe.edge_epsilon > 0.0:
        return None, (
            "combined per-node and per-edge noise has no batched replay"
        )
    scheme = (
        type(simulator).__name__
        if simulator is not None
        else type(executor.task).__name__
    )
    return NetworkRoute(scheme, driver, protocol, probe, simulator), None


def _local_broadcast_k(route: NetworkRoute) -> int:
    """The wrapper's repetition count, via the simulator's exact rule."""
    simulator = route.simulator
    channel = route.channel
    inner_length = simulator._require_fixed_length(route.protocol)
    if simulator.noise_model is not None:
        epsilon = max(simulator.noise_model.up, simulator.noise_model.down)
    else:
        epsilon = channel.max_epsilon + channel.edge_epsilon
    if simulator.params.repetitions is not None:
        return simulator.params.repetitions
    return local_broadcast_repetitions(
        channel.topology.max_in_degree,
        inner_length,
        epsilon,
        simulator.params.error_exponent,
    )


def network_records(
    route: NetworkRoute,
    task,
    executor,
    seed: int,
    indices: Sequence[int],
    *,
    prefetch: int = 4096,
    collect_times: bool = False,
) -> tuple[list[TrialRecord], list[float] | None]:
    """Run the given global trial indices through the batched kernel.

    Per-trial seed labels use the *global* index — the same
    ``spawn(seed, "inputs[i]")`` / ``derive_seed(seed, "trial[i]")``
    calls :func:`~repro.parallel.runner.run_trial` makes — so a stripe
    of a larger batch (the composed process backend's unit) is bitwise
    identical to the corresponding slice of a whole-batch run.
    """
    require_numpy()
    indices = list(indices)
    trials = len(indices)
    inputs_list = [
        task.sample_inputs(spawn(seed, f"inputs[{index}]"))
        for index in indices
    ]
    probe = route.channel
    repetitions = (
        _local_broadcast_k(route) if route.simulator is not None else 1
    )
    epsilon = probe.epsilon
    edge_epsilon = probe.edge_epsilon
    streams = None
    if epsilon > 0.0 or edge_epsilon > 0.0:
        # The exact per-trial channel constructions run_trial's executor
        # would make; only their generators are consumed (the batched
        # rounds never touch the scalar round buffers).
        channels = [
            executor.channel.make(derive_seed(seed, f"trial[{index}]"))
            for index in indices
        ]
        threshold = epsilon if epsilon > 0.0 else edge_epsilon
        batch_flips = BatchFlips(
            [channel._rng for channel in channels],
            threshold,
            columns=prefetch,
        )
        streams = [batch_flips.stream(row) for row in range(trials)]
    vchan = _BatchNetworkChannel(
        probe.topology,
        trials,
        hear_self=probe.hear_self,
        epsilon=epsilon,
        edge_epsilon=edge_epsilon,
        streams=streams,
        repetitions=repetitions,
    )
    outputs_list = route.driver(route.protocol, inputs_list, vchan)

    total_rounds = vchan.rounds
    if route.simulator is not None:
        chunk_attempts: float | None = 0.0
        completed: bool | None = True
    else:
        chunk_attempts = None
        completed = None
    records: list[TrialRecord] = []
    times: list[float] | None = [] if collect_times else None
    last = time.perf_counter()
    for row, index in enumerate(indices):
        records.append(
            TrialRecord(
                index=index,
                success=bool(
                    task.is_correct(inputs_list[row], outputs_list[row])
                ),
                rounds=float(total_rounds),
                chunk_attempts=chunk_attempts,
                completed=completed,
                channel_rounds=total_rounds,
                beeps_sent=int(vchan.beeps[row]),
                or_ones=int(vchan.or_ones[row]),
                flips_up=int(vchan.flips_up[row]),
                flips_down=int(vchan.flips_down[row]),
                total_energy=int(vchan.beeps[row]),
            )
        )
        if times is not None:
            now = time.perf_counter()
            times.append(now - last)
            last = now
    return records, times
