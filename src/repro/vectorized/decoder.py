"""Vectorized ML decoding over byte-packed masks.

One decode of the scalar :class:`~repro.coding.ml.MLDecoder` is a Python
loop over the codebook; here the whole codebook is scored with a handful
of numpy expressions.  The point of this module is not just speed but
*bitwise* agreement with the scalar decoder, argued term by term:

* the agreement counts ``n11/n10/n01/n00`` are exact integers (≤ the
  codeword length), representable losslessly in float64;
* the finite-weights score ``n11·w11 + (weight−n11)·w10 + (ones−n11)·w01
  + (L−weight−ones+n11)·w00`` folds left-to-right in numpy's elementwise
  evaluation exactly as in the scalar inlined loop, so every IEEE
  rounding step matches;
* the guarded path adds terms in the scalar ``_score`` order; a zero
  count with a finite weight contributes ``±0.0`` (bitwise harmless —
  scalar partial sums are never ``-0.0``), and ``-inf`` weights are
  applied with a mask instead of a multiply, avoiding ``0 · -inf = nan``;
* ``argmax`` returns the *first* maximum — the scalar strict-``>``
  tie-break — and the min-distance fallback's ``argmin`` likewise matches
  the scalar strict-``<`` first-minimum;
* received words are memoized under their ``tobytes()`` key, the same
  byte-per-position packing as the scalar mask integers (see
  :mod:`repro.vectorized.bitmatrix`), with the same ``1 << 16`` cap.

The property suite (``tests/property/test_properties_vectorized.py``)
pins the agreement on random codebooks, noise models and received words,
including the forbidden-transition and all-``-inf`` fallback regimes.
"""

from __future__ import annotations

import math

from repro.coding.code import BlockCode
from repro.core.formal import NoiseModel
from repro.errors import DecodingError
from repro.vectorized.noise import require_numpy

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = ["VectorizedMLDecoder"]

_NEG_INF = float("-inf")


def _log(p: float) -> float:
    return math.log(p) if p > 0.0 else _NEG_INF


class VectorizedMLDecoder:
    """Maximum-likelihood decoding of whole codebooks via numpy.

    Drop-in semantic equivalent of :class:`repro.coding.ml.MLDecoder`
    (same symbols, same ties, same fallback), scoring all codewords at
    once.  The codebook is held as a byte-per-position uint8 matrix — the
    same mask layout the scalar decoder packs into integers.
    """

    def __init__(self, code: BlockCode, noise: NoiseModel) -> None:
        require_numpy()
        self.code = code
        self.noise = noise
        self._length = code.codeword_length
        self._codebook = _np.array(
            [code.encode(symbol) for symbol in range(code.num_symbols)],
            dtype=_np.uint8,
        )
        self._codebook64 = self._codebook.astype(_np.int64)
        self._mask_weights = self._codebook64.sum(axis=1)
        # weights[sent][received] = log Pr[receive | sent], as in MLDecoder.
        self._weights = [
            [
                _log(noise.round_probability(sent, received))
                for received in (0, 1)
            ]
            for sent in (0, 1)
        ]
        self._finite_weights = all(
            term != _NEG_INF for row in self._weights for term in row
        )
        # received bytes (byte-per-position) -> decoded symbol; the same
        # key space as the scalar decoder's integer-mask memo.
        self._decoded: dict[bytes, int] = {}

    def _scores(self, n11: "_np.ndarray", ones: int) -> "_np.ndarray":
        """Log-likelihood of every codeword given the agreement counts."""
        (w00, w01), (w10, w11) = self._weights
        weights = self._mask_weights
        length = self._length
        if self._finite_weights:
            # Same left-to-right fold as the scalar inlined loop.
            return (
                n11 * w11
                + (weights - n11) * w10
                + (ones - n11) * w01
                + (length - weights - ones + n11) * w00
            )
        scores = _np.zeros(len(weights))
        for counts, term in (
            (n11, w11),
            (weights - n11, w10),
            (ones - n11, w01),
            (length - weights - ones + n11, w00),
        ):
            if term == _NEG_INF:
                # Mask instead of multiply: 0 * -inf would be nan, and the
                # scalar _score skips zero counts entirely.
                scores = _np.where(counts > 0, _NEG_INF, scores)
            else:
                scores = scores + counts * term
        return scores

    def decode(self, received: "_np.ndarray") -> int:
        """The ML symbol for a received word (uint8 bits, memoized)."""
        if len(received) != self._length:
            raise DecodingError(
                f"received word has length {len(received)}, codewords have "
                f"length {self._length}"
            )
        key = received.tobytes()
        cached = self._decoded.get(key)
        if cached is not None:
            return cached
        received64 = received.astype(_np.int64)
        n11 = self._codebook64 @ received64
        scores = self._scores(n11, int(received64.sum()))
        best = int(_np.argmax(scores))
        if scores[best] == _NEG_INF:
            # Every codeword forbidden: scalar falls back to min distance
            # (first minimum), which argmin reproduces exactly.
            distances = _np.count_nonzero(
                self._codebook != received, axis=1
            )
            best = int(_np.argmin(distances))
        if len(self._decoded) < 1 << 16:
            self._decoded[key] = best
        return best

    def decode_batch(self, received: "_np.ndarray") -> "_np.ndarray":
        """Decode a (words, length) matrix of received words at once.

        Equivalent to row-wise :meth:`decode` (the property suite pins
        this); used by the test layer and bulk re-decoding, bypassing the
        memo.
        """
        if received.ndim != 2 or received.shape[1] != self._length:
            raise DecodingError(
                f"expected a (words, {self._length}) matrix, got shape "
                f"{received.shape}"
            )
        received64 = received.astype(_np.int64)
        n11 = received64 @ self._codebook64.T  # (words, symbols)
        ones = received64.sum(axis=1)  # (words,)
        (w00, w01), (w10, w11) = self._weights
        weights = self._mask_weights[_np.newaxis, :]
        length = self._length
        ones_col = ones[:, _np.newaxis]
        if self._finite_weights:
            scores = (
                n11 * w11
                + (weights - n11) * w10
                + (ones_col - n11) * w01
                + (length - weights - ones_col + n11) * w00
            )
        else:
            scores = _np.zeros_like(n11, dtype=float)
            for counts, term in (
                (n11, w11),
                (weights - n11, w10),
                (ones_col - n11, w01),
                (length - weights - ones_col + n11, w00),
            ):
                if term == _NEG_INF:
                    scores = _np.where(counts > 0, _NEG_INF, scores)
                else:
                    scores = scores + counts * term
        best = _np.argmax(scores, axis=1)
        dead = scores[_np.arange(len(best)), best] == _NEG_INF
        if dead.any():
            distances = _np.count_nonzero(
                self._codebook[_np.newaxis, :, :]
                != received[dead][:, _np.newaxis, :],
                axis=2,
            )
            best[dead] = _np.argmin(distances, axis=1)
        return best
