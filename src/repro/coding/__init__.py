"""Error-correcting codes for the owners phase (Appendix D).

Algorithm 1 has the current speaker beep a codeword ``C(j)`` identifying the
transcript position it claims to own, with ``C : [n] ∪ {Next} → {0,1}^{c·log n}``
a constant-rate code.  This subpackage provides:

* :class:`BlockCode` — the abstract code interface;
* :class:`RepetitionCode` — bits repeated ``r`` times (baseline/ablation);
* :class:`HadamardCode` — the Walsh–Hadamard code, relative distance 1/2,
  with the useful property that symbol 0 encodes to the all-zero word (which
  we reserve for "silence");
* :class:`GreedyRandomCode` — a Gilbert–Varshamov-style greedy random code at
  a configurable length/distance, the workhorse for the owners phase;
* :class:`MLDecoder` — channel-aware maximum-likelihood decoding for any
  correlated noise model (BSC, Z-channel, reverse Z-channel).

The paper asks for "relative distance 0.99", which the Plotkin bound rules
out for binary codes with more than a handful of codewords; what the proof of
Theorem D.1 actually needs is decoding error polynomially small in ``n`` at
length Θ(log n), which ML decoding of these codes provides (see DESIGN.md).
"""

from repro.coding.code import BlockCode
from repro.coding.repetition import RepetitionCode
from repro.coding.hadamard import HadamardCode
from repro.coding.random_code import GreedyRandomCode
from repro.coding.ml import MLDecoder, MinDistanceDecoder

__all__ = [
    "BlockCode",
    "RepetitionCode",
    "HadamardCode",
    "GreedyRandomCode",
    "MLDecoder",
    "MinDistanceDecoder",
]
