"""Walsh–Hadamard code.

The codeword of a ``k``-bit message ``s`` is the evaluation of the parity
``⟨s, j⟩ mod 2`` at every ``j ∈ {0,1}^k``, giving length ``2^k`` and relative
distance exactly 1/2 between distinct codewords — the best possible for this
many codewords by the Plotkin bound.

Two properties make it attractive for the owners phase:

* message 0 encodes to the all-zero word, which is what the channel shows
  when *nobody* beeps — so "silence" is a codeword for free;
* every nonzero codeword has weight exactly ``2^{k-1}``, i.e. it is as far
  from silence as from any other codeword.

The price is rate: length ``2^k`` is exponential in the message length, so
for symbols over ``[n]`` the codeword length is Θ(n) rather than Θ(log n).
The owners phase uses it only for small alphabets / ablations; the Θ(log n)
workhorse is :class:`~repro.coding.random_code.GreedyRandomCode`.
"""

from __future__ import annotations

import math

from repro.coding.code import BlockCode
from repro.util.bits import BitWord

__all__ = ["HadamardCode"]


def _parity(value: int) -> int:
    """Parity of the set bits of ``value``."""
    return bin(value).count("1") & 1


class HadamardCode(BlockCode):
    """Codeword of ``s``: ``(⟨s, j⟩ mod 2)`` for ``j = 0 .. 2^k - 1``."""

    def __init__(self, num_symbols: int) -> None:
        k = max(1, math.ceil(math.log2(max(num_symbols, 2))))
        super().__init__(num_symbols, 1 << k)
        self.message_bits = k

    def encode(self, symbol: int) -> BitWord:
        self._check_symbol(symbol)
        return tuple(
            _parity(symbol & j) for j in range(self.codeword_length)
        )
