"""Abstract block code interface.

A block code here is simply an injective map from a finite symbol set
``{0, ..., num_symbols-1}`` to binary codewords of a fixed length.  Decoders
live separately (:mod:`repro.coding.ml`) because the right decoding rule
depends on the channel, not on the code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property

from repro.errors import CodingError, ConfigurationError
from repro.util.bits import BitWord, hamming_distance

__all__ = ["BlockCode"]


class BlockCode(ABC):
    """An injective map ``{0..num_symbols-1} -> {0,1}^codeword_length``."""

    def __init__(self, num_symbols: int, codeword_length: int) -> None:
        if num_symbols < 1:
            raise ConfigurationError(
                f"a code needs at least one symbol, got {num_symbols}"
            )
        if codeword_length < 1:
            raise ConfigurationError(
                f"codeword length must be positive, got {codeword_length}"
            )
        self.num_symbols = num_symbols
        self.codeword_length = codeword_length

    @abstractmethod
    def encode(self, symbol: int) -> BitWord:
        """The codeword of ``symbol``; raises on out-of-range symbols."""

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self.num_symbols:
            raise CodingError(
                f"symbol {symbol} out of range [0, {self.num_symbols})"
            )

    @cached_property
    def codewords(self) -> tuple[BitWord, ...]:
        """All codewords, indexed by symbol."""
        return tuple(self.encode(symbol) for symbol in range(self.num_symbols))

    def min_distance(self) -> int:
        """Minimum pairwise Hamming distance (O(num_symbols²) scan)."""
        words = self.codewords
        if len(words) < 2:
            return self.codeword_length
        best = self.codeword_length
        for index_a in range(len(words)):
            for index_b in range(index_a + 1, len(words)):
                distance = hamming_distance(words[index_a], words[index_b])
                if distance < best:
                    best = distance
        return best

    @property
    def rate(self) -> float:
        """Information rate in bits per channel use."""
        import math

        return math.log2(self.num_symbols) / self.codeword_length

    def validate_injective(self) -> None:
        """Raise :class:`CodingError` if two symbols share a codeword."""
        seen: dict[BitWord, int] = {}
        for symbol, word in enumerate(self.codewords):
            if word in seen:
                raise CodingError(
                    f"symbols {seen[word]} and {symbol} share a codeword"
                )
            seen[word] = symbol
