"""Repetition code: each message bit beeped ``r`` times.

This is the code behind footnote 1 of the paper ("protocols of length
polynomial in n can trivially be simulated by repeating every round
O(log n) times and taking the majority") and serves as the simplest
baseline/ablation against the Hadamard and random codes.
"""

from __future__ import annotations

import math

from repro.coding.code import BlockCode
from repro.errors import ConfigurationError
from repro.util.bits import BitWord, int_to_bits

__all__ = ["RepetitionCode"]


class RepetitionCode(BlockCode):
    """Binary expansion of the symbol, each bit repeated ``repetitions`` times.

    Args:
        num_symbols: Alphabet size; symbols are written in
            ``ceil(log2(num_symbols))`` bits (minimum 1).
        repetitions: How many times each bit is repeated; the code's minimum
            distance equals ``repetitions``.
    """

    def __init__(self, num_symbols: int, repetitions: int) -> None:
        if repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {repetitions}"
            )
        width = max(1, math.ceil(math.log2(max(num_symbols, 2))))
        super().__init__(num_symbols, width * repetitions)
        self.width = width
        self.repetitions = repetitions

    def encode(self, symbol: int) -> BitWord:
        self._check_symbol(symbol)
        bits = int_to_bits(symbol, self.width)
        return tuple(bit for bit in bits for _ in range(self.repetitions))
