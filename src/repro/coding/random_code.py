"""Greedy Gilbert–Varshamov-style random code.

The owners phase needs a code over ``[chunk] ∪ {Next}`` with codewords of
length Θ(log n) whose ML decoding error is polynomially small.  A random
code achieves this: for a codebook of ``s`` words at length
``L = c·log2(s)``, random codewords are pairwise at distance ≈ L/2, and a
greedy filter guarantees a hard floor on the minimum distance (and, when
requested, a floor on codeword *weight*, i.e. distance from the all-zero
"silence" word).

The construction is deterministic given the seed, so every party builds the
identical codebook without communication — exactly the shared-knowledge
assumption of Algorithm 1.
"""

from __future__ import annotations

import math
import random

from repro.coding.code import BlockCode
from repro.errors import CodingError, ConfigurationError
from repro.rng import ensure_rng
from repro.util.bits import BitWord, hamming_distance

__all__ = ["GreedyRandomCode", "default_code_length"]

_MAX_SAMPLING_ATTEMPTS = 20_000


def default_code_length(num_symbols: int, rate_constant: float = 12.0) -> int:
    """The ``c·log n`` codeword length used by the owners phase.

    ``rate_constant`` is the ``c`` of the paper's ``C : ... → {0,1}^{c log n}``;
    12 gives decoding error comfortably below ``n^{-10}``-style targets at
    ε = 1/3 for the instance sizes a simulation can visit.
    """
    if num_symbols < 1:
        raise ConfigurationError(f"num_symbols must be >= 1, got {num_symbols}")
    bits = max(1.0, math.log2(max(num_symbols, 2)))
    return max(8, math.ceil(rate_constant * bits))


class GreedyRandomCode(BlockCode):
    """Random codewords accepted greedily under distance/weight floors.

    Args:
        num_symbols: Alphabet size.
        codeword_length: Block length; defaults to
            :func:`default_code_length`.
        min_distance_fraction: Floor on pairwise distance as a fraction of
            the length (default 0.35 — comfortably satisfied by random words at
            these codebook sizes, and enough for ML decoding).
        min_weight_fraction: Floor on each codeword's Hamming weight,
            guaranteeing separation from the all-zero silence word.
        include_zero_word: Reserve symbol 0 for the all-zero codeword
            (silence); the weight floor then applies to symbols ≥ 1 only.
        seed: Construction seed (shared by all parties).
    """

    def __init__(
        self,
        num_symbols: int,
        codeword_length: int | None = None,
        *,
        min_distance_fraction: float = 0.35,
        min_weight_fraction: float = 0.30,
        include_zero_word: bool = False,
        seed: int = 0,
    ) -> None:
        length = (
            codeword_length
            if codeword_length is not None
            else default_code_length(num_symbols)
        )
        super().__init__(num_symbols, length)
        if not 0.0 <= min_distance_fraction <= 0.5:
            raise ConfigurationError(
                "min_distance_fraction must be in [0, 0.5], got "
                f"{min_distance_fraction}"
            )
        if not 0.0 <= min_weight_fraction <= 0.5:
            raise ConfigurationError(
                "min_weight_fraction must be in [0, 0.5], got "
                f"{min_weight_fraction}"
            )
        self.min_distance_floor = math.ceil(min_distance_fraction * length)
        self.min_weight_floor = math.ceil(min_weight_fraction * length)
        self.include_zero_word = include_zero_word
        self._codewords = self._construct(ensure_rng(seed))

    def _construct(self, rng: random.Random) -> tuple[BitWord, ...]:
        words: list[BitWord] = []
        if self.include_zero_word:
            words.append((0,) * self.codeword_length)
        attempts = 0
        while len(words) < self.num_symbols:
            attempts += 1
            if attempts > _MAX_SAMPLING_ATTEMPTS:
                raise CodingError(
                    "could not construct the codebook: length "
                    f"{self.codeword_length} too short for "
                    f"{self.num_symbols} symbols at distance floor "
                    f"{self.min_distance_floor}; increase the length or "
                    "lower the floors"
                )
            candidate = tuple(
                rng.getrandbits(1) for _ in range(self.codeword_length)
            )
            if sum(candidate) < self.min_weight_floor:
                continue
            if any(
                hamming_distance(candidate, existing)
                < self.min_distance_floor
                for existing in words
            ):
                continue
            words.append(candidate)
        return tuple(words)

    def encode(self, symbol: int) -> BitWord:
        self._check_symbol(symbol)
        return self._codewords[symbol]
