"""Channel-aware decoders.

:class:`MLDecoder` implements maximum-likelihood decoding for any correlated
noise model (:class:`~repro.core.formal.NoiseModel`): given per-bit flip
probabilities ``up = Pr[0→1]`` and ``down = Pr[1→0]``, the likelihood of a
codeword factorises over positions, so decoding is a scan over the (small)
codebook maximising the log-likelihood.

For the symmetric BSC (``up == down < 1/2``) this coincides with
minimum-Hamming-distance decoding; for the Z-channels of the one-sided
models it differs crucially: e.g. under 0→1 noise a received 0 *proves* the
sent bit was 0, so codewords with a 1 there are eliminated outright.
:class:`MinDistanceDecoder` is kept as the classic baseline/ablation.

Implementation note: decoding is the hottest loop of the owners phase (one
decode per iteration, a likelihood per codeword).  Both decoders therefore
work on integer masks (one byte per position, packed by ``bytes`` at C
speed): a word's likelihood needs only the four counts
``n_{sent,received}``, all derivable from three popcounts —
``n11 = |cw & rc|``, ``n10 = |cw| - n11``, ``n01 = |rc| - n11``,
``n00 = L - |cw| - |rc| + n11`` — turning an O(L) Python loop per codeword
into O(1) big-int arithmetic, inlined in :meth:`MLDecoder.decode` when
every transition probability is nonzero.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.coding.code import BlockCode
from repro.core.formal import NoiseModel
from repro.errors import DecodingError

__all__ = ["MLDecoder", "MinDistanceDecoder"]

_NEG_INF = float("-inf")


def _log(p: float) -> float:
    return math.log(p) if p > 0.0 else _NEG_INF


def _word_to_int(word: Sequence[int]) -> int:
    """Pack a 0/1 word into an integer mask, one *byte* per position.

    Byte-per-position (via ``bytes``, a single C-level copy) rather than
    bit-per-position: ``&``, ``^`` and ``bit_count()`` over 0/1 bytes
    yield exactly the same agreement counts, and packing a Python bit
    sequence into bytes is an order of magnitude cheaper than a shift
    loop.  Callers must pass bits in {0, 1} — everything upstream
    (codeword encoders, the engine's ``validate_bit``) guarantees it.
    """
    return int.from_bytes(bytes(word), "big")


class MLDecoder:
    """Maximum-likelihood decoder for a codebook over a correlated channel.

    Args:
        code: The codebook.
        noise: Flip probabilities of the channel the codewords traverse.

    Codeword masks and per-pair log-likelihood weights are precomputed;
    decoding a word is O(num_symbols) popcount arithmetic.
    """

    def __init__(self, code: BlockCode, noise: NoiseModel) -> None:
        self.code = code
        self.noise = noise
        # weights[sent][received] = log Pr[receive | sent]
        self._weights = [
            [
                _log(noise.round_probability(sent, received))
                for received in (0, 1)
            ]
            for sent in (0, 1)
        ]
        self._length = code.codeword_length
        self._masks = [
            _word_to_int(code.encode(symbol))
            for symbol in range(code.num_symbols)
        ]
        self._mask_weights = [mask.bit_count() for mask in self._masks]
        self._mask_pairs = list(zip(self._masks, self._mask_weights))
        # When every transition has nonzero probability the -inf guards in
        # _score are dead and decode() can inline the scoring loop.
        self._finite_weights = all(
            term != _NEG_INF for row in self._weights for term in row
        )
        # Decoded symbol per received mask.  decode() is a pure function
        # of the mask, and under correlated noise every party of a round
        # receives the same word, so all but the first of n decodes per
        # owners-phase iteration are dict hits.
        self._decoded: dict[int, int] = {}

    def _score(self, mask: int, weight: int, received: int, ones: int) -> float:
        """Log-likelihood from the four agreement counts (see module
        docstring); -inf as soon as a forbidden transition occurs."""
        n11 = (mask & received).bit_count()
        n10 = weight - n11
        n01 = ones - n11
        n00 = self._length - weight - ones + n11
        weights = self._weights
        total = 0.0
        for count, term in (
            (n11, weights[1][1]),
            (n10, weights[1][0]),
            (n01, weights[0][1]),
            (n00, weights[0][0]),
        ):
            if count:
                if term == _NEG_INF:
                    return _NEG_INF
                total += count * term
        return total

    def log_likelihood(self, symbol: int, received: Sequence[int]) -> float:
        """log Pr[received | codeword of ``symbol`` was sent]."""
        if len(received) != self._length:
            raise DecodingError(
                f"received word has length {len(received)}, codewords have "
                f"length {self._length}"
            )
        if not 0 <= symbol < self.code.num_symbols:
            raise DecodingError(
                f"symbol {symbol} out of range [0, {self.code.num_symbols})"
            )
        received_mask = _word_to_int(received)
        return self._score(
            self._masks[symbol],
            self._mask_weights[symbol],
            received_mask,
            received_mask.bit_count(),
        )

    def decode(self, received: Sequence[int]) -> int:
        """The ML symbol for ``received``.

        Ties break toward the smaller symbol index (deterministic, so all
        parties of a correlated-noise execution decode identically).  If
        every codeword has likelihood zero — possible only when the word was
        corrupted in a direction the model forbids — falls back to minimum
        Hamming distance, again deterministically.
        """
        if len(received) != self._length:
            raise DecodingError(
                f"received word has length {len(received)}, codewords have "
                f"length {self._length}"
            )
        received_mask = _word_to_int(received)
        cached = self._decoded.get(received_mask)
        if cached is not None:
            return cached
        ones = received_mask.bit_count()
        best_symbol = -1
        best_score = _NEG_INF
        if self._finite_weights:
            # The hot loop of the owners phase (one decode per iteration).
            # Inlined _score with the -inf guards removed: the additions
            # run in the same order, and a zero count adds ±0.0 exactly,
            # so scores — and therefore decoded symbols, including ties —
            # are bit-identical to the guarded version.
            (w00, w01), (w10, w11) = self._weights
            length = self._length
            symbol = 0
            for mask, weight in self._mask_pairs:
                n11 = (mask & received_mask).bit_count()
                score = (
                    n11 * w11
                    + (weight - n11) * w10
                    + (ones - n11) * w01
                    + (length - weight - ones + n11) * w00
                )
                if score > best_score:
                    best_score = score
                    best_symbol = symbol
                symbol += 1
        else:
            for symbol, (mask, weight) in enumerate(self._mask_pairs):
                score = self._score(mask, weight, received_mask, ones)
                if score > best_score:
                    best_score = score
                    best_symbol = symbol
        if best_symbol >= 0 and best_score > _NEG_INF:
            decoded = best_symbol
        else:
            decoded = MinDistanceDecoder(self.code).decode(received)
        if len(self._decoded) < 1 << 16:
            self._decoded[received_mask] = decoded
        return decoded


class MinDistanceDecoder:
    """Classic nearest-codeword decoding (the BSC-optimal rule)."""

    def __init__(self, code: BlockCode) -> None:
        self.code = code
        self._length = code.codeword_length
        self._masks = [
            _word_to_int(code.encode(symbol))
            for symbol in range(code.num_symbols)
        ]

    def decode(self, received: Sequence[int]) -> int:
        if len(received) != self._length:
            raise DecodingError(
                f"received word has length {len(received)}, codewords have "
                f"length {self._length}"
            )
        received_mask = _word_to_int(received)
        best_symbol = 0
        best_distance = self._length + 1
        for symbol, mask in enumerate(self._masks):
            distance = (mask ^ received_mask).bit_count()
            if distance < best_distance:
                best_distance = distance
                best_symbol = symbol
        return best_symbol
