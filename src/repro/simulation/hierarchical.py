"""The Appendix D.2 hierarchy: ``A_l`` with binary-search progress checks.

This is the paper's actual construction (following [EKS18]), of which
:class:`~repro.simulation.chunked.ChunkCommitSimulator` is the simplified
per-chunk-verified variant:

* ``A_0`` simulates the *next* chunk of the noiseless protocol — phase 1
  repetition + phase 2 finding owners (Algorithm 1) — and appends it to the
  working prefix **without verifying it**.
* ``A_l`` (l > 0) runs ``A_{l-1}`` twice, then a **progress check**: the
  parties binary-search for the longest prefix of the working chunks that
  is consistent with everyone's beeps and owner claims, and truncate to it.
  Each membership query of the binary search is an error-flag OR vote;
  votes at level ``l`` are repeated ``Θ(log n) + c·l`` times, so a check at
  level ``l`` fails with probability exponentially small in ``l`` — the
  geometric error/cost balance that makes the paper's progress measure
  double from level to level.

Consistency of a prefix is monotone (a bad chunk poisons every longer
prefix), so binary search applies; a party's flag for a prefix is the OR of
its per-chunk flags (:func:`~repro.simulation.chunk_common.chunk_error_flag`),
computable locally because each party remembers its own beeps per appended
chunk (beeps for chunk ``c`` depend only on chunks before ``c``, and
truncation only ever removes suffixes, so remembered beeps stay valid).

The recursion depth is ``L = ceil(log₂(num_chunks)) + extra`` so that the
``2^L`` leaf invocations comfortably cover ``num_chunks`` first-time
simulations plus retries of truncated chunks.  Leaves past the protocol's
end are idle (zero rounds; the decision is shared state, so lock-step is
preserved).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.channels.base import Channel
from repro.coding.ml import MLDecoder
from repro.core.engine import run_protocol
from repro.core.party import Party
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.errors import ConfigurationError, ProtocolError
from repro.simulation.base import SimulationReport, Simulator
from repro.simulation.chunk_common import (
    InnerReplay,
    SimulatedChunk,
    simulate_chunk_with_owners,
)
from repro.simulation.owners import build_owners_code
from repro.simulation.primitives import repeated_bit

__all__ = ["HierarchicalSimulator"]


class _HierarchicalParty(Party):
    """One party of the A_L hierarchy."""

    def __init__(
        self,
        party_index: int,
        n_parties: int,
        make_inner: Callable[[], Party],
        inner_length: int,
        chunk_length: int,
        repetitions: int,
        verification_repetitions: int,
        level_repetition_step: int,
        depth: int,
        code,
        decoder: MLDecoder,
        report: SimulationReport,
        trace: list | None = None,
    ) -> None:
        self.party_index = party_index
        self.n_parties = n_parties
        self.make_inner = make_inner
        self.inner_length = inner_length
        self.chunk_length = chunk_length
        self.repetitions = repetitions
        self.verification_repetitions = verification_repetitions
        self.level_repetition_step = level_repetition_step
        self.depth = depth
        self.code = code
        self.decoder = decoder
        self.report = report
        # Trace log (party 0 only; pure bookkeeping over shared state,
        # consumes no RNG draws — see repro.observe).
        self.trace = trace
        # Working state (chunks[i].pi / .owners are shared-consistent).
        self.chunks: list[SimulatedChunk] = []
        self._leaf_calls = 0
        self._truncated_chunks = 0
        self._checks = 0

    # ------------------------------------------------------------------
    # Working-prefix helpers
    # ------------------------------------------------------------------

    def _working_rounds(self) -> int:
        return sum(len(chunk.pi) for chunk in self.chunks)

    def _working_bits(self, num_chunks: int) -> list[int]:
        bits: list[int] = []
        for chunk in self.chunks[:num_chunks]:
            bits.extend(chunk.pi)
        return bits

    def _prefix_flag(self, num_chunks: int) -> int:
        """1 iff this party sees an inconsistency in the first
        ``num_chunks`` working chunks."""
        for chunk in self.chunks[:num_chunks]:
            if chunk.party_flag(self.party_index):
                return 1
        return 0

    # ------------------------------------------------------------------
    # The recursion
    # ------------------------------------------------------------------

    def _leaf(self):
        """``A_0``: simulate the next chunk (if any) and append it."""
        self._leaf_calls += 1
        done = self._working_rounds()
        if done >= self.inner_length:
            return  # idle leaf; shared decision, zero rounds
        chunk_rounds = min(self.chunk_length, self.inner_length - done)
        replay = InnerReplay(self.make_inner, self._working_bits(len(self.chunks)))
        chunk = yield from simulate_chunk_with_owners(
            self.party_index,
            self.n_parties,
            replay,
            chunk_rounds,
            self.repetitions,
            self.code,
            self.decoder,
        )
        self.chunks.append(chunk)
        if self.trace is not None and self.party_index == 0:
            owners = chunk.owners
            unowned = sum(
                1
                for position, value in enumerate(chunk.pi)
                if value and position not in owners.owners
            )
            self.trace.append(
                {
                    "kind": "leaf",
                    "attempt": self._leaf_calls,
                    "committed_rounds": done,
                    "chunk_rounds": chunk_rounds,
                    "sim_rounds": chunk_rounds * self.repetitions,
                    "owner_iterations": owners.iterations,
                    "owner_rounds": owners.iterations
                    * self.code.codeword_length,
                    "ones": sum(chunk.pi),
                    "owners_assigned": len(owners.owners),
                    "unowned_ones": unowned,
                    "flag": chunk.party_flag(self.party_index),
                }
            )

    def _progress_check(self, level: int):
        """Binary-search the longest consistent working prefix; truncate.

        Votes are repeated ``verification_repetitions +
        level_repetition_step · level`` times — the level-scaled reliability
        of Appendix D.2.
        """
        self._checks += 1
        votes = self.verification_repetitions + (
            self.level_repetition_step * level
        )
        chunks_before = len(self.chunks)
        low, high = 0, len(self.chunks)
        while low < high:
            mid = (low + high + 1) // 2
            flag = self._prefix_flag(mid)
            verdict = yield from repeated_bit(flag, votes)
            if verdict == 0:
                low = mid
            else:
                high = mid - 1
        if low < len(self.chunks):
            self._truncated_chunks += len(self.chunks) - low
            del self.chunks[low:]
        if self.trace is not None and self.party_index == 0:
            self.trace.append(
                {
                    "kind": "check",
                    "level": level,
                    "votes": votes,
                    "chunks_before": chunks_before,
                    "chunks_after": len(self.chunks),
                    "truncated": chunks_before - len(self.chunks),
                }
            )

    def _run_level(self, level: int):
        if level == 0:
            yield from self._leaf()
            return
        yield from self._run_level(level - 1)
        yield from self._run_level(level - 1)
        yield from self._progress_check(level)

    def run(self):
        yield from self._run_level(self.depth)

        if self.party_index == 0:
            self.report.chunk_attempts = self._leaf_calls
            self.report.chunk_commits = len(self.chunks)
            self.report.rewinds = self._truncated_chunks
            self.report.completed = (
                self._working_rounds() == self.inner_length
            )
            self.report.extra["progress_checks"] = self._checks

        committed = self._working_bits(len(self.chunks))
        committed = committed[: self.inner_length]
        padded = committed + [0] * (self.inner_length - len(committed))
        replay = InnerReplay(self.make_inner, padded)
        if not replay.finished:
            raise ProtocolError(
                "inner protocol did not finish at its declared length"
            )
        return replay.output


class _HierarchicalProtocol(Protocol):
    def __init__(self, party_kwargs: dict, n_parties: int) -> None:
        super().__init__(n_parties)
        self.party_kwargs = party_kwargs

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        inputs = list(inputs)
        inner = self.party_kwargs["inner"]

        def make_factory(index: int) -> Callable[[], Party]:
            def make() -> Party:
                return inner.create_parties(
                    inputs, shared_seed=shared_seed
                )[index]

            return make

        kwargs = {
            key: value
            for key, value in self.party_kwargs.items()
            if key != "inner"
        }
        return [
            _HierarchicalParty(
                party_index=index,
                n_parties=self.n_parties,
                make_inner=make_factory(index),
                **kwargs,
            )
            for index in range(self.n_parties)
        ]


class HierarchicalSimulator(Simulator):
    """The faithful Appendix-D.2 scheme: ``A_L`` with progress checks.

    Compared with :class:`~repro.simulation.chunked.ChunkCommitSimulator`:

    * chunks are appended *optimistically* (no per-chunk verification) —
      errors are caught later by a progress check at some level;
    * progress checks re-examine the *entire* working prefix by binary
      search, so even an error that slipped past lower levels is eventually
      rolled back — the property that extends Theorem 1.2 beyond
      poly(n)-length protocols;
    * check reliability scales with the level (``+ level_repetition_step``
      votes per level), keeping the total check cost geometric.

    Extra knobs (on top of :class:`SimulationParameters`): the recursion
    depth is ``ceil(log₂ num_chunks) + extra_levels``.
    """

    def __init__(
        self,
        params=None,
        noise_model=None,
        on_incomplete: str = "pad",
        *,
        extra_levels: int = 1,
        level_repetition_step: int = 2,
    ) -> None:
        super().__init__(params, noise_model, on_incomplete)
        if extra_levels < 0:
            raise ConfigurationError("extra_levels must be >= 0")
        if level_repetition_step < 0:
            raise ConfigurationError("level_repetition_step must be >= 0")
        self.extra_levels = extra_levels
        self.level_repetition_step = level_repetition_step

    def simulate(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        channel: Channel,
        *,
        shared_seed: int | None = None,
        observe: "Observer | None" = None,
    ) -> ExecutionResult:
        if not channel.correlated:
            raise ConfigurationError(
                "HierarchicalSimulator relies on a shared transcript and "
                "requires a correlated channel"
            )
        inner_length = self._require_fixed_length(protocol)
        noise = self._resolve_noise_model(channel)
        epsilon = max(noise.up, noise.down)

        n_parties = protocol.n_parties
        chunk_length = self.params.resolve_chunk_length(n_parties)
        repetitions = self.params.resolve_repetitions(n_parties, epsilon)
        verification_repetitions = (
            self.params.resolve_verification_repetitions(n_parties, epsilon)
        )
        num_chunks = max(1, math.ceil(inner_length / chunk_length))
        depth = math.ceil(math.log2(num_chunks)) + self.extra_levels
        code = build_owners_code(
            chunk_length,
            rate_constant=self.params.code_rate_constant,
            seed=self.params.code_seed,
        )
        decoder = MLDecoder(code, noise)

        report = SimulationReport(
            scheme=type(self).__name__,
            inner_length=inner_length,
            extra={
                "repetitions": repetitions,
                "verification_repetitions": verification_repetitions,
                "chunk_length": chunk_length,
                "depth": depth,
                "leaf_budget": 1 << depth,
                "codeword_length": code.codeword_length,
            },
        )
        trace: list | None = [] if self._tracing(observe) else None
        wrapped = _HierarchicalProtocol(
            {
                "inner": protocol,
                "inner_length": inner_length,
                "chunk_length": chunk_length,
                "repetitions": repetitions,
                "verification_repetitions": verification_repetitions,
                "level_repetition_step": self.level_repetition_step,
                "depth": depth,
                "code": code,
                "decoder": decoder,
                "report": report,
                "trace": trace,
            },
            n_parties=n_parties,
        )
        result = run_protocol(
            wrapped,
            inputs,
            channel,
            shared_seed=shared_seed,
            record_sent=False,
            observe=observe,
        )
        report.simulated_rounds = result.rounds
        result.metadata["report"] = report
        if trace is not None:
            self._emit_hierarchy_events(observe, trace)
            self._emit_simulation(observe, report)
        self._enforce_completion(report)
        return result

    @staticmethod
    def _emit_hierarchy_events(observe: "Observer", trace: list) -> None:
        """Replay party 0's log: non-idle leaves as ``chunk_attempt`` +
        ``owners_phase`` (no verdict — verification arrives later via a
        progress check), checks as ``progress_check``."""
        for entry in trace:
            if entry["kind"] == "leaf":
                observe.emit(
                    "chunk_attempt",
                    attempt=entry["attempt"],
                    committed_rounds=entry["committed_rounds"],
                    chunk_rounds=entry["chunk_rounds"],
                    sim_rounds=entry["sim_rounds"],
                    owner_rounds=entry["owner_rounds"],
                )
                observe.emit(
                    "owners_phase",
                    attempt=entry["attempt"],
                    iterations=entry["owner_iterations"],
                    owner_rounds=entry["owner_rounds"],
                    ones=entry["ones"],
                    owners_assigned=entry["owners_assigned"],
                    unowned_ones=entry["unowned_ones"],
                    disagreement=bool(entry["flag"]),
                )
            else:
                observe.emit(
                    "progress_check",
                    level=entry["level"],
                    votes=entry["votes"],
                    chunks_before=entry["chunks_before"],
                    chunks_after=entry["chunks_after"],
                    truncated=entry["truncated"],
                )
