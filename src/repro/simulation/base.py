"""Simulator interface and shared plumbing.

A :class:`Simulator` takes a protocol written for the noiseless beeping
channel and executes it over a noisy channel, returning the usual
:class:`~repro.core.result.ExecutionResult` whose ``metadata`` carries a
:class:`SimulationReport` (overhead, retries, committed progress).

:func:`infer_noise_model` recovers the per-round flip probabilities of the
standard channels so simulators can build matched ML decoders without the
caller repeating the channel's parameters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.channels.base import Channel
from repro.channels.burst import BurstNoiseChannel
from repro.channels.correlated import CorrelatedNoiseChannel
from repro.channels.independent import IndependentNoiseChannel
from repro.channels.noiseless import NoiselessChannel
from repro.channels.one_sided import (
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.channels.reduction import SharedFlipReductionChannel
from repro.core.formal import NoiseModel
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.errors import ConfigurationError
from repro.simulation.params import SimulationParameters

__all__ = ["Simulator", "SimulationReport", "infer_noise_model"]


def infer_noise_model(channel: Channel) -> NoiseModel:
    """The per-round flip probabilities of a standard channel.

    Raises :class:`ConfigurationError` for channel types whose noise law is
    not known here — pass an explicit ``noise_model`` to the simulator in
    that case.
    """
    if isinstance(channel, NoiselessChannel):
        return NoiseModel(up=0.0, down=0.0)
    if isinstance(channel, OneSidedNoiseChannel):
        return NoiseModel.one_sided(channel.epsilon)
    if isinstance(channel, SuppressionNoiseChannel):
        return NoiseModel.suppression(channel.epsilon)
    if isinstance(channel, SharedFlipReductionChannel):
        down, up = (
            channel.emulated_epsilon[0],
            channel.emulated_epsilon[1],
        )
        return NoiseModel(up=up, down=down)
    if isinstance(channel, (CorrelatedNoiseChannel, IndependentNoiseChannel)):
        return NoiseModel.two_sided(channel.epsilon)
    if isinstance(channel, BurstNoiseChannel):
        # The schemes are designed for i.i.d. noise; the stationary flip
        # rate is the honest i.i.d. approximation of a bursty channel and
        # what experiment E10 hands them on purpose.
        return NoiseModel.two_sided(channel.stationary_flip_rate)
    # Imported lazily: the network package builds on the channel layer
    # and imports this module for its local-broadcast scheme.
    from repro.network.channel import NetworkBeepingChannel

    if isinstance(channel, NetworkBeepingChannel):
        # Per-node flips act both ways; per-edge erasures only suppress
        # (a reception can lose its sole supporting beep, never gain one).
        up = channel.max_epsilon
        down = min(0.999, channel.max_epsilon + channel.edge_epsilon)
        return NoiseModel(up=up, down=down)
    raise ConfigurationError(
        f"cannot infer a noise model for {type(channel).__name__}; "
        "pass noise_model explicitly"
    )


@dataclass
class SimulationReport:
    """Bookkeeping a simulator exposes through ``result.metadata``.

    Attributes:
        scheme: Simulator class name.
        inner_length: Rounds of the simulated noiseless protocol.
        simulated_rounds: Channel rounds actually used.
        overhead: ``simulated_rounds / inner_length`` (the quantity
            Theorems 1.1/1.2 bound).
        completed: Whether the full inner protocol was committed.
        chunk_attempts: Chunk attempts run (chunk-commit scheme).
        chunk_commits: Chunks committed (chunk-commit scheme).
        rewinds: Rewind steps taken (rewind scheme).
        extra: Scheme-specific details.
    """

    scheme: str
    inner_length: int
    simulated_rounds: int = 0
    completed: bool = True
    chunk_attempts: int = 0
    chunk_commits: int = 0
    rewinds: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def overhead(self) -> float:
        if self.inner_length == 0:
            return 0.0
        return self.simulated_rounds / self.inner_length

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable view (for results artifacts and logs)."""
        return {
            "scheme": self.scheme,
            "inner_length": self.inner_length,
            "simulated_rounds": self.simulated_rounds,
            "overhead": self.overhead,
            "completed": self.completed,
            "chunk_attempts": self.chunk_attempts,
            "chunk_commits": self.chunk_commits,
            "rewinds": self.rewinds,
            "extra": dict(self.extra),
        }


class Simulator(ABC):
    """Base class of the noise-resilient simulation schemes.

    Args:
        params: Tunables; defaults are the paper-guided choices.
        noise_model: Flip probabilities the scheme should assume; ``None``
            infers them from the channel at ``simulate`` time.
        on_incomplete: What to do when the scheme's round budget runs out
            before the whole inner protocol is committed — ``"pad"``
            (default: return best-effort outputs over a zero-padded
            transcript, with ``report.completed = False``) or ``"raise"``
            (raise :class:`~repro.errors.SimulationBudgetExceeded`
            carrying the committed prefix length).
    """

    def __init__(
        self,
        params: SimulationParameters | None = None,
        noise_model: NoiseModel | None = None,
        on_incomplete: str = "pad",
    ) -> None:
        if on_incomplete not in ("pad", "raise"):
            raise ConfigurationError(
                f"on_incomplete must be 'pad' or 'raise', got "
                f"{on_incomplete!r}"
            )
        self.params = params if params is not None else SimulationParameters()
        self.noise_model = noise_model
        self.on_incomplete = on_incomplete

    def _enforce_completion(self, report: "SimulationReport") -> None:
        """Apply the ``on_incomplete`` policy after an execution."""
        if self.on_incomplete == "raise" and not report.completed:
            from repro.errors import SimulationBudgetExceeded

            committed = int(
                report.chunk_commits
                * report.extra.get("chunk_length", 0)
            )
            raise SimulationBudgetExceeded(
                f"{report.scheme} exhausted its budget after "
                f"{report.chunk_attempts} attempts with only "
                f"{committed} of {report.inner_length} rounds committed",
                committed_rounds=committed,
            )

    def _resolve_noise_model(self, channel: Channel) -> NoiseModel:
        if self.noise_model is not None:
            return self.noise_model
        return infer_noise_model(channel)

    @staticmethod
    def _tracing(observe: "Observer | None") -> bool:
        """Whether to collect trace detail for this ``simulate`` call."""
        return observe is not None and observe.enabled

    def _emit_simulation(
        self, observe: "Observer", report: "SimulationReport"
    ) -> None:
        """The per-``simulate`` summary event, shared by every scheme."""
        observe.emit(
            "simulation",
            scheme=report.scheme,
            inner_length=report.inner_length,
            simulated_rounds=report.simulated_rounds,
            overhead=report.overhead,
            completed=report.completed,
            chunk_attempts=report.chunk_attempts,
            chunk_commits=report.chunk_commits,
            rewinds=report.rewinds,
        )

    @staticmethod
    def _require_fixed_length(protocol: Protocol) -> int:
        length = protocol.length()
        if length is None:
            raise ConfigurationError(
                "simulators need the inner protocol's length to be fixed "
                "and known (Protocol.length() returned None)"
            )
        return length

    @abstractmethod
    def simulate(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        channel: Channel,
        *,
        shared_seed: int | None = None,
        observe: "Observer | None" = None,
    ) -> ExecutionResult:
        """Run ``protocol`` on ``inputs`` over the noisy ``channel``.

        Returns an :class:`ExecutionResult` whose ``outputs`` aim to equal
        the noiseless execution's outputs, and whose
        ``metadata['report']`` is a :class:`SimulationReport`.

        ``observe`` (optional :class:`~repro.observe.Observer`) receives
        the scheme's trace events — ``simulation`` always, plus
        scheme-specific detail (``chunk_attempt`` / ``owners_phase`` /
        ``progress_check`` / ``rewind``) — and is forwarded to the engine
        for its ``protocol_run`` / ``noise_flip`` events.  Tracing
        consumes no RNG draws; traced runs are bitwise identical.
        """
