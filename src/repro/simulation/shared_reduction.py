"""The A.1.2 reduction as a *protocol* wrapper (shared randomness).

Appendix A.1.2 shows how parties sharing a random string can run any
protocol designed for the two-sided ε = 1/4 channel over the *one-sided*
ε = 1/3 channel: whenever they receive a 1, all parties flip it to 0 with
probability 1/4 using the next shared coin.  The two flip sources compose
to exactly the two-sided ε = 1/4 law (see
:mod:`repro.channels.reduction` for the arithmetic; that module implements
the same construction as a channel).

This module implements the construction where the paper actually puts it:
in the *parties*.  :class:`OneSidedReductionProtocol` wraps any inner
protocol; each wrapped party derives an identical coin stream from the
execution's ``shared_seed`` (the shared random string of the randomized-
protocol definition in A.1.1) and applies the common down-flips before
handing the bit to its inner party.  Because every party flips the same
rounds, the inner parties still see a common transcript — the wrapped
protocol remains a correlated-model protocol.

This is the one place in the package where the ``shared_seed`` plumbing
carries real semantics, so its tests double as the shared-randomness
contract tests of the engine.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.core.party import Party
from repro.core.protocol import Protocol
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import derive_seed

__all__ = ["OneSidedReductionProtocol"]

_COIN_STREAM_LABEL = "a12-shared-downflips"


class _ReductionParty(Party):
    """Runs an inner party, down-flipping received 1s with shared coins."""

    def __init__(self, inner: Party, p_down: float, coin_seed: int) -> None:
        self.inner = inner
        self.p_down = p_down
        self.coin_seed = coin_seed

    def run(self):
        # Every party seeds an identical generator, so the coin sequence
        # (one coin per round, drawn whether or not it is used... no:
        # drawn only on received 1s would desynchronise parties on
        # divergent views; under the correlated model views agree, and we
        # additionally draw one coin every round so the stream position
        # is round-indexed and view-independent).
        coins = random.Random(self.coin_seed)
        program = self.inner.run()
        try:
            bit = next(program)
        except StopIteration as stop:
            return stop.value
        while True:
            received = yield bit
            coin = coins.random()
            if received == 1 and coin < self.p_down:
                received = 0
            try:
                bit = program.send(received)
            except StopIteration as stop:
                return stop.value


class OneSidedReductionProtocol(Protocol):
    """Wrap a two-sided-channel protocol to run over a one-sided channel.

    With the paper's parameters (inner designed for two-sided ε = 1/4, run
    over the one-sided ε = 1/3 channel, ``p_down = 1/4``) the inner
    protocol sees exactly the channel law it was designed for.

    Args:
        inner: The protocol to wrap.
        p_down: Shared-coin probability of flipping a received 1 to 0
            (paper: 1/4).

    The execution **must** provide a ``shared_seed`` — the construction is
    exactly a use of the shared random string, and running it without one
    is a logic error (raised at party-creation time).
    """

    def __init__(self, inner: Protocol, p_down: float = 0.25) -> None:
        super().__init__(inner.n_parties)
        if not 0.0 <= p_down < 1.0:
            raise ConfigurationError(
                f"p_down must be in [0, 1), got {p_down}"
            )
        self.inner = inner
        self.p_down = p_down

    def length(self) -> int | None:
        return self.inner.length()

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        if shared_seed is None:
            raise ProtocolError(
                "OneSidedReductionProtocol needs shared randomness: pass "
                "shared_seed to the execution (A.1.2's shared string)"
            )
        coin_seed = derive_seed(shared_seed, _COIN_STREAM_LABEL)
        inner_parties = self.inner.create_parties(
            inputs, shared_seed=derive_seed(shared_seed, "inner")
        )
        return [
            _ReductionParty(inner, self.p_down, coin_seed)
            for inner in inner_parties
        ]
