"""Simulation parameters.

All tunables of the simulators live in one frozen dataclass so that a
benchmark sweep can vary a single knob while keeping everything else fixed,
and so tests can pin every constant explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["SimulationParameters", "repetitions_for"]


def repetitions_for(
    n_parties: int, epsilon: float, error_exponent: float = 3.0
) -> int:
    """The ``Θ(log n)`` repetition count for per-round majority voting.

    Chooses the smallest odd ``r`` with ``exp(-2 r (1/2 - ε)²) ≤ n^{-error_exponent}``
    (Hoeffding bound on a majority of ``r`` independent ε-noisy copies), so
    each simulated round errs with probability at most ``n^{-error_exponent}``
    and a union bound over a poly(n)-length protocol still vanishes.

    For ε ≥ 1/2 the majority carries no signal; that is a configuration
    error.
    """
    if not 0.0 <= epsilon < 0.5:
        raise ConfigurationError(
            f"repetition voting needs epsilon in [0, 0.5), got {epsilon}"
        )
    if n_parties < 1:
        raise ConfigurationError(f"n_parties must be >= 1, got {n_parties}")
    if epsilon == 0.0:
        return 1
    gap = 0.5 - epsilon
    needed = error_exponent * math.log(max(n_parties, 2)) / (2.0 * gap * gap)
    r = max(1, math.ceil(needed))
    return r if r % 2 == 1 else r + 1


@dataclass(frozen=True)
class SimulationParameters:
    """Knobs of the chunk-commit and rewind simulators.

    Attributes:
        repetitions: Per-round repetition count of the simulation phase;
            ``None`` derives it with :func:`repetitions_for` from the
            channel's ε and the protocol's party count.
        chunk_length: Virtual rounds per chunk; ``None`` uses the paper's
            choice, chunk = n (the party count).
        verification_repetitions: Rounds of the error-flag OR vote after
            each chunk; ``None`` derives Θ(log n) like ``repetitions``.
        code_rate_constant: The ``c`` in the owners-phase code length
            ``c·log₂(alphabet)``.
        code_seed: Seed of the shared owners-phase codebook.
        attempt_slack: The chunk-attempt budget is
            ``ceil(attempt_slack · num_chunks) + attempt_extra``.
        attempt_extra: See above; absorbs bad luck on short protocols.
        rewind_budget_factor: The rewind simulator runs
            ``ceil(rewind_budget_factor · T) + rewind_budget_extra``
            iterations (each = 1 simulation round + 1 vote round).
        rewind_budget_extra: See above.
        error_exponent: Target per-decision error is ``n^{-error_exponent}``.
    """

    repetitions: int | None = None
    chunk_length: int | None = None
    verification_repetitions: int | None = None
    code_rate_constant: float = 12.0
    code_seed: int = 0x5EED
    attempt_slack: float = 1.5
    attempt_extra: int = 8
    rewind_budget_factor: float = 3.0
    rewind_budget_extra: int = 32
    error_exponent: float = 3.0

    def __post_init__(self) -> None:
        if self.repetitions is not None and self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if self.chunk_length is not None and self.chunk_length < 1:
            raise ConfigurationError("chunk_length must be >= 1")
        if (
            self.verification_repetitions is not None
            and self.verification_repetitions < 1
        ):
            raise ConfigurationError("verification_repetitions must be >= 1")
        if self.code_rate_constant <= 0:
            raise ConfigurationError("code_rate_constant must be positive")
        if self.attempt_slack < 1.0:
            raise ConfigurationError("attempt_slack must be >= 1.0")
        if self.attempt_extra < 0:
            raise ConfigurationError("attempt_extra must be >= 0")
        if self.rewind_budget_factor < 1.0:
            raise ConfigurationError("rewind_budget_factor must be >= 1.0")
        if self.rewind_budget_extra < 0:
            raise ConfigurationError("rewind_budget_extra must be >= 0")

    def with_overrides(self, **changes: Any) -> "SimulationParameters":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **changes)

    def resolve_repetitions(self, n_parties: int, epsilon: float) -> int:
        """The effective per-round repetition count."""
        if self.repetitions is not None:
            return self.repetitions
        return repetitions_for(n_parties, epsilon, self.error_exponent)

    def resolve_chunk_length(self, n_parties: int) -> int:
        """The effective chunk length (paper: chunk = n)."""
        if self.chunk_length is not None:
            return self.chunk_length
        return max(1, n_parties)

    def resolve_verification_repetitions(
        self, n_parties: int, epsilon: float
    ) -> int:
        """The effective error-vote length."""
        if self.verification_repetitions is not None:
            return self.verification_repetitions
        return repetitions_for(n_parties, epsilon, self.error_exponent)
