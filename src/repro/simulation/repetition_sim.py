"""The repetition simulator (footnote 1 of the paper).

Every round of the noiseless protocol is repeated ``r`` times over the noisy
channel and each party feeds its inner protocol the majority of what it
heard.  With ``r = Θ(log n)`` each virtual round errs with probability
polynomially small in ``n``, so a union bound covers protocols of length
polynomial in ``n`` — which is why the paper calls this case "trivial" and
reserves the chunk/owners machinery for arbitrary lengths.

This scheme needs no shared transcript: each party majority-votes its *own*
receptions, so it runs unchanged over correlated and independent noise — it
is the workhorse of experiment E7's noise-model comparison.

Each virtual round is a single engine yield per party: the repeated beep
is one :class:`~repro.core.party.Burst` (via
:func:`~repro.simulation.primitives.repeated_bit`), so over independent
noise this exercises the sparse scheduler's per-party word-delivery path
end to end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.channels.base import Channel
from repro.core.engine import run_protocol
from repro.core.party import Burst, Party
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.simulation.base import SimulationReport, Simulator
from repro.simulation.primitives import repeated_bit

__all__ = ["RepetitionSimulator", "RepetitionWrappedProtocol"]


class _RepetitionParty(Party):
    """Runs an inner party, repeating each of its rounds ``repetitions``
    times and majority-decoding the channel's answers.

    Inner batch tokens pass straight through: an inner
    ``Burst(bit, count)`` becomes one ``Burst(bit, count·k)`` outer
    token, and the wake-up payload is majority-decoded per group of
    ``k`` receptions back into the ``count`` virtual heard bits the
    inner party expects — so token-sparse inner protocols (flooders,
    decided MIS nodes) stay sparse through the wrapper."""

    def __init__(self, inner: Party, repetitions: int) -> None:
        self.inner = inner
        self.repetitions = repetitions

    def run(self):
        k = self.repetitions
        program = self.inner.run()
        try:
            item = next(program)
        except StopIteration as stop:
            return stop.value
        while True:
            if isinstance(item, Burst):
                count = item.count
                heard = yield Burst(item.bit, count * k)
                decoded = bytes(
                    1
                    if 2 * sum(heard[group * k : (group + 1) * k]) > k
                    else 0
                    for group in range(count)
                )
            else:
                decoded = yield from repeated_bit(item, k)
            try:
                item = program.send(decoded)
            except StopIteration as stop:
                return stop.value


class RepetitionWrappedProtocol(Protocol):
    """``inner`` with every round repeated ``repetitions`` times.

    Exposed as a protocol (not only through the simulator) so that the
    lower-bound experiments can treat "repetition-hardened InputSet protocol
    truncated to a round budget" as just another protocol.
    """

    def __init__(self, inner: Protocol, repetitions: int) -> None:
        super().__init__(inner.n_parties)
        self.inner = inner
        self.repetitions = repetitions

    def length(self) -> int | None:
        inner_length = self.inner.length()
        if inner_length is None:
            return None
        return inner_length * self.repetitions

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        inner_parties = self.inner.create_parties(
            inputs, shared_seed=shared_seed
        )
        return [
            _RepetitionParty(inner, self.repetitions)
            for inner in inner_parties
        ]


class RepetitionSimulator(Simulator):
    """Simulate by per-round repetition + majority (footnote 1).

    The repetition count is ``params.repetitions`` when set, else derived as
    Θ(log n) from the channel's ε via
    :func:`~repro.simulation.params.repetitions_for`.
    """

    def simulate(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        channel: Channel,
        *,
        shared_seed: int | None = None,
        observe: "Observer | None" = None,
    ) -> ExecutionResult:
        inner_length = self._require_fixed_length(protocol)
        noise = self._resolve_noise_model(channel)
        # Repetition must beat the worse of the two flip directions.
        epsilon = max(noise.up, noise.down)
        repetitions = self.params.resolve_repetitions(
            protocol.n_parties, epsilon
        )
        wrapped = RepetitionWrappedProtocol(protocol, repetitions)
        result = run_protocol(
            wrapped,
            inputs,
            channel,
            shared_seed=shared_seed,
            record_sent=False,
            observe=observe,
        )
        report = SimulationReport(
            scheme=type(self).__name__,
            inner_length=inner_length,
            simulated_rounds=result.rounds,
            completed=True,
            extra={"repetitions": repetitions},
        )
        result.metadata["report"] = report
        if self._tracing(observe):
            self._emit_simulation(observe, report)
        return result
