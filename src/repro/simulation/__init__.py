"""Noise-resilient simulation schemes — the paper's upper bound machinery.

Given a protocol designed for the *noiseless* beeping channel, a simulator
produces an execution over a *noisy* channel whose outputs match the
noiseless execution with high probability.  Four schemes are provided:

* :class:`RepetitionSimulator` — footnote 1 of the paper: repeat every round
  ``r = Θ(log n)`` times and take the majority.  Simple, works over
  correlated *and* independent noise, and suffices for protocols of length
  polynomial in n.
* :class:`ChunkCommitSimulator` — the Theorem 1.2 scheme, iterative form:
  simulate the protocol in chunks; after each chunk run Algorithm 1's
  *finding owners* phase so every 1 in the chunk transcript has a party
  responsible for verifying it; then a verification round-trip decides
  commit vs. rewind.  O(log n) overhead for poly-length protocols.
* :class:`HierarchicalSimulator` — the faithful Appendix-D.2 form: chunks
  are appended optimistically and binary-search progress checks with
  level-scaled vote reliability truncate bad prefixes — the structure
  that extends the guarantee to arbitrary lengths.
* :class:`RewindSimulator` — the constant-overhead scheme the paper's §1.1
  asserts for *suppression* (1→0-only) noise: simulate one round at a time,
  alternate with a one-round error vote; under suppression noise every
  alarm is genuine, so a simple rewind random walk converges with constant
  overhead.  Running the very same scheme over 0→1 noise fails — the
  asymmetry measured by experiment E3.

All schemes share the sub-coroutine toolbox in
:mod:`repro.simulation.primitives` and the parameter bundle in
:mod:`repro.simulation.params`.
"""

from repro.simulation.params import SimulationParameters, repetitions_for
from repro.simulation.base import Simulator, SimulationReport
from repro.simulation.repetition_sim import RepetitionSimulator
from repro.simulation.owners import OwnersProtocol, owners_phase, OwnersResult
from repro.simulation.chunked import ChunkCommitSimulator
from repro.simulation.hierarchical import HierarchicalSimulator
from repro.simulation.rewind import RewindSimulator
from repro.simulation.shared_reduction import OneSidedReductionProtocol

__all__ = [
    "SimulationParameters",
    "repetitions_for",
    "Simulator",
    "SimulationReport",
    "RepetitionSimulator",
    "OwnersProtocol",
    "OwnersResult",
    "owners_phase",
    "ChunkCommitSimulator",
    "HierarchicalSimulator",
    "RewindSimulator",
    "OneSidedReductionProtocol",
]
