"""Sub-coroutines shared by the simulation schemes.

Parties are generators (yield the beeped bit, receive the channel bit), so
multi-round building blocks compose with ``yield from``: a party writes

    decoded = yield from repeated_bit(bit, repetitions)

and the party's code reads like a single logical operation.

By default each primitive emits **batch tokens**
(:class:`~repro.core.party.Burst` / :class:`~repro.core.party.Silence`)
instead of one bit per round: the engine's sparse scheduler then sleeps the
party for the whole constant-bit stretch and hands back the heard bits as
one ``bytes`` slice on wake-up.  The results are bitwise identical to the
per-round form — the tokens are pure scheduling sugar — and the desugared
per-round generators remain available through :func:`batch_tokens`:

    with batch_tokens(False):
        result = simulator.simulate(...)   # pre-token round-by-round engine

which is what the equivalence suites and the before/after simulation
benchmark use as their reference.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Generator, Iterator, Sequence

from repro.core.party import Burst, Silence
from repro.util.bits import BitWord

__all__ = [
    "repeated_bit",
    "transmit_word",
    "silent_rounds",
    "batch_tokens",
    "batch_tokens_enabled",
]

# Module-level switch: True -> primitives yield Burst/Silence batch tokens,
# False -> they yield one bit per round (the pre-token desugared form).
_BATCH_TOKENS = True


def batch_tokens_enabled() -> bool:
    """Whether the primitives currently emit batch tokens."""
    return _BATCH_TOKENS


@contextmanager
def batch_tokens(enabled: bool) -> Iterator[None]:
    """Context manager toggling batch-token emission by the primitives.

    Applies process-wide (it flips a module-level flag read each time a
    primitive starts), so only toggle it around whole executions — parties
    already mid-flight keep the mode they started with only until their
    next primitive call.
    """
    global _BATCH_TOKENS
    previous = _BATCH_TOKENS
    _BATCH_TOKENS = bool(enabled)
    try:
        yield
    finally:
        _BATCH_TOKENS = previous


def repeated_bit(
    bit: int, repetitions: int
) -> Generator[int, int, int]:
    """Beep ``bit`` for ``repetitions`` rounds; return the majority received.

    This is the footnote-1 primitive: a single virtual round of the
    simulated protocol, hardened by repetition + majority vote.  It doubles
    as the error-flag OR vote of the verification phases (beep the flag,
    majority-decode the OR of all flags).

    In token mode the whole vote is one ``Burst`` — the engine sleeps the
    party and returns the ``repetitions`` heard bits in one sequence; the
    majority is then a single C-level ``sum``.  The desugared form keeps
    the vote as a running count — same majority (strict, ties to 0), no
    per-round allocation.
    """
    if _BATCH_TOKENS and repetitions > 0:
        heard = yield Burst(bit, repetitions)
        ones = sum(heard)
    else:
        ones = 0
        for _ in range(repetitions):
            ones += yield bit
    return 1 if 2 * ones > repetitions else 0


def transmit_word(
    word: Sequence[int],
) -> Generator[int, int, BitWord]:
    """Beep a codeword bit-by-bit; return the received word.

    Used by the owners phase: the speaker transmits ``C(j)`` while everyone
    else transmits silence (the all-zero word), and every party collects the
    channel's output for decoding.

    In token mode the word is decomposed into maximal constant-bit runs,
    one ``Burst``/``Silence`` token per run — a listener's all-zero word
    becomes a single ``Silence(len(word))``, and a speaker's codeword costs
    one engine wake-up per run instead of one per bit.
    """
    if _BATCH_TOKENS:
        length = len(word)
        received: list[int] = []
        start = 0
        while start < length:
            bit = word[start]
            stop = start + 1
            while stop < length and word[stop] == bit:
                stop += 1
            run = stop - start
            heard = yield (Burst(bit, run) if bit else Silence(run))
            received.extend(heard)
            start = stop
        return tuple(received)
    received = []
    for bit in word:
        received.append((yield bit))
    return tuple(received)


def silent_rounds(count: int) -> Generator[int, int, BitWord]:
    """Stay silent for ``count`` rounds; return what was heard.

    In token mode this is a single ``Silence(count)`` — the canonical
    sleeping listener.
    """
    if _BATCH_TOKENS and count > 0:
        heard = yield Silence(count)
        return tuple(heard)
    received: list[int] = []
    for _ in range(count):
        received.append((yield 0))
    return tuple(received)
