"""Sub-coroutines shared by the simulation schemes.

Parties are generators (yield the beeped bit, receive the channel bit), so
multi-round building blocks compose with ``yield from``: a party writes

    decoded = yield from repeated_bit(bit, repetitions)

and the engine sees the individual rounds while the party's code reads like a
single logical operation.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.util.bits import BitWord

__all__ = ["repeated_bit", "transmit_word", "silent_rounds"]


def repeated_bit(
    bit: int, repetitions: int
) -> Generator[int, int, int]:
    """Beep ``bit`` for ``repetitions`` rounds; return the majority received.

    This is the footnote-1 primitive: a single virtual round of the
    simulated protocol, hardened by repetition + majority vote.  It doubles
    as the error-flag OR vote of the verification phases (beep the flag,
    majority-decode the OR of all flags).

    Runs once per virtual round inside every simulator, so the vote is a
    running count rather than a list — same majority (strict, ties to 0),
    no per-round allocation.
    """
    ones = 0
    for _ in range(repetitions):
        ones += yield bit
    return 1 if 2 * ones > repetitions else 0


def transmit_word(
    word: Sequence[int],
) -> Generator[int, int, BitWord]:
    """Beep a codeword bit-by-bit; return the received word.

    Used by the owners phase: the speaker transmits ``C(j)`` while everyone
    else transmits silence (the all-zero word), and every party collects the
    channel's output for decoding.
    """
    received: list[int] = []
    for bit in word:
        received.append((yield bit))
    return tuple(received)


def silent_rounds(count: int) -> Generator[int, int, BitWord]:
    """Stay silent for ``count`` rounds; return what was heard."""
    received: list[int] = []
    for _ in range(count):
        received.append((yield 0))
    return tuple(received)
