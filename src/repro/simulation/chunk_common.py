"""Shared chunk-simulation machinery (Algorithm 1, both phases).

Both rewind-style simulators — the iterative
:class:`~repro.simulation.chunked.ChunkCommitSimulator` and the faithful
Appendix-D.2 :class:`~repro.simulation.hierarchical.HierarchicalSimulator`
— simulate one chunk the same way: repetition-harden every virtual round
(phase 1), then run the finding-owners phase (phase 2).  This module holds
that common sub-coroutine plus the inner-party replay helper and the
per-party consistency check used by every verification flavour.

Everything here runs inside the engine's per-round hot loop (each virtual
round expands to ``repetitions`` channel rounds), so the building blocks
avoid per-round allocation: :func:`~repro.simulation.primitives.repeated_bit`
keeps a running vote count, and the chunk lists below grow by one entry per
*virtual* round, not per channel round.  Since the primitives emit batch
tokens (``Burst``/``Silence``), each virtual round is also a *single*
engine yield per party — the sparse scheduler delivers all
``repetitions`` heard bits at once, so generator resumes scale with
virtual rounds too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

from repro.coding.code import BlockCode
from repro.coding.ml import MLDecoder
from repro.core.party import Party
from repro.errors import ProtocolError
from repro.simulation.owners import OwnersResult, owners_phase
from repro.simulation.primitives import repeated_bit

__all__ = [
    "InnerReplay",
    "SimulatedChunk",
    "simulate_chunk_with_owners",
    "chunk_error_flag",
]


class InnerReplay:
    """Drives a fresh inner-party coroutine over a given received prefix.

    Wraps the awkward generator priming/termination protocol so simulator
    code reads linearly.  ``advance`` delivers one received bit;
    ``next_bit`` is the party's next beep or ``None`` once the inner
    protocol finished (its output is then available as ``output``).
    """

    def __init__(
        self, make_inner: Callable[[], Party], prefix: Sequence[int]
    ) -> None:
        self._program = make_inner().run()
        self._output: Any = None
        self._finished = False
        self._next_bit: int | None = None
        try:
            self._next_bit = next(self._program)
        except StopIteration as stop:
            self._finish(stop.value)
        for received in prefix:
            self.advance(received)

    def _finish(self, output: Any) -> None:
        self._finished = True
        self._output = output
        self._next_bit = None

    @property
    def next_bit(self) -> int | None:
        """The bit the inner party beeps next, or ``None`` if finished."""
        return self._next_bit

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def output(self) -> Any:
        if not self._finished:
            raise ProtocolError("inner party has not finished")
        return self._output

    def advance(self, received: int) -> None:
        """Deliver one received bit to the inner party."""
        if self._finished:
            raise ProtocolError(
                "inner party finished before its declared length"
            )
        try:
            self._next_bit = self._program.send(received)
        except StopIteration as stop:
            self._finish(stop.value)


@dataclass
class SimulatedChunk:
    """One simulated chunk, as seen by one party.

    ``pi`` and ``owners`` are shared-consistent across parties under
    correlated noise (they are functions of commonly received bits);
    ``my_beeps`` and ``claimed_by_me`` are party-local.
    """

    pi: tuple[int, ...]
    my_beeps: tuple[int, ...]
    owners: OwnersResult

    def party_flag(self, party_index: int) -> int:
        """This party's inconsistency flag for the chunk (§2.1)."""
        return chunk_error_flag(
            party_index, self.pi, self.my_beeps, self.owners
        )


def simulate_chunk_with_owners(
    party_index: int,
    n_parties: int,
    replay: InnerReplay,
    chunk_rounds: int,
    repetitions: int,
    code: BlockCode,
    decoder: MLDecoder,
) -> Generator[int, int, SimulatedChunk]:
    """Algorithm 1 for one chunk, as a party sub-coroutine.

    Phase 1: each of ``chunk_rounds`` virtual rounds is beeped
    ``repetitions`` times and majority-decoded into the chunk transcript
    (advancing ``replay`` as it goes).  Phase 2: the finding-owners phase
    attaches an owner to every 1.
    """
    my_beeps: list[int] = []
    chunk_pi: list[int] = []
    for _ in range(chunk_rounds):
        bit = replay.next_bit
        if bit is None:
            raise ProtocolError(
                "inner protocol shorter than its declared length"
            )
        my_beeps.append(bit)
        decoded = yield from repeated_bit(bit, repetitions)
        chunk_pi.append(decoded)
        replay.advance(decoded)
    owners = yield from owners_phase(
        party_index, n_parties, my_beeps, chunk_pi, code, decoder
    )
    return SimulatedChunk(
        pi=tuple(chunk_pi), my_beeps=tuple(my_beeps), owners=owners
    )


def chunk_error_flag(
    party_index: int,
    chunk_pi: Sequence[int],
    my_beeps: Sequence[int],
    owners: OwnersResult,
) -> int:
    """1 iff this party detects an inconsistency in a simulated chunk.

    * ``π_p = 0`` but I beeped 1 — my beep was suppressed.
    * ``π_p = 1`` with no owner — a phantom 1 nobody vouches for
      (deterministic from shared state: every party raises it).
    * I own a round I never (successfully) claimed — a decoding error
      corrupted the owner table.
    """
    for position, value in enumerate(chunk_pi):
        if value == 0:
            if my_beeps[position] == 1:
                return 1
        else:
            owner = owners.owners.get(position)
            if owner is None:
                return 1
            if (
                owner == party_index
                and position not in owners.claimed_by_me
            ):
                return 1
    return 0
