"""Constant-overhead rewind simulation for suppression (1→0) noise.

Section 1.1 of the paper observes a striking asymmetry: while 0→1 noise
forces an Ω(log n) simulation overhead (Theorem 1.1), noise that only turns
beeps into silence admits a **constant**-overhead simulation.  The reason
(§2.1): a 1→0 flip is always *detected by its victim* — the party whose beep
vanished knows it — and under 1→0-only noise a received 1 is always genuine,
so an error alarm can itself be trusted.

This module implements the classic Schulman-style rewind random walk built
on that observation.  Each iteration spends exactly two rounds:

* **Alarm round** — every party compares the *entire* working transcript
  against its own beeps; a party that ever beeped 1 where the transcript
  shows 0 beeps an alarm.  A received alarm pops the last transcript
  position (and the iteration's second round is a silent dummy).
* **Simulation round** (only on a clean alarm vote) — parties beep the next
  bit of the inner protocol (replayed against the current working
  transcript) and append the received bit.

Voting before extending matters: a corrupted round buried under later
appends is only reachable if pops can outnumber appends, i.e. if an
alarm-bearing iteration moves the frontier strictly backwards.

Under suppression noise the alarm logic is sound and complete:

* a received alarm proves some party's beep was suppressed somewhere in the
  working prefix (alarms cannot be fabricated by noise), so a pop is always
  warranted — at worst it discards a correct suffix that will be resimulated;
* a corrupted position keeps its victim alarming every iteration, and each
  alarm gets through with probability ``1 - ε``, so the walk drifts forward
  and reaches a fully correct length-T transcript after O(T) iterations with
  probability exponentially close to 1.

The same scheme run over a 0→1-noisy channel is *unsound twice over*: noise
fabricates alarms (popping good rounds) and fabricates transcript 1s that no
party can dispute (§2.1's unverifiable 1s).  Experiment E3 runs exactly this
head-to-head to exhibit the paper's asymmetry.

Unlike the chunk-based schemes, rewind stays **per-round** and emits no
batch tokens: every alarm bit depends on the received bit of the previous
round (an alarm pops the transcript, changing what every party compares
against next iteration), so no party ever knows its next two beeps in
advance — there is no constant run to batch.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.channels.base import Channel
from repro.core.engine import run_protocol
from repro.core.party import Party
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.errors import ConfigurationError
from repro.simulation.base import SimulationReport, Simulator

__all__ = ["RewindSimulator"]


class _RewindParty(Party):
    """One party of the rewind random walk."""

    def __init__(
        self,
        party_index: int,
        make_inner: Callable[[], Party],
        inner_length: int,
        iterations: int,
        report: SimulationReport,
        trace: list | None = None,
    ) -> None:
        self.party_index = party_index
        self.make_inner = make_inner
        self.inner_length = inner_length
        self.iterations = iterations
        self.report = report
        # Per-pop trace log (party 0 only; pure bookkeeping over shared
        # state, consumes no RNG draws — see repro.observe).
        self.trace = trace

    def _replay(self, working: Sequence[int]):
        """A fresh inner coroutine advanced past ``working``.

        Returns ``(program, next_bit)`` where ``next_bit`` is the beep for
        round ``len(working)``, or ``None`` when the protocol has ended (or
        just ended — in which case ``program`` also carries the output via
        ``StopIteration``).
        """
        program = self.make_inner().run()
        try:
            next_bit: int | None = next(program)
            for received in working:
                next_bit = program.send(received)
        except StopIteration:
            next_bit = None
        return program, next_bit

    def run(self):
        # Incremental state.  ``my_beeps[m]`` is what I beeped in round
        # ``m`` given ``working[:m]``; it stays valid under append/pop
        # because a round's beep depends only on the prefix before it.
        # ``disputed`` holds the positions I would alarm about; ``program``
        # is a live inner coroutine aligned with ``working`` (rebuilt after
        # pops, the only operation a coroutine cannot undo).
        working: list[int] = []  # shared working transcript
        my_beeps: list[int] = []
        disputed: set[int] = set()
        rewinds = 0
        program, next_bit = self._replay(working)
        stale = False

        for iteration in range(self.iterations):
            if stale:
                program, next_bit = self._replay(working)
                stale = False

            # Alarm round first: dispute any 0 in the working transcript
            # where I beeped 1.  Voting *before* extending is what lets the
            # walk move net-backwards and unwind a corrupted round that got
            # buried under later appends.
            alarm = 1 if disputed else 0
            heard_alarm = yield alarm

            if heard_alarm == 1:
                if working:
                    popped = len(working) - 1
                    working.pop()
                    my_beeps.pop()
                    disputed.discard(popped)
                    rewinds += 1
                    stale = True
                    if self.trace is not None and self.party_index == 0:
                        self.trace.append(
                            {"iteration": iteration, "position": popped}
                        )
                # Keep the iteration at a fixed two rounds: a silent dummy
                # round replaces the simulation round after a rewind.
                yield 0
            else:
                # Simulation round: extend the working transcript by one
                # round (parties past the protocol's end stay silent).
                position = len(working)
                simulating = position < self.inner_length
                my_bit = (
                    next_bit
                    if simulating and next_bit is not None
                    else 0
                )
                received = yield my_bit
                if simulating:
                    working.append(received)
                    my_beeps.append(my_bit)
                    if received == 0 and my_bit == 1:
                        disputed.add(position)
                    try:
                        next_bit = program.send(received)
                    except StopIteration:
                        next_bit = None

        if self.party_index == 0:
            self.report.rewinds = rewinds
            self.report.completed = (
                len(working) == self.inner_length and not disputed
            )

        padded = working + [0] * (self.inner_length - len(working))
        final_program = self.make_inner().run()
        output: Any = None
        try:
            next(final_program)
            for received in padded:
                final_program.send(received)
        except StopIteration as stop:
            output = stop.value
        return output


class _RewindProtocol(Protocol):
    def __init__(
        self,
        inner: Protocol,
        inner_length: int,
        iterations: int,
        report: SimulationReport,
        trace: list | None = None,
    ) -> None:
        super().__init__(inner.n_parties)
        self.inner = inner
        self.inner_length = inner_length
        self.iterations = iterations
        self.report = report
        self.trace = trace

    def length(self) -> int:
        return 2 * self.iterations

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        inputs = list(inputs)

        def make_factory(index: int) -> Callable[[], Party]:
            def make() -> Party:
                return self.inner.create_parties(
                    inputs, shared_seed=shared_seed
                )[index]

            return make

        return [
            _RewindParty(
                party_index=index,
                make_inner=make_factory(index),
                inner_length=self.inner_length,
                iterations=self.iterations,
                report=self.report,
                trace=self.trace,
            )
            for index in range(self.n_parties)
        ]


class RewindSimulator(Simulator):
    """The constant-overhead rewind scheme (sound under 1→0-only noise).

    Runs ``ceil(rewind_budget_factor · T) + rewind_budget_extra`` iterations
    of (simulate one round, alarm vote), i.e. a fixed round count of
    ``2·(budget_factor·T + extra)`` — a *constant* multiple of T, the
    separation from the Θ(log n) chunk scheme that experiment E3 measures.

    The scheme is well-defined over any correlated channel, but its
    correctness argument needs suppression noise; over 0→1 noise it serves
    as the negative control demonstrating the paper's asymmetry.
    """

    def simulate(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        channel: Channel,
        *,
        shared_seed: int | None = None,
        observe: "Observer | None" = None,
    ) -> ExecutionResult:
        if not channel.correlated:
            raise ConfigurationError(
                "RewindSimulator requires a correlated channel (the working "
                "transcript must be shared)"
            )
        inner_length = self._require_fixed_length(protocol)
        iterations = (
            math.ceil(self.params.rewind_budget_factor * inner_length)
            + self.params.rewind_budget_extra
        )
        report = SimulationReport(
            scheme=type(self).__name__,
            inner_length=inner_length,
            extra={"iterations": iterations},
        )
        trace: list | None = [] if self._tracing(observe) else None
        wrapped = _RewindProtocol(
            inner=protocol,
            inner_length=inner_length,
            iterations=iterations,
            report=report,
            trace=trace,
        )
        # record_sent=False: with the columnar transcript this costs three
        # bytes per simulated round, independent of the party count.
        result = run_protocol(
            wrapped,
            inputs,
            channel,
            shared_seed=shared_seed,
            record_sent=False,
            observe=observe,
        )
        report.simulated_rounds = result.rounds
        result.metadata["report"] = report
        if trace is not None:
            for entry in trace:
                observe.emit(
                    "rewind",
                    iteration=entry["iteration"],
                    position=entry["position"],
                )
            self._emit_simulation(observe, report)
        self._enforce_completion(report)
        return result
