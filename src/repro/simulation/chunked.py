"""The Theorem 1.2 scheme: chunked simulation with owners and rewind.

The noiseless protocol is simulated chunk by chunk (chunk = n rounds, the
paper's choice).  Each *chunk attempt* has three phases:

1. **Simulation phase** — every virtual round of the chunk is repeated
   ``Θ(log n)`` times and majority-decoded, producing a tentative chunk
   transcript ``π`` shared by all parties (Algorithm 1, phase 1).
2. **Finding owners** — Algorithm 1's second phase
   (:func:`~repro.simulation.owners.owners_phase`): every 1 in ``π`` gets an
   owner, i.e. a party that beeped 1 in that round.  Owners are what make
   0→1 flips detectable: a 1 nobody owns is a noise artifact.
3. **Verification** — each party raises an error flag when ``π`` conflicts
   with its own beeps: a 0 where it beeped 1 (a suppressed beep), a 1 with
   no owner (a phantom beep), or an ownership it never claimed (a decoding
   error).  The OR of the flags is computed by a repeated vote; a clean
   vote **commits** the chunk, a dirty one discards it (rewind-if-error).

Because every phase is driven by commonly received bits, all parties walk
through identical shared state (committed prefix, owner tables, attempt
counter) — this is exactly the advantage of the *correlated* noise model the
paper highlights in §1.2, and the scheme therefore requires a correlated
channel.  (Independent noise is served by
:class:`~repro.simulation.repetition_sim.RepetitionSimulator` for the
poly-length protocols this repository runs; see DESIGN.md.)

All three phases speak through the batch-token primitives
(:mod:`repro.simulation.primitives`): phase 1 is one ``Burst``/``Silence``
per party per virtual round, the owners phase one token per constant run
of each codeword (listeners yield a single ``Silence`` for the whole
word), and the verification vote one token per party per vote — so the
engine's per-round Python work collapses onto the few parties awake at
run boundaries.

Inner parties are *replayed*: each attempt re-creates the party and feeds it
the committed prefix, so adaptive protocols — whose beeps depend on the
transcript — are simulated correctly after rewinds.

Cost per committed chunk: ``n·r`` simulation rounds + ``(|J| + n)·L`` owner
rounds + ``r_v`` verification rounds with ``r, L, r_v = Θ(log n)``, i.e.
O(log n) overhead per noiseless round, matching Theorem 1.2.  The failure
probability is polynomially small in n for protocols of length poly(n) (the
regime of every experiment here); the paper's [EKS18]-style hierarchy, which
extends this to arbitrary lengths, is discussed in DESIGN.md.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.channels.base import Channel
from repro.coding.ml import MLDecoder
from repro.core.engine import run_protocol
from repro.core.party import Party
from repro.core.protocol import Protocol
from repro.core.result import ExecutionResult
from repro.errors import ConfigurationError, ProtocolError
from repro.simulation.base import SimulationReport, Simulator
from repro.simulation.chunk_common import (
    InnerReplay,
    simulate_chunk_with_owners,
)
from repro.simulation.owners import build_owners_code
from repro.simulation.primitives import repeated_bit

__all__ = ["ChunkCommitSimulator"]


class _ChunkParty(Party):
    """One party of the chunk-commit scheme."""

    def __init__(
        self,
        party_index: int,
        n_parties: int,
        make_inner: Callable[[], Party],
        inner_length: int,
        chunk_length: int,
        repetitions: int,
        verification_repetitions: int,
        max_attempts: int,
        code,
        decoder: MLDecoder,
        report: SimulationReport,
        trace: list | None = None,
    ) -> None:
        self.party_index = party_index
        self.n_parties = n_parties
        self.make_inner = make_inner
        self.inner_length = inner_length
        self.chunk_length = chunk_length
        self.repetitions = repetitions
        self.verification_repetitions = verification_repetitions
        self.max_attempts = max_attempts
        self.code = code
        self.decoder = decoder
        self.report = report
        # Per-attempt trace log (party 0 only, observability opt-in).
        # Appending is pure bookkeeping over already-shared state — it
        # consumes no RNG draws and never alters the round structure.
        self.trace = trace

    def run(self):
        committed: list[int] = []  # shared committed received prefix
        attempts = 0
        while len(committed) < self.inner_length and attempts < self.max_attempts:
            attempts += 1
            committed_before = len(committed)
            chunk_rounds = min(
                self.chunk_length, self.inner_length - len(committed)
            )

            # Phases 1 + 2 (Algorithm 1): replay the committed prefix,
            # simulate the chunk by repetition + majority, find owners.
            replay = InnerReplay(self.make_inner, committed)
            chunk = yield from simulate_chunk_with_owners(
                self.party_index,
                self.n_parties,
                replay,
                chunk_rounds,
                self.repetitions,
                self.code,
                self.decoder,
            )

            # Phase 3: verification vote; commit on a clean vote.
            flag = chunk.party_flag(self.party_index)
            verdict = yield from repeated_bit(
                flag, self.verification_repetitions
            )
            if verdict == 0:
                committed.extend(chunk.pi)
                if self.party_index == 0:
                    self.report.chunk_commits += 1
            if self.party_index == 0:
                self.report.chunk_attempts = attempts
                if self.trace is not None:
                    owners = chunk.owners
                    unowned = sum(
                        1
                        for position, value in enumerate(chunk.pi)
                        if value and position not in owners.owners
                    )
                    self.trace.append(
                        {
                            "attempt": attempts,
                            "committed_rounds": committed_before,
                            "chunk_rounds": chunk_rounds,
                            "sim_rounds": chunk_rounds * self.repetitions,
                            "owner_iterations": owners.iterations,
                            "owner_rounds": owners.iterations
                            * self.code.codeword_length,
                            "verify_rounds": self.verification_repetitions,
                            "ones": sum(chunk.pi),
                            "owners_assigned": len(owners.owners),
                            "unowned_ones": unowned,
                            "flag": flag,
                            "verdict": verdict,
                            "committed": verdict == 0,
                        }
                    )

        if self.party_index == 0:
            self.report.completed = len(committed) == self.inner_length

        # Final output: the inner party's output over the committed
        # transcript (zero-padded when the budget ran out — a detectable
        # failure recorded in the report).
        padded = committed + [0] * (self.inner_length - len(committed))
        replay = InnerReplay(self.make_inner, padded)
        if not replay.finished:
            raise ProtocolError(
                "inner protocol did not finish at its declared length"
            )
        return replay.output


class _ChunkProtocol(Protocol):
    """Wrapper protocol assembling the chunk parties."""

    def __init__(
        self,
        inner: Protocol,
        inner_length: int,
        chunk_length: int,
        repetitions: int,
        verification_repetitions: int,
        max_attempts: int,
        code,
        decoder: MLDecoder,
        report: SimulationReport,
        trace: list | None = None,
    ) -> None:
        super().__init__(inner.n_parties)
        self.inner = inner
        self.inner_length = inner_length
        self.chunk_length = chunk_length
        self.repetitions = repetitions
        self.verification_repetitions = verification_repetitions
        self.max_attempts = max_attempts
        self.code = code
        self.decoder = decoder
        self.report = report
        self.trace = trace

    def create_parties(
        self, inputs: Sequence[Any], shared_seed: int | None = None
    ) -> list[Party]:
        self._check_inputs(inputs)
        inputs = list(inputs)

        def make_factory(index: int) -> Callable[[], Party]:
            def make() -> Party:
                return self.inner.create_parties(
                    inputs, shared_seed=shared_seed
                )[index]

            return make

        return [
            _ChunkParty(
                party_index=index,
                n_parties=self.n_parties,
                make_inner=make_factory(index),
                inner_length=self.inner_length,
                chunk_length=self.chunk_length,
                repetitions=self.repetitions,
                verification_repetitions=self.verification_repetitions,
                max_attempts=self.max_attempts,
                code=self.code,
                decoder=self.decoder,
                report=self.report,
                trace=self.trace,
            )
            for index in range(self.n_parties)
        ]


class ChunkCommitSimulator(Simulator):
    """Theorem 1.2's O(log n)-overhead simulation scheme.

    See the module docstring for the scheme; see
    :class:`~repro.simulation.params.SimulationParameters` for the knobs.
    """

    def simulate(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        channel: Channel,
        *,
        shared_seed: int | None = None,
        observe: "Observer | None" = None,
    ) -> ExecutionResult:
        if not channel.correlated:
            raise ConfigurationError(
                "ChunkCommitSimulator relies on a shared transcript and "
                "requires a correlated channel; use RepetitionSimulator "
                "for independent noise"
            )
        inner_length = self._require_fixed_length(protocol)
        noise = self._resolve_noise_model(channel)
        epsilon = max(noise.up, noise.down)

        n_parties = protocol.n_parties
        chunk_length = self.params.resolve_chunk_length(n_parties)
        repetitions = self.params.resolve_repetitions(n_parties, epsilon)
        verification_repetitions = (
            self.params.resolve_verification_repetitions(n_parties, epsilon)
        )
        num_chunks = max(1, math.ceil(inner_length / chunk_length))
        max_attempts = (
            math.ceil(self.params.attempt_slack * num_chunks)
            + self.params.attempt_extra
        )
        code = build_owners_code(
            chunk_length,
            rate_constant=self.params.code_rate_constant,
            seed=self.params.code_seed,
        )
        decoder = MLDecoder(code, noise)

        report = SimulationReport(
            scheme=type(self).__name__,
            inner_length=inner_length,
            extra={
                "repetitions": repetitions,
                "verification_repetitions": verification_repetitions,
                "chunk_length": chunk_length,
                "max_attempts": max_attempts,
                "codeword_length": code.codeword_length,
            },
        )
        trace: list | None = [] if self._tracing(observe) else None
        wrapped = _ChunkProtocol(
            inner=protocol,
            inner_length=inner_length,
            chunk_length=chunk_length,
            repetitions=repetitions,
            verification_repetitions=verification_repetitions,
            max_attempts=max_attempts,
            code=code,
            decoder=decoder,
            report=report,
            trace=trace,
        )
        # record_sent=False: the simulation transcript is Θ(n log n) rounds
        # and the scheme never reads its own sent bits, so the columnar
        # transcript stores three bytes per round regardless of n.
        result = run_protocol(
            wrapped,
            inputs,
            channel,
            shared_seed=shared_seed,
            record_sent=False,
            observe=observe,
        )
        report.simulated_rounds = result.rounds
        result.metadata["report"] = report
        if trace is not None:
            self._emit_chunk_events(observe, trace)
            self._emit_simulation(observe, report)
        self._enforce_completion(report)
        return result

    @staticmethod
    def _emit_chunk_events(observe: "Observer", trace: list) -> None:
        """Replay party 0's attempt log as ``chunk_attempt`` +
        ``owners_phase`` event pairs."""
        for entry in trace:
            observe.emit(
                "chunk_attempt",
                attempt=entry["attempt"],
                committed_rounds=entry["committed_rounds"],
                chunk_rounds=entry["chunk_rounds"],
                sim_rounds=entry["sim_rounds"],
                owner_rounds=entry["owner_rounds"],
                verify_rounds=entry["verify_rounds"],
                flag=entry["flag"],
                verdict=entry["verdict"],
                committed=entry["committed"],
            )
            observe.emit(
                "owners_phase",
                attempt=entry["attempt"],
                iterations=entry["owner_iterations"],
                owner_rounds=entry["owner_rounds"],
                ones=entry["ones"],
                owners_assigned=entry["owners_assigned"],
                unowned_ones=entry["unowned_ones"],
                disagreement=bool(entry["flag"]),
            )
