"""The *finding owners* phase — Algorithm 1 of the paper.

After a chunk has been simulated into a shared transcript ``π``, the parties
must attach an **owner** to every 1 in ``π``: a party that actually beeped 1
in that round.  Owners are what make 0→1 noise flips verifiable (§2.1): in
the later verification phase, the owner of round ``m`` vouches for
``π_m = 1``, and a 1 that finds no owner exposes itself as a noise artifact.

The protocol follows Algorithm 1 (itself in the spirit of [BO15]): parties
speak in turn order.  The current speaker repeatedly beeps the codeword
``C(j)`` of the smallest still-unclaimed position ``j`` it can own
(``b_j = 1``), or ``C(Next)`` when it has none left, passing the turn.  All
parties decode every codeword against the channel's noise law and update the
shared bookkeeping (claimed set ``T``, current ``turn``, owner table).

Differences from the paper's pseudocode, by necessity of actually running:

* **Silence is a symbol.**  Once ``turn`` exceeds the last party, nobody
  beeps and the channel emits pure noise; the paper's analysis ignores these
  iterations.  We reserve the all-zero codeword for an explicit ``SILENCE``
  symbol, so the ML decoder maps noise-only iterations to a no-op with high
  probability instead of corrupting the bookkeeping.
* **Iteration count.**  The paper uses ``2n`` iterations for a chunk of
  length ``n``; every iteration either claims a 1 or advances the turn, so
  ``|J| + n`` iterations suffice in general and that is what we run.

Per iteration, exactly one party (the current speaker) transmits a
codeword while everyone else listens; via
:func:`~repro.simulation.primitives.transmit_word` the speaker yields one
batch token per constant run of the codeword and each listener yields a
single ``Silence`` spanning the whole word, so the engine sleeps all
``n - 1`` listeners for the iteration instead of resuming them every
round.
* **Claims are restricted to positions with ``π_j = 1``** — claiming a
  position the shared transcript shows as 0 could not help verification.

The phase's correctness leans on every party decoding the *same* received
word, which is exactly the correlated model's guarantee; at the execution
layer this is the engine's shared-bit fast path
(:meth:`~repro.channels.base.Channel.transmit_shared`), so the common
decoded symbol is common by construction, not by comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.coding.code import BlockCode
from repro.coding.ml import MLDecoder
from repro.coding.random_code import GreedyRandomCode, default_code_length
from repro.core.formal import NoiseModel
from repro.core.party import Party
from repro.core.protocol import Protocol
from repro.errors import ConfigurationError, ProtocolError
from repro.simulation.primitives import transmit_word

__all__ = [
    "SILENCE",
    "NEXT",
    "position_symbol",
    "symbol_position",
    "build_owners_code",
    "owners_phase",
    "OwnersResult",
    "OwnersProtocol",
]

# Symbol layout of the owners-phase codebook.
SILENCE = 0
NEXT = 1
_POSITION_BASE = 2


def position_symbol(position: int) -> int:
    """The code symbol claiming transcript position ``position``."""
    return _POSITION_BASE + position


def symbol_position(symbol: int) -> int | None:
    """The position a symbol claims, or ``None`` for SILENCE/NEXT."""
    if symbol < _POSITION_BASE:
        return None
    return symbol - _POSITION_BASE


def build_owners_code(
    max_positions: int,
    rate_constant: float = 12.0,
    seed: int = 0x5EED,
) -> GreedyRandomCode:
    """The shared codebook ``C : {Silence, Next} ∪ [max_positions] → {0,1}^L``.

    ``L = rate_constant · log₂(alphabet)``, the paper's ``c·log n``.  Symbol
    0 (SILENCE) is the all-zero word; all other codewords keep a weight and
    pairwise-distance floor so they remain decodable against silence-plus-
    noise as well as against each other.
    """
    alphabet = max_positions + _POSITION_BASE
    length = default_code_length(alphabet, rate_constant)
    return GreedyRandomCode(
        alphabet,
        length,
        include_zero_word=True,
        seed=seed,
    )


@dataclass
class OwnersResult:
    """Shared bookkeeping produced by one owners phase.

    Attributes:
        owners: ``position -> party`` for every successfully claimed 1.
        claimed_by_me: Positions this party knows *it* claimed (and saw its
            claim decoded correctly).  ``owners[p] == me`` without
            ``p ∈ claimed_by_me`` signals a decoding error that assigned
            this party a round it never claimed — a verification flag.
        iterations: Iterations executed.
    """

    owners: dict[int, int] = field(default_factory=dict)
    claimed_by_me: set[int] = field(default_factory=set)
    iterations: int = 0


def owners_phase(
    party_index: int,
    n_parties: int,
    my_bits: Sequence[int],
    pi: Sequence[int],
    code: BlockCode,
    decoder: MLDecoder,
) -> Generator[int, int, OwnersResult]:
    """Run Algorithm 1's finding-owners phase for one party (sub-coroutine).

    Args:
        party_index: This party's index (turn order is index order).
        n_parties: Number of parties.
        my_bits: The bits this party beeped in the chunk (``b^i`` in the
            paper), one per transcript position.
        pi: The shared chunk transcript; ``pi[j] = 1`` positions need owners.
        code: The shared codebook from :func:`build_owners_code`; must cover
            ``len(pi)`` positions.
        decoder: ML decoder matched to the channel.

    Returns:
        This party's :class:`OwnersResult`.  Under correlated noise all
        parties return identical ``owners`` tables because every update is
        driven by the commonly-decoded symbol.
    """
    if len(my_bits) != len(pi):
        raise ProtocolError(
            f"my_bits has {len(my_bits)} entries, pi has {len(pi)}"
        )
    if code.num_symbols < _POSITION_BASE + len(pi):
        raise ProtocolError(
            f"codebook covers {code.num_symbols - _POSITION_BASE} "
            f"positions, chunk has {len(pi)}"
        )

    ones = [j for j, bit in enumerate(pi) if bit == 1]
    iterations = len(ones) + n_parties
    claimed: set[int] = set()  # the shared set T of claimed positions
    turn = 0
    result = OwnersResult(iterations=iterations)

    for _ in range(iterations):
        sent_symbol = SILENCE
        if turn == party_index:
            candidate = next(
                (
                    j
                    for j in ones
                    if my_bits[j] == 1 and j not in claimed
                ),
                None,
            )
            sent_symbol = (
                NEXT if candidate is None else position_symbol(candidate)
            )
        received = yield from transmit_word(code.encode(sent_symbol))
        decoded = decoder.decode(received)

        if decoded == NEXT:
            turn += 1
        else:
            position = symbol_position(decoded)
            if position is not None and position < len(pi):
                claimed.add(position)
                if 0 <= turn < n_parties:
                    result.owners[position] = turn
                if (
                    turn == party_index
                    and decoded == sent_symbol
                ):
                    result.claimed_by_me.add(position)
        # SILENCE (and out-of-range positions) are no-ops.

    return result


class _OwnersParty(Party):
    """Standalone party wrapper around :func:`owners_phase`."""

    def __init__(
        self,
        party_index: int,
        n_parties: int,
        my_bits: Sequence[int],
        pi: Sequence[int],
        code: BlockCode,
        decoder: MLDecoder,
    ) -> None:
        self.party_index = party_index
        self.n_parties = n_parties
        self.my_bits = tuple(my_bits)
        self.pi = tuple(pi)
        self.code = code
        self.decoder = decoder

    def run(self):
        result = yield from owners_phase(
            self.party_index,
            self.n_parties,
            self.my_bits,
            self.pi,
            self.code,
            self.decoder,
        )
        return result


class OwnersProtocol(Protocol):
    """Algorithm 1's finding-owners phase as a standalone protocol.

    This is the protocol Theorem D.1 analyses: party ``i``'s input is its
    beep vector ``b^i``; the transcript ``π`` with ``π_m = ⋁_i b^i_m`` is
    common knowledge (passed at construction).  Each party outputs its
    :class:`OwnersResult`; Theorem D.1 asserts that, except with probability
    polynomially small, all parties output the same owner table and every
    owner actually beeped 1 in the round it owns.

    Args:
        n_parties: Number of parties.
        pi: The shared transcript whose 1s need owners.
        noise_model: The channel's noise law (drives ML decoding).
        code: Shared codebook; defaults to :func:`build_owners_code` over
            ``len(pi)`` positions.
    """

    def __init__(
        self,
        n_parties: int,
        pi: Sequence[int],
        noise_model: NoiseModel,
        code: BlockCode | None = None,
    ) -> None:
        super().__init__(n_parties)
        self.pi = tuple(pi)
        self.noise_model = noise_model
        self.code = (
            code if code is not None else build_owners_code(len(self.pi))
        )
        if self.code.num_symbols < _POSITION_BASE + len(self.pi):
            raise ConfigurationError(
                "codebook too small for the transcript length"
            )
        self.decoder = MLDecoder(self.code, noise_model)

    def length(self) -> int:
        ones = sum(self.pi)
        return (ones + self.n_parties) * self.code.codeword_length

    def create_parties(self, inputs, shared_seed: int | None = None):
        self._check_inputs(inputs)
        return [
            _OwnersParty(
                party_index=index,
                n_parties=self.n_parties,
                my_bits=inputs[index],
                pi=self.pi,
                code=self.code,
                decoder=self.decoder,
            )
            for index in range(self.n_parties)
        ]
