"""The checkpointing, crash-safe, resumable sweep driver.

:func:`run_sweep_resumable` is :func:`repro.analysis.sweep.run_sweep`
with a write-through result cache wrapped around the per-point loop:

* before computing grid point ``i`` it probes the
  :class:`~repro.service.store.ResultStore` under the point's
  content-addressed key and **skips the computation on a hit** — the
  cached payload *is* the result, bitwise (the determinism contract from
  PR 2 makes every point a pure function of ``(spec, workload, index)``);
* after computing a point it **persists it immediately** (atomic rename,
  see the store), so an interruption at any instant — exception, SIGTERM,
  power loss — forfeits at most the single in-flight point;
* a re-run of the same sweep therefore *is* the resume operation: hits
  cover everything completed before the crash, and the returned list is
  bitwise identical to an uninterrupted cold :func:`run_sweep`.

Per-point seeds are derived exactly as ``run_sweep`` derives them
(``derive_seed(spec.seed, f"point[{index}]")`` on the *global* index), so
a shard that computes indices ``{3, 4}`` of a 8-point grid produces the
same points a full run would — which is what makes shard merging sound
(:mod:`repro.service.shards`).
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.analysis.sweep import (
    PointBuilder,
    SweepPoint,
    SweepSpec,
    run_sweep_point,
)
from repro.errors import ConfigurationError
from repro.rng import derive_seed
from repro.service.canon import point_key
from repro.service.store import ResultStore

__all__ = ["run_sweep_resumable", "sweep_status"]


def _resolve_indices(
    total: int, indices: Sequence[int] | None
) -> list[int]:
    if indices is None:
        return list(range(total))
    resolved = sorted({int(index) for index in indices})
    if resolved and not 0 <= resolved[0] <= resolved[-1] < total:
        raise ConfigurationError(
            f"point indices {resolved} outside [0, {total})"
        )
    return resolved


def run_sweep_resumable(
    values: Sequence[Any],
    point_builder: PointBuilder,
    spec: SweepSpec,
    *,
    store: ResultStore,
    workload: Any = None,
    indices: Sequence[int] | None = None,
) -> list[SweepPoint]:
    """Run (or resume) a sweep through the result cache.

    Args:
        values: The full grid, exactly as :func:`run_sweep` takes it —
            even when ``indices`` restricts this call to a shard, pass
            the *whole* grid so global indices (and hence seeds and cache
            keys) keep their meaning.
        point_builder: ``value -> (task, executor, params)``; only called
            for points that miss the cache.
        spec: Execution knobs.  ``spec.observe`` additionally receives
            the store's ``cache_hit``/``cache_miss``/``cache_put`` events
            and one final ``sweep_run`` summary.
        store: The content-addressed result store to read through and
            check point into.
        workload: JSON-able description of *what* runs, hashed into every
            point key (use :meth:`SweepGrid.workload` for grid sweeps).
        indices: Optional subset of global point indices (a shard);
            ``None`` runs the whole grid.

    Returns:
        The points for the selected indices in ascending index order —
        for a full run, bitwise identical to ``run_sweep(values,
        point_builder, spec)``.
    """
    values = list(values)
    selected = _resolve_indices(len(values), indices)
    observe = spec.observe
    start = time.perf_counter()
    computed = hits = 0
    points: list[SweepPoint] = []
    for index in selected:
        key = point_key(spec, workload, index)
        cached = store.get(key, observe=observe, index=index)
        if cached is not None:
            hits += 1
            points.append(cached)
            continue
        task, executor, params = point_builder(values[index])
        point = run_sweep_point(
            task,
            executor,
            spec.with_seed(derive_seed(spec.seed, f"point[{index}]")),
            params=params,
        )
        # Checkpoint before moving on: a crash after this line costs
        # nothing, a crash before it costs exactly this point.
        store.put(key, point, meta={"index": index}, observe=observe, index=index)
        computed += 1
        points.append(point)
    if observe is not None and observe.enabled:
        observe.emit(
            "sweep_run",
            total=len(selected),
            computed=computed,
            hits=hits,
            elapsed_s=time.perf_counter() - start,
        )
    return points


def sweep_status(
    spec: SweepSpec,
    workload: Any,
    total: int,
    store: ResultStore,
    *,
    indices: Sequence[int] | None = None,
) -> dict[str, Any]:
    """Which of the sweep's points are already checkpointed.

    A pure probe (no hit/miss counters, no events) safe to run against a
    live sweep — ``repro sweep status`` polls this.

    Returns:
        ``{"total": int, "done": int, "missing": [indices...]}`` over the
        selected indices (default: the whole grid).
    """
    selected = _resolve_indices(total, indices)
    missing = [
        index
        for index in selected
        if not store.contains(point_key(spec, workload, index))
    ]
    return {
        "total": len(selected),
        "done": len(selected) - len(missing),
        "missing": missing,
    }
