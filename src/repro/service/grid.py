"""Declarative sweep grids: the serializable "what runs" of a sweep.

:func:`repro.analysis.sweep.run_sweep` takes a ``point_builder``
*callable*, which is perfect for programmatic use and useless for a
service — a callable cannot be hashed into a cache key, written into a
shard file, or reconstructed by ``repro sweep resume`` in a fresh
process.  :class:`SweepGrid` is the declarative equivalent: task,
channel, epsilon, simulator and the n-grid as plain data, with canonical
JSON round-tripping (:meth:`SweepGrid.to_json` / :meth:`SweepGrid.from_json`)
and a content address (:meth:`SweepGrid.grid_key`).

The task/channel/simulator registries here are the single source of
truth shared with the CLI (``repro demo``/``trace``/``overhead`` resolve
names through the same tables), so every scenario the CLI can run, the
sweep service can cache and shard.
"""

from __future__ import annotations

from dataclasses import dataclass
import json
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer
    from repro.parallel import TrialRunner

from repro.analysis.sweep import Executor, SweepSpec
from repro.channels import (
    BurstNoiseChannel,
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.errors import ConfigurationError
from repro.network.channel import NetworkBeepingChannel
from repro.network.local_broadcast import LocalBroadcastSimulator
from repro.network.mis import MISTask
from repro.network.tasks import (
    BroadcastTask,
    NeighborORTask,
    NetworkSizeEstimateTask,
)
from repro.network.topology import (
    TOPOLOGIES,
    Topology,
    TopologySpec,
    parse_topology,
)
from repro.parallel import (
    ChannelSpec,
    ProtocolExecutor,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.service.canon import canonical_json, content_key, point_key
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.tasks import (
    BitExchangeTask,
    InputSetTask,
    MaxIdTask,
    OrTask,
    ParityTask,
    PointerChasingTask,
    SizeEstimateTask,
)
from repro.tasks.base import Task

__all__ = [
    "CHANNELS",
    "NETWORK_CHANNELS",
    "NETWORK_SIMULATORS",
    "NETWORK_TASKS",
    "SIMULATORS",
    "TASKS",
    "TOPOLOGIES",
    "TopologySpec",
    "parse_topology",
    "make_task",
    "make_executor",
    "SweepGrid",
]

# Channel registry: name -> ChannelSpec builder.  Specs (not closures) so
# every executor pickles and ``--workers`` > 1 actually parallelises; the
# per-trial seed is injected by ChannelSpec.make.
CHANNELS: dict[str, Callable[[float], ChannelSpec]] = {
    "noiseless": lambda epsilon: ChannelSpec.of(
        NoiselessChannel, seed_kwarg=None
    ),
    "correlated": lambda epsilon: ChannelSpec.of(
        CorrelatedNoiseChannel, epsilon
    ),
    "one-sided": lambda epsilon: ChannelSpec.of(
        OneSidedNoiseChannel, epsilon
    ),
    "suppression": lambda epsilon: ChannelSpec.of(
        SuppressionNoiseChannel, epsilon
    ),
    "independent": lambda epsilon: ChannelSpec.of(
        IndependentNoiseChannel, epsilon
    ),
    "burst": lambda epsilon: ChannelSpec.of(
        BurstNoiseChannel.matched_to, epsilon, burst_length=8
    ),
}

SIMULATORS: dict[str, Any] = {
    "none": None,
    "repetition": RepetitionSimulator,
    "chunk": ChunkCommitSimulator,
    "hierarchical": HierarchicalSimulator,
    "rewind": RewindSimulator,
    "local-broadcast": LocalBroadcastSimulator,
}

TASKS: dict[str, Callable[[int], Task]] = {
    "input-set": lambda n: InputSetTask(n),
    "or": lambda n: OrTask(n),
    "parity": lambda n: ParityTask(n),
    "max-id": lambda n: MaxIdTask(n, id_bits=max(4, n.bit_length() + 2)),
    "bit-exchange": lambda n: BitExchangeTask(max(2, n)),
    "size-estimate": lambda n: SizeEstimateTask(n),
    "pointer-chasing": lambda n: PointerChasingTask(
        depth=max(2, n), domain_bits=3
    ),
}

# Network registries: what a scenario *with a topology* may combine.
# Tasks take the built Topology; channels wrap NetworkBeepingChannel with
# the TopologySpec kept declarative inside the ChannelSpec (picklable,
# content-addressable); simulators are the schemes that work with
# per-node views and no shared transcript.
NETWORK_TASKS: dict[str, Callable[[Topology], Task]] = {
    "mis": lambda topology: MISTask(topology),
    "broadcast": lambda topology: BroadcastTask(topology),
    "neighbor-or": lambda topology: NeighborORTask(topology),
    "net-size": lambda topology: NetworkSizeEstimateTask(topology),
}

NETWORK_CHANNELS: dict[
    str, Callable[[TopologySpec, float], ChannelSpec]
] = {
    "noiseless": lambda spec, epsilon: ChannelSpec.of(
        NetworkBeepingChannel, topology=spec, seed_kwarg=None
    ),
    "independent": lambda spec, epsilon: ChannelSpec.of(
        NetworkBeepingChannel, epsilon, topology=spec
    ),
    "edge-erasure": lambda spec, epsilon: ChannelSpec.of(
        NetworkBeepingChannel, topology=spec, edge_epsilon=epsilon
    ),
}

NETWORK_SIMULATORS = ("none", "repetition", "local-broadcast")


def make_task(
    name: str, n: int, topology: TopologySpec | None = None
) -> Task:
    """Build the named task at party count ``n``.

    With ``topology``, the name resolves through :data:`NETWORK_TASKS`
    and the task is built on the spec's graph (``n`` must agree with a
    size-pinned spec; unpinned generators take ``n`` as their size).
    """
    if topology is not None:
        try:
            factory = NETWORK_TASKS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown network task {name!r} "
                f"(choose from {sorted(NETWORK_TASKS)})"
            ) from None
        return factory(topology.with_n(n).build())
    try:
        task_factory = TASKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown task {name!r} (choose from {sorted(TASKS)})"
        ) from None
    return task_factory(n)


def make_executor(
    task: Task,
    channel: str,
    epsilon: float,
    simulator: str,
    topology: TopologySpec | None = None,
) -> Executor:
    """The picklable executor every run entry point shares.

    With ``topology``, the channel name resolves through
    :data:`NETWORK_CHANNELS` (graph-structured channels with the spec
    embedded declaratively) and only :data:`NETWORK_SIMULATORS` schemes
    are accepted; without it, ``"local-broadcast"`` is rejected (the
    scheme calibrates against a topology's degree).
    """
    if topology is not None:
        try:
            channel_spec = NETWORK_CHANNELS[channel](topology, epsilon)
        except KeyError:
            raise ConfigurationError(
                f"channel {channel!r} has no network form "
                f"(choose from {sorted(NETWORK_CHANNELS)})"
            ) from None
        if simulator not in NETWORK_SIMULATORS:
            raise ConfigurationError(
                f"simulator {simulator!r} needs the single-hop shared "
                f"transcript (network schemes: {sorted(NETWORK_SIMULATORS)})"
            )
    else:
        try:
            channel_spec = CHANNELS[channel](epsilon)
        except KeyError:
            raise ConfigurationError(
                f"unknown channel {channel!r} (choose from {sorted(CHANNELS)})"
            ) from None
        if simulator == "local-broadcast":
            raise ConfigurationError(
                "the local-broadcast scheme is topology-calibrated; "
                "pass a topology (e.g. --topology grid:8x8)"
            )
    try:
        simulator_cls = SIMULATORS[simulator]
    except KeyError:
        raise ConfigurationError(
            f"unknown simulator {simulator!r} "
            f"(choose from {sorted(SIMULATORS)})"
        ) from None
    if simulator_cls is None:
        return ProtocolExecutor(task=task, channel=channel_spec)
    return SimulationExecutor(
        task=task,
        channel=channel_spec,
        simulator=SimulatorSpec.of(simulator_cls),
    )


@dataclass(frozen=True)
class SweepGrid:
    """A fully declarative sweep: scenario + n-grid + execution knobs.

    Everything that shapes the numbers, as plain data — so the whole
    sweep serializes canonically (:meth:`to_json`), revives in another
    process (:meth:`from_json`), and addresses its cached points
    (:meth:`point_key`).  Runner/observer choices are deliberately *not*
    part of a grid: they cannot change results.

    Attributes:
        task: Task registry name (see :data:`TASKS`).
        ns: Party counts, one grid point each (order is identity: the
            same values in a different order is a different sweep).
        channel: Channel registry name (see :data:`CHANNELS`).
        epsilon: Channel noise rate.
        simulator: Simulator registry name; ``"none"`` runs the raw
            noiseless protocol over the noisy channel.
        trials: Trials per grid point.
        seed: Master seed (point ``i`` derives
            ``derive_seed(seed, f"point[{i}]")``).
        topology: Optional :class:`~repro.network.topology.TopologySpec`
            (or its dict form) turning the sweep into a network sweep:
            tasks resolve through :data:`NETWORK_TASKS`, channels through
            :data:`NETWORK_CHANNELS`, and each grid ``n`` builds the
            generator at that size (a size-pinned spec fixes ``n``).
    """

    SCHEMA_VERSION = 1

    task: str = "input-set"
    ns: tuple[int, ...] = (4, 8)
    channel: str = "correlated"
    epsilon: float = 0.1
    simulator: str = "chunk"
    trials: int = 10
    seed: int = 0
    topology: TopologySpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ns", tuple(int(n) for n in self.ns))
        if not self.ns:
            raise ConfigurationError("SweepGrid needs at least one n")
        if any(n < 1 for n in self.ns):
            raise ConfigurationError(f"party counts must be >= 1: {self.ns}")
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}"
            )
        topology = self.topology
        if topology is not None and not isinstance(topology, TopologySpec):
            topology = TopologySpec.from_dict(topology)
            object.__setattr__(self, "topology", topology)
        if topology is not None:
            checks = (
                (NETWORK_TASKS, self.task, "network task"),
                (NETWORK_CHANNELS, self.channel, "network channel"),
                (NETWORK_SIMULATORS, self.simulator, "network simulator"),
            )
            # Every grid n must be compatible with a size-pinned spec
            # (with_n raises on mismatch) and buildable at all.
            for n in self.ns:
                topology.with_n(n)
        else:
            checks = (
                (TASKS, self.task, "task"),
                (CHANNELS, self.channel, "channel"),
                (SIMULATORS, self.simulator, "simulator"),
            )
            if self.simulator == "local-broadcast":
                raise ConfigurationError(
                    "the local-broadcast scheme needs a topology"
                )
        for registry, name, kind in checks:
            if name not in registry:
                raise ConfigurationError(
                    f"unknown {kind} {name!r} "
                    f"(choose from {sorted(registry)})"
                )

    @property
    def total_points(self) -> int:
        """How many grid points this sweep has."""
        return len(self.ns)

    def spec(
        self,
        runner: "TrialRunner | None" = None,
        observe: "Observer | None" = None,
    ) -> SweepSpec:
        """The :class:`SweepSpec` this grid runs under."""
        return SweepSpec(
            trials=self.trials, seed=self.seed, runner=runner, observe=observe
        )

    def build_point(self, n: int) -> tuple[Task, Executor, dict[str, Any]]:
        """The ``point_builder`` contract for one grid value."""
        topology = (
            None if self.topology is None else self.topology.with_n(n)
        )
        task = make_task(self.task, n, topology=topology)
        executor = make_executor(
            task, self.channel, self.epsilon, self.simulator,
            topology=topology,
        )
        params: dict[str, Any] = {"n": n, "epsilon": self.epsilon}
        if topology is not None:
            params["topology"] = topology.label()
        return task, executor, params

    # -- serialization / addressing -------------------------------------

    def workload(self) -> dict[str, Any]:
        """The canonical JSON-able description hashed into cache keys.

        The ``topology`` entry appears only on network sweeps, so every
        pre-existing single-hop cache key is unchanged.  The runner is
        deliberately absent: every backend — serial, process, vectorized
        (including the trial-batched network kernel), composed — is
        bitwise-identical per ``(seed, index)``, so a cache warmed by
        one backend hits from any other.
        """
        workload: dict[str, Any] = {
            "schema": self.SCHEMA_VERSION,
            "task": self.task,
            "ns": list(self.ns),
            "channel": self.channel,
            "epsilon": self.epsilon,
            "simulator": self.simulator,
            "trials": self.trials,
            "seed": self.seed,
        }
        if self.topology is not None:
            workload["topology"] = self.topology.to_dict()
        return workload

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, byte-stable) for this grid."""
        return canonical_json(self.workload())

    @classmethod
    def from_json(cls, payload: str | dict[str, Any]) -> "SweepGrid":
        """Rebuild a grid from :meth:`to_json` output (string or dict)."""
        data = json.loads(payload) if isinstance(payload, str) else payload
        schema = data.get("schema")
        if schema != cls.SCHEMA_VERSION:
            raise ConfigurationError(
                f"SweepGrid schema {schema!r} is not supported "
                f"(expected {cls.SCHEMA_VERSION})"
            )
        topology = data.get("topology")
        return cls(
            task=str(data["task"]),
            ns=tuple(int(n) for n in data["ns"]),
            channel=str(data["channel"]),
            epsilon=float(data["epsilon"]),
            simulator=str(data["simulator"]),
            trials=int(data["trials"]),
            seed=int(data["seed"]),
            topology=(
                None
                if topology is None
                else TopologySpec.from_dict(topology)
            ),
        )

    def grid_key(self) -> str:
        """The content address of the whole sweep (names manifests)."""
        return content_key(self.workload())

    def point_key(self, index: int) -> str:
        """The cache key of grid point ``index``."""
        if not 0 <= index < self.total_points:
            raise ConfigurationError(
                f"point index {index} outside [0, {self.total_points})"
            )
        return point_key(self.spec(), self.workload(), index)
