"""The ``repro sweep`` command group: the sweep service from a shell.

Verbs (all sharing the grid flags ``--task/--ns/--channel/--epsilon/
--simulator/--trials/--seed`` plus ``--cache-dir``):

* ``run``    — run the sweep through the result cache, checkpointing
  every completed point; safe to kill at any instant.
* ``resume`` — alias of ``run`` (a re-run *is* the resume: cached points
  are skipped, only the remainder computes).
* ``status`` — probe which points are checkpointed, without touching
  counters; tails a live run's ``--events`` JSONL when given.
* ``merge``  — validate completeness and write the full ordered result
  (use after k shard runs against a shared cache dir).
* ``gc``     — delete cache objects no run manifest references, and reap
  stale temp files.

``--shard J/K`` restricts a run to stripe J of a K-way
:func:`~repro.service.shards.plan_shards` plan; ``--events FILE``
streams observe events (trials, cache hits/misses, per-point summaries)
to line-buffered, flush-per-event JSONL so ``status``/``tail -f`` never
see a torn line; ``--json`` prints a machine-readable summary (the CI
smoke job asserts ``computed == 0`` on a warm re-run from it).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.errors import ConfigurationError, ReproError
from repro.observe import JsonlSink, MetricsCollector, Observer, read_jsonl
from repro.parallel import RUNNER_BACKENDS, make_runner, use_runner
from repro.service.driver import run_sweep_resumable, sweep_status
from repro.service.grid import (
    CHANNELS,
    NETWORK_CHANNELS,
    NETWORK_TASKS,
    SIMULATORS,
    TASKS,
    SweepGrid,
    parse_topology,
)
from repro.service.shards import merge_sweep, plan_shards
from repro.service.store import ResultStore

__all__ = ["add_sweep_parser"]

_DEFAULT_CACHE_DIR = ".repro-cache"


def _add_grid_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--task",
        choices=sorted(set(TASKS) | set(NETWORK_TASKS)),
        default=None,
        help="default: input-set (single-hop) / mis (with --topology)",
    )
    parser.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=None,
        help="party counts, one grid point each "
        "(default: 4 8; with --topology: the spec's pinned size, or 64)",
    )
    parser.add_argument(
        "--topology",
        metavar="SPEC",
        default=None,
        help="network sweep over a graph family: kind:params shorthand "
        "(e.g. grid:8x8, geometric:r=0.2,seed=3, scale-free:m=2,seed=1)",
    )
    parser.add_argument(
        "--channel",
        choices=sorted(set(CHANNELS) | set(NETWORK_CHANNELS)),
        default=None,
        help="default: correlated (single-hop) / independent (with --topology)",
    )
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument(
        "--simulator",
        choices=sorted(SIMULATORS),
        default=None,
        help="default: chunk (single-hop) / local-broadcast (with --topology)",
    )
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        help=f"content-addressed result cache (default: {_DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable JSON summary to stdout",
    )


def _grid_from_args(args: argparse.Namespace) -> SweepGrid:
    topology = parse_topology(args.topology) if args.topology else None
    if topology is None:
        task = args.task or "input-set"
        channel = args.channel or "correlated"
        simulator = args.simulator or "chunk"
        ns = tuple(args.ns) if args.ns else (4, 8)
    else:
        task = args.task or "mis"
        channel = args.channel or "independent"
        simulator = args.simulator or (
            "local-broadcast" if args.epsilon > 0 else "none"
        )
        if args.ns:
            ns = tuple(args.ns)
        else:
            ns = (topology.size,) if topology.size is not None else (64,)
    return SweepGrid(
        task=task,
        ns=ns,
        channel=channel,
        epsilon=args.epsilon,
        simulator=simulator,
        trials=args.trials,
        seed=args.seed,
        topology=topology,
    )


def _parse_shard(text: str, total: int) -> tuple[int, int]:
    """Parse ``"J/K"`` and bounds-check against the grid size."""
    try:
        shard_text, of_text = text.split("/", 1)
        shard, of = int(shard_text), int(of_text)
    except ValueError:
        raise ConfigurationError(
            f"--shard wants J/K (e.g. 0/3), got {text!r}"
        ) from None
    if not 0 <= shard < of:
        raise ConfigurationError(
            f"--shard {text}: shard index must be in [0, {of})"
        )
    if of > total:
        raise ConfigurationError(
            f"--shard {text}: only {total} grid points to split"
        )
    return shard, of


def _print_summary(summary: dict[str, Any], args: argparse.Namespace, human: str) -> None:
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(human)


def cmd_sweep_run(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    store = ResultStore(args.cache_dir)
    collector = MetricsCollector()
    sinks: list[Any] = [collector]
    if args.events:
        sinks.append(JsonlSink(args.events, append=True, flush=True))
    observer = Observer(sinks)

    indices = None
    shard_label = ""
    if args.shard:
        shard, of = _parse_shard(args.shard, grid.total_points)
        indices = plan_shards(grid.total_points, of)[shard].indices
        shard_label = f" (shard {shard}/{of}: indices {list(indices)})"

    store.write_manifest(
        grid.grid_key(),
        {
            "schema": 1,
            "grid": grid.workload(),
            "total": grid.total_points,
        },
    )
    runner = make_runner(args.workers, backend=args.backend)
    try:
        with use_runner(runner):
            points = run_sweep_resumable(
                grid.ns,
                grid.build_point,
                grid.spec(observe=observer),
                store=store,
                workload=grid.workload(),
                indices=indices,
            )
    finally:
        runner.close()
        observer.close()

    hits = collector.count("cache_hit")
    computed = collector.count("cache_miss")
    decisions: dict[str, int] = {}
    for record in collector.events_of("backend_selected"):
        chosen = str(record.get("backend"))
        decisions[chosen] = decisions.get(chosen, 0) + 1
    summary = {
        "grid": grid.grid_key(),
        "cache_dir": str(store.root),
        "points": len(points),
        "computed": computed,
        "hits": hits,
        "shard": args.shard or None,
        "backend": args.backend,
        "workers": args.workers,
        # The auto planner's per-batch choices and the last runner-level
        # downgrade reason (None when every batch ran as selected).
        "backend_decisions": decisions,
        "last_fallback_reason": getattr(
            runner, "last_fallback_reason", None
        ),
    }
    _print_summary(
        summary,
        args,
        f"sweep {grid.grid_key()[:12]}: {len(points)} point(s), "
        f"computed {computed}, cache hits {hits}{shard_label}",
    )
    if not args.json:
        for point in points:
            print(
                f"  n={point.params.get('n'):>4}  "
                f"success={point.success.value:.3f}  "
                f"overhead=x{point.mean_overhead:.1f}"
            )
    if args.output:
        payload = {
            "schema": 1,
            "grid": grid.workload(),
            "points": [point.to_dict() for point in points],
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def cmd_sweep_status(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    store = ResultStore(args.cache_dir)
    status = sweep_status(
        grid.spec(), grid.workload(), grid.total_points, store
    )
    summary: dict[str, Any] = {
        "grid": grid.grid_key(),
        "cache_dir": str(store.root),
        **status,
    }
    if args.events:
        try:
            with open(args.events, encoding="utf-8") as handle:
                events = read_jsonl(handle)
        except OSError:
            events = []
        counts: dict[str, int] = {}
        for record in events:
            name = record.get("event", "?")
            counts[name] = counts.get(name, 0) + 1
        summary["events"] = counts
        # Planner visibility: which backends the auto planner picked and
        # the last runner-level downgrade it observed (the
        # backend_selected events carry both; see repro.observe).
        selections = [
            record
            for record in events
            if record.get("event") == "backend_selected"
        ]
        if selections:
            backends: dict[str, int] = {}
            for record in selections:
                chosen = str(record.get("backend"))
                backends[chosen] = backends.get(chosen, 0) + 1
            summary["backend_decisions"] = backends
            summary["last_backend_reason"] = selections[-1].get("reason")
            summary["last_fallback_reason"] = next(
                (
                    record.get("fallback_reason")
                    for record in reversed(selections)
                    if record.get("fallback_reason") is not None
                ),
                None,
            )
    complete = status["done"] == status["total"]
    human = (
        f"sweep {grid.grid_key()[:12]}: {status['done']}/{status['total']} "
        f"point(s) checkpointed"
        + ("" if complete else f", missing {status['missing']}")
    )
    if args.events and not args.json:
        human += f"\n  events: {summary.get('events', {})}"
        if "backend_decisions" in summary:
            human += (
                f"\n  backends: {summary['backend_decisions']}"
                f" (last fallback: {summary['last_fallback_reason']})"
            )
    _print_summary(summary, args, human)
    return 0 if complete else 1


def cmd_sweep_merge(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    store = ResultStore(args.cache_dir)
    try:
        points = merge_sweep(
            grid.spec(), grid.workload(), grid.total_points, store
        )
    except ConfigurationError as error:
        print(f"merge failed: {error}", file=sys.stderr)
        return 1
    payload = {
        "schema": 1,
        "grid": grid.workload(),
        "points": [point.to_dict() for point in points],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
    _print_summary(
        {
            "grid": grid.grid_key(),
            "points": len(points),
            "output": args.output,
        },
        args,
        f"merged {len(points)} point(s) -> {args.output}",
    )
    return 0


def cmd_sweep_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    keep: set[str] = set()
    manifests = store.manifests()
    for payload in manifests.values():
        try:
            grid = SweepGrid.from_json(payload["grid"])
        except (ReproError, KeyError, TypeError, ValueError):
            continue  # unreadable manifest: its objects are unreferenced
        keep.update(grid.point_key(i) for i in range(grid.total_points))
    stats = store.gc(keep)
    summary = {
        "cache_dir": str(store.root),
        "manifests": len(manifests),
        **stats,
    }
    _print_summary(
        summary,
        args,
        f"gc: removed {stats['removed']} object(s), kept {stats['kept']}, "
        f"reaped {stats['tmp_removed']} temp file(s) "
        f"({len(manifests)} manifest(s))",
    )
    return 0


def add_sweep_parser(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``sweep`` command group on the root CLI parser."""
    sweep = subparsers.add_parser(
        "sweep",
        help="resumable, cached, sharded sweeps (the sweep service)",
    )
    verbs = sweep.add_subparsers(dest="sweep_command", required=True)

    for name, help_text in (
        ("run", "run a sweep through the result cache (kill-safe)"),
        ("resume", "alias of run: cached points skip, the rest computes"),
    ):
        verb = verbs.add_parser(name, help=help_text)
        _add_grid_args(verb)
        verb.add_argument(
            "--workers",
            type=int,
            default=1,
            help="trial-runner workers (results identical for any count)",
        )
        verb.add_argument(
            "--backend",
            choices=RUNNER_BACKENDS,
            default="auto",
            help="trial-runner backend; cache keys are backend-invariant, "
            "so a cache warmed by one backend hits from any other",
        )
        verb.add_argument(
            "--shard",
            metavar="J/K",
            help="run only stripe J of a K-way shard plan",
        )
        verb.add_argument(
            "--events",
            metavar="FILE",
            help="stream observe events (JSONL, append + flush-per-event)",
        )
        verb.add_argument(
            "-o", "--output", help="also write the points as JSON here"
        )
        verb.set_defaults(func=cmd_sweep_run)

    status = verbs.add_parser(
        "status", help="how many points are checkpointed (exit 1 if incomplete)"
    )
    _add_grid_args(status)
    status.add_argument(
        "--events", metavar="FILE", help="also summarize this events JSONL"
    )
    status.set_defaults(func=cmd_sweep_status)

    merge = verbs.add_parser(
        "merge", help="validate completeness and write the merged results"
    )
    _add_grid_args(merge)
    merge.add_argument(
        "-o", "--output", required=True, help="merged results JSON file"
    )
    merge.set_defaults(func=cmd_sweep_merge)

    gc = verbs.add_parser(
        "gc", help="drop cache objects no run manifest references"
    )
    gc.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {_DEFAULT_CACHE_DIR})",
    )
    gc.add_argument("--json", action="store_true")
    gc.set_defaults(func=cmd_sweep_gc)
