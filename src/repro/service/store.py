"""The content-addressed result store: persisted ``SweepPoint`` objects.

Layout under the cache directory::

    <root>/
      objects/<key[:2]>/<key>.json   one SweepPoint envelope per key
      runs/<grid-key>.json           manifests: which sweeps wrote here

Every write is **atomic**: the envelope is written to a dot-prefixed
temporary file in the final directory, fsynced, then ``os.replace``d into
place — a reader (or a crash at any instant) sees either the complete
previous state or the complete new one, never a torn file.  Reads are
**self-healing**: an envelope that fails to parse or fails validation
(wrong embedded key, wrong schema) is deleted and reported as a miss, so
a corrupted cache degrades to recomputation instead of wrong answers.

The store keeps hit/miss/put counters (:attr:`ResultStore.counters`) and
mirrors them into the :mod:`repro.observe` event stream — ``cache_hit``,
``cache_miss``, ``cache_put`` — when callers pass an observer, so a live
``repro sweep run`` can stream cache behaviour to JSONL alongside the
trial events.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Collection, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.analysis.sweep import SweepPoint
from repro.service.canon import CACHE_SCHEMA_VERSION, canonical_json

__all__ = ["ResultStore"]


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp-file + fsync + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".tmp-{path.name}-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ResultStore:
    """Content-addressed, crash-safe persistence for sweep points.

    Args:
        root: The cache directory (created lazily on first write).

    Attributes:
        counters: ``{"hits", "misses", "puts", "invalid"}`` — cumulative
            over this instance's lifetime.  ``invalid`` counts corrupted
            envelopes that were discarded (each also counts as a miss).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.counters: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "invalid": 0,
        }

    # -- paths ----------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def object_path(self, key: str) -> Path:
        """Where the envelope for ``key`` lives (existing or not)."""
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- observe plumbing ----------------------------------------------

    @staticmethod
    def _emit(
        observe: "Observer | None",
        event: str,
        key: str,
        index: int | None,
    ) -> None:
        if observe is not None and observe.enabled:
            if index is None:
                observe.emit(event, key=key)
            else:
                observe.emit(event, key=key, index=index)

    # -- object access --------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether an envelope for ``key`` exists (no counters touched).

        A pure probe for status displays; it does not validate the
        envelope — :meth:`get` does, on the path that matters.
        """
        return self.object_path(key).is_file()

    def get(
        self,
        key: str,
        *,
        observe: "Observer | None" = None,
        index: int | None = None,
    ) -> SweepPoint | None:
        """The cached point under ``key``, or ``None`` on a miss.

        Corrupted or mismatched envelopes are deleted (self-healing) and
        reported as misses.
        """
        path = self.object_path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.counters["misses"] += 1
            self._emit(observe, "cache_miss", key, index)
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            data = None
        if (
            not isinstance(data, dict)
            or data.get("schema") != CACHE_SCHEMA_VERSION
            or data.get("key") != key
            or "point" not in data
        ):
            # Torn write, truncation, or foreign file: discard and
            # recompute rather than trust it.
            path.unlink(missing_ok=True)
            self.counters["invalid"] += 1
            self.counters["misses"] += 1
            self._emit(observe, "cache_miss", key, index)
            return None
        self.counters["hits"] += 1
        self._emit(observe, "cache_hit", key, index)
        return SweepPoint.from_dict(data["point"])

    def put(
        self,
        key: str,
        point: SweepPoint,
        *,
        meta: Mapping[str, Any] | None = None,
        observe: "Observer | None" = None,
        index: int | None = None,
    ) -> Path:
        """Persist ``point`` under ``key`` atomically; returns the path.

        The envelope stores :meth:`SweepPoint.to_dict` (timing excluded —
        cached results must be backend- and wall-clock-independent) plus
        free-form ``meta`` that never participates in addressing.
        """
        path = self.object_path(key)
        envelope = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "meta": dict(meta or {}),
            "point": point.to_dict(),
        }
        _atomic_write_text(path, canonical_json(envelope))
        self.counters["puts"] += 1
        self._emit(observe, "cache_put", key, index)
        return path

    def keys(self) -> Iterator[str]:
        """Every key with a (syntactically) present envelope."""
        if not self.objects_dir.is_dir():
            return
        for bucket in sorted(self.objects_dir.iterdir()):
            if not bucket.is_dir():
                continue
            for entry in sorted(bucket.glob("*.json")):
                if not entry.name.startswith("."):
                    yield entry.stem

    # -- run manifests --------------------------------------------------

    def write_manifest(self, grid_key: str, payload: Mapping[str, Any]) -> Path:
        """Record that a sweep (named by its grid key) uses this cache."""
        path = self.runs_dir / f"{grid_key}.json"
        _atomic_write_text(path, canonical_json(dict(payload)))
        return path

    def manifests(self) -> dict[str, dict[str, Any]]:
        """All readable manifests, keyed by grid key (corrupt ones skipped)."""
        found: dict[str, dict[str, Any]] = {}
        if not self.runs_dir.is_dir():
            return found
        for entry in sorted(self.runs_dir.glob("*.json")):
            if entry.name.startswith("."):
                continue
            try:
                payload = json.loads(entry.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(payload, dict):
                found[entry.stem] = payload
        return found

    # -- garbage collection ---------------------------------------------

    def gc(self, keep: Collection[str]) -> dict[str, int]:
        """Delete objects whose key is not in ``keep``; reap stale tmps.

        Returns ``{"removed", "kept", "tmp_removed"}``.  Manifests are
        never touched — compute ``keep`` from them (the CLI's ``sweep
        gc`` does) or pass an explicit keep-set.
        """
        keep_set = set(keep)
        removed = kept = tmp_removed = 0
        if self.objects_dir.is_dir():
            for bucket in list(self.objects_dir.iterdir()):
                if not bucket.is_dir():
                    continue
                for entry in list(bucket.iterdir()):
                    if entry.name.startswith(".tmp-"):
                        # Staging left behind by a crash mid-write.
                        entry.unlink(missing_ok=True)
                        tmp_removed += 1
                    elif entry.suffix == ".json":
                        if entry.stem in keep_set:
                            kept += 1
                        else:
                            entry.unlink(missing_ok=True)
                            removed += 1
                if not any(bucket.iterdir()):
                    bucket.rmdir()
        return {"removed": removed, "kept": kept, "tmp_removed": tmp_removed}
