"""The sweep service: resumable, cached, sharded Monte-Carlo sweeps.

The determinism contract (PR 2) makes every sweep point a pure function
of ``(what runs, trials, seed, index)`` — bitwise reproducible, hence
**cacheable forever**.  This package is the production shape built on
that fact:

* :mod:`repro.service.canon` — canonical JSON and the content-addressed
  cache-key contract (:func:`point_key`);
* :mod:`repro.service.store` — :class:`ResultStore`, the crash-safe
  on-disk object store (atomic renames, self-healing reads, hit/miss
  counters mirrored into :mod:`repro.observe` events);
* :mod:`repro.service.grid` — :class:`SweepGrid`, the declarative,
  serializable description of a sweep (task × ns × channel × simulator);
* :mod:`repro.service.driver` — :func:`run_sweep_resumable`, the
  checkpointing driver: every completed point persists immediately, an
  interrupted sweep resumes by simply re-running, and results are
  bitwise identical to a cold :func:`~repro.analysis.sweep.run_sweep`;
* :mod:`repro.service.shards` — :func:`plan_shards` /
  :func:`validate_shards` / :func:`merge_sweep`, splitting one grid
  across processes or machines and reassembling the ordered result;
* :mod:`repro.service.cli` — the ``repro sweep run|status|resume|merge|gc``
  verbs.

Quickstart::

    from repro import ResultStore, SweepGrid, run_sweep_resumable

    grid = SweepGrid(task="parity", ns=(4, 8, 16), trials=50, seed=7)
    store = ResultStore("results-cache")
    points = run_sweep_resumable(
        grid.ns, grid.build_point, grid.spec(),
        store=store, workload=grid.workload(),
    )  # second call: all cache hits, milliseconds

See the "Sweep service" section of ``docs/api.md`` for the cache-key
contract, invalidation rules, and the cache-dir layout.
"""

from repro.service.canon import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    content_key,
    point_key,
)
from repro.service.driver import run_sweep_resumable, sweep_status
from repro.service.grid import SweepGrid, make_executor, make_task
from repro.service.shards import (
    ShardSpec,
    merge_sweep,
    plan_shards,
    validate_shards,
)
from repro.service.store import ResultStore

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "canonical_json",
    "content_key",
    "point_key",
    "ResultStore",
    "SweepGrid",
    "make_task",
    "make_executor",
    "run_sweep_resumable",
    "sweep_status",
    "ShardSpec",
    "plan_shards",
    "validate_shards",
    "merge_sweep",
]
