"""Canonical JSON and content-addressed cache keys.

The sweep service caches :class:`~repro.analysis.sweep.SweepPoint`
results forever, which is only sound because a key *fully determines*
the bytes it names.  Two layers make that true:

* :func:`canonical_json` — one byte-stable serialization: sorted keys,
  fixed separators, no NaN/Infinity (their textual forms are not valid
  JSON and not portable).  Equal values always serialize to equal bytes.
* :func:`content_key` — BLAKE2b-128 over the canonical bytes.  The same
  construction :func:`repro.rng.derive_seed` uses for seeds, applied to
  whole payloads.

**Cache-key contract.**  A sweep point's key (:func:`point_key`) hashes
the canonical JSON of::

    {kind, schema, repro, spec, workload, index}

where ``spec`` is :meth:`SweepSpec.to_json` (``trials`` + ``seed`` —
the only spec fields that shape results; runner/observe are excluded by
construction), ``workload`` describes *what* runs (for grids, the
:meth:`~repro.service.grid.SweepGrid.workload` payload naming the task,
channel, epsilon and simulator), ``index`` is the grid-point index whose
per-point seed is ``derive_seed(seed, f"point[{index}]")``, and ``repro``
is the package version.  Anything that could change the numbers changes
the key; anything that cannot (worker counts, observers, wall-clock) is
kept out.  Invalidation is therefore automatic: bumping the package
version, the cache schema, the spec schema, or any workload field simply
addresses fresh keys, and stale objects linger harmlessly until
``repro sweep gc`` removes them.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sweep import SweepSpec

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "canonical_json",
    "content_key",
    "point_key",
]

#: Version of the cache object layout (key payload + stored envelope).
#: Bump whenever either changes; old objects then become unreachable
#: (different keys) and unreadable (envelope validation), never silently
#: misinterpreted.
CACHE_SCHEMA_VERSION = 1

_KEY_BYTES = 16  # 128-bit keys: collision-free at any realistic scale.


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to byte-stable canonical JSON.

    Sorted keys, compact separators, ``allow_nan=False`` — equal values
    give equal strings on every platform and Python version, which is
    what makes hashing them meaningful.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(value: Any) -> str:
    """The content address of a JSON-able value (32 hex chars).

    >>> content_key({"a": 1}) == content_key({"a": 1})
    True
    >>> content_key({"a": 1}) != content_key({"a": 2})
    True
    """
    digest = hashlib.blake2b(
        canonical_json(value).encode("utf-8"), digest_size=_KEY_BYTES
    )
    return digest.hexdigest()


def point_key(spec: "SweepSpec", workload: Any, index: int) -> str:
    """The cache key of grid point ``index`` of a sweep.

    See the module docstring for the exact payload.  ``workload`` must be
    a JSON-able description of what the sweep runs (task, channel,
    simulator, grid values ...); pass ``None`` only for throwaway caches
    where the spec alone disambiguates.
    """
    import repro

    return content_key(
        {
            "kind": "sweep-point",
            "schema": CACHE_SCHEMA_VERSION,
            "repro": repro.__version__,
            "spec": json.loads(spec.to_json()),
            "workload": workload,
            "index": int(index),
        }
    )
