"""Shard planning and merging: split one sweep across k workers/machines.

A shard is just a subset of *global* point indices — because per-point
seeds and cache keys are functions of the global index alone, k disjoint
shard runs against a shared (or later-merged) cache directory produce
exactly the points one cold :func:`~repro.analysis.sweep.run_sweep`
would.  The planner cuts contiguous, balanced stripes;
:func:`validate_shards` proves a plan disjoint and complete before
anything runs; :func:`merge_sweep` assembles the full ordered result from
the store afterwards, failing loudly (with the missing indices) if any
shard has not finished.

Shard execution routes through the ordinary runner registry: run each
shard under :func:`repro.parallel.use_runner` (or pass ``runner=`` on the
spec) to pick serial/process-pool per shard — ``repro sweep run --shard
j/k --workers w`` composes both levels of parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.sweep import SweepPoint, SweepSpec
from repro.errors import ConfigurationError
from repro.service.canon import point_key
from repro.service.store import ResultStore

__all__ = ["ShardSpec", "plan_shards", "validate_shards", "merge_sweep"]


@dataclass(frozen=True)
class ShardSpec:
    """One planned shard: ``indices`` of the global grid, ``shard``/``of``."""

    shard: int
    of: int
    indices: tuple[int, ...]


def plan_shards(total: int, count: int) -> list[ShardSpec]:
    """Split ``total`` grid points into ``count`` contiguous stripes.

    Stripes are balanced (sizes differ by at most one) and cover
    ``range(total)`` exactly.  ``count`` must be in ``[1, total]`` — an
    empty shard is always a planning mistake.
    """
    if total < 1:
        raise ConfigurationError(f"total must be >= 1, got {total}")
    if not 1 <= count <= total:
        raise ConfigurationError(
            f"shard count must be in [1, {total}], got {count}"
        )
    base, extra = divmod(total, count)
    shards: list[ShardSpec] = []
    start = 0
    for shard in range(count):
        size = base + (1 if shard < extra else 0)
        shards.append(
            ShardSpec(
                shard=shard,
                of=count,
                indices=tuple(range(start, start + size)),
            )
        )
        start += size
    return shards


def validate_shards(shards: list[ShardSpec], total: int) -> None:
    """Prove a shard plan disjoint and complete for a ``total``-point grid.

    Raises :class:`~repro.errors.ConfigurationError` naming the first
    violation: inconsistent ``of`` fields, duplicate shard ids,
    overlapping indices, or gaps.
    """
    if not shards:
        raise ConfigurationError("empty shard plan")
    count = len(shards)
    seen_ids = set()
    seen_indices: set[int] = set()
    for shard in shards:
        if shard.of != count:
            raise ConfigurationError(
                f"shard {shard.shard} claims of={shard.of}, "
                f"but the plan has {count} shards"
            )
        if shard.shard in seen_ids:
            raise ConfigurationError(f"duplicate shard id {shard.shard}")
        seen_ids.add(shard.shard)
        overlap = seen_indices.intersection(shard.indices)
        if overlap:
            raise ConfigurationError(
                f"shard {shard.shard} overlaps earlier shards on "
                f"indices {sorted(overlap)}"
            )
        seen_indices.update(shard.indices)
    if seen_indices != set(range(total)):
        missing = sorted(set(range(total)) - seen_indices)
        extra = sorted(seen_indices - set(range(total)))
        raise ConfigurationError(
            f"shard plan does not cover the grid exactly: "
            f"missing {missing}, extra {extra}"
        )


def merge_sweep(
    spec: SweepSpec,
    workload: Any,
    total: int,
    store: ResultStore,
) -> list[SweepPoint]:
    """Assemble the full ordered sweep result from the store.

    The merge *is* the completeness check: every global index must have a
    valid cached point, else a :class:`~repro.errors.ConfigurationError`
    lists the missing indices (a shard that never ran, or objects lost to
    corruption/gc).  Returns points in index order — bitwise what a cold
    ``run_sweep`` returns.
    """
    points: list[SweepPoint] = []
    missing: list[int] = []
    for index in range(total):
        point = store.get(point_key(spec, workload, index), index=index)
        if point is None:
            missing.append(index)
        else:
            points.append(point)
    if missing:
        raise ConfigurationError(
            f"sweep incomplete: missing point indices {missing} "
            f"({len(missing)}/{total}); run the remaining shards "
            "or `repro sweep resume` first"
        )
    return points
