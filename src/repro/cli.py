"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — package, model and scheme summary.
* ``demo`` — run one task over a noisy channel with a chosen simulator and
  print what happened (the quickstart, parameterised).
* ``trace`` — the same run with the observability layer attached: emit the
  documented trace events (chunk attempts, rewinds, owner disagreements,
  noise flips) to a JSONL file and/or a terminal summary.
* ``overhead`` — measure the simulation overhead across a sweep of n and
  fit the Θ(log n) curve.
* ``sweep`` — the sweep service: ``run``/``resume`` a grid through the
  content-addressed result cache (checkpointed, kill-safe), ``status``
  a live run, ``merge`` shard runs, ``gc`` the cache
  (see :mod:`repro.service.cli`).
* ``experiments`` — list the benchmark experiments and how to run them.
* ``bench calibrate`` — measure the scalar↔vectorized crossover on this
  machine and write the table the ``auto`` backend planner routes on.

Every subcommand that runs trials shares the same execution surface
(:func:`add_common_run_args`: ``--trials/--seed/--workers``), builds
picklable :class:`~repro.parallel.ChannelSpec`-based executors, and
dispatches through the trial-runner registry
(:func:`repro.parallel.make_runner`), so ``--workers N`` behaves
identically everywhere and results are bitwise independent of it.

Every command is a plain function taking parsed arguments and returning an
exit code, so the CLI is unit-testable without subprocesses.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__
from repro.analysis import fit_log, format_table
from repro.analysis.sweep import SweepSpec, run_sweep_point
from repro.parallel import RUNNER_BACKENDS, make_runner

# Task/channel/simulator registries and executor construction live in
# repro.service.grid — one source of truth shared with the sweep service,
# so every scenario the CLI can run the service can cache and shard.
from repro.service.cli import add_sweep_parser
from repro.service.grid import (
    CHANNELS as _CHANNEL_SPECS,
    NETWORK_CHANNELS as _NETWORK_CHANNELS,
    NETWORK_TASKS as _NETWORK_TASKS,
    SIMULATORS as _SIMULATORS,
    TASKS as _TASKS,
    TOPOLOGIES as _TOPOLOGIES,
    make_executor as _make_executor,
    make_task as _make_task,
    parse_topology as _parse_topology,
)

__all__ = ["main", "build_parser", "add_common_run_args"]


def cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} — reproduction of 'Noisy Beeps' "
          "(Efremenko, Kol, Saxena; PODC 2020)")
    print()
    print("Model: n-party beeping channel; every round delivers the OR of")
    print("the beeped bits, flipped with probability epsilon (correlated:")
    print("all parties receive the same flip).")
    print()
    print("Channels  :", ", ".join(sorted(_CHANNEL_SPECS)))
    print("Simulators:", ", ".join(sorted(_SIMULATORS)))
    print("Tasks     : input-set, or, parity, max-id, bit-exchange, "
          "size-estimate, pointer-chasing")
    print()
    print("Networks (--topology kind:params, e.g. grid:8x8):")
    print("  Topologies:", ", ".join(sorted(_TOPOLOGIES)))
    print("  Tasks     :", ", ".join(sorted(_NETWORK_TASKS)))
    print("  Channels  :", ", ".join(sorted(_NETWORK_CHANNELS)))
    print()
    print("Headline results: simulation over noise costs Theta(log n) —")
    print("necessary (Theorem 1.1) and sufficient (Theorem 1.2).")
    return 0


def _resolve_scenario(args: argparse.Namespace):
    """Build (task, executor, scenario-label dict) from scenario flags.

    ``--task``/``--channel``/``--simulator``/``--n`` parse as ``None``
    sentinels so the defaults can depend on ``--topology``: single-hop
    runs keep the historical input-set/correlated/chunk defaults, network
    runs default to mis/independent/local-broadcast ("none" at ε=0) with
    ``n`` taken from a size-pinned spec.
    """
    topology = _parse_topology(args.topology) if args.topology else None
    if topology is None:
        task_name = args.task or "input-set"
        channel = args.channel or "correlated"
        simulator = args.simulator or "chunk"
        n = args.n if args.n is not None else 8
    else:
        task_name = args.task or "mis"
        channel = args.channel or "independent"
        simulator = args.simulator or (
            "local-broadcast" if args.epsilon > 0 else "none"
        )
        if args.n is not None:
            n = args.n
        elif topology.size is not None:
            n = topology.size
        else:
            n = 64
        topology = topology.with_n(n)
    task = _make_task(task_name, n, topology=topology)
    executor = _make_executor(
        task, channel, args.epsilon, simulator, topology=topology
    )
    scenario = {
        "task": task_name,
        "channel": channel,
        "simulator": simulator,
        "topology": None if topology is None else topology.label(),
    }
    return task, executor, scenario


def _scenario_line(scenario: dict, task, epsilon: float) -> str:
    line = f"task={scenario['task']} n={task.n_parties}"
    if scenario["topology"] is not None:
        line += f" topology={scenario['topology']}"
    return (
        line
        + f" channel={scenario['channel']} epsilon={epsilon}"
        + f" simulator={scenario['simulator']}"
    )


def cmd_demo(args: argparse.Namespace) -> int:
    task, executor, scenario = _resolve_scenario(args)
    runner = make_runner(args.workers, backend=args.backend)
    try:
        point = run_sweep_point(
            task,
            executor,
            SweepSpec(trials=args.trials, seed=args.seed, runner=runner),
        )
    finally:
        runner.close()
    wins = point.success.successes
    overhead = point.mean_overhead
    print(_scenario_line(scenario, task, args.epsilon))
    print(
        f"success: {wins}/{args.trials}   rounds: {point.mean_rounds:.0f} "
        f"(overhead x{overhead:.1f} vs {task.noiseless_length()} noiseless)"
    )
    return 0 if wins > args.trials // 2 else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.observe import JsonlSink, Observer, SummarySink
    from repro.rng import derive_seed, spawn

    task, executor, scenario = _resolve_scenario(args)

    sinks = []
    if args.output:
        sinks.append(JsonlSink(args.output))
    if not args.output or args.summary:
        sinks.append(SummarySink())
    observer = Observer(sinks)

    # Trials run in-process with the sweep layer's exact seed labels
    # (see repro.parallel.runner.run_trial), so each traced trial is the
    # same execution a sweep would have run — just with events attached.
    wins = 0
    with observer:
        for index in range(args.trials):
            inputs = task.sample_inputs(spawn(args.seed, f"inputs[{index}]"))
            trial_seed = derive_seed(args.seed, f"trial[{index}]")
            result = executor(inputs, trial_seed, observe=observer)
            success = bool(task.is_correct(inputs, result.outputs))
            wins += success
            observer.emit(
                "trial",
                index=index,
                success=success,
                rounds=float(result.rounds),
                flips=result.channel_stats.flips,
                total_energy=result.total_energy,
            )
    print(
        f"traced {args.trials} trial(s): "
        + _scenario_line(scenario, task, args.epsilon)
        + f" success={wins}/{args.trials}",
        file=sys.stderr,
    )
    if args.output:
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _with_profile(profile, default_path: str, fn) -> int:
    """Run ``fn`` under :mod:`cProfile` when ``--profile`` was given.

    ``profile`` is ``None`` (flag absent: run plain), ``""`` (bare flag:
    dump to ``default_path``) or an explicit pstats path.  The dump is
    written even when ``fn`` raises, so a hung-then-interrupted run still
    leaves its profile behind; load it with :mod:`pstats` or snakeviz.
    """
    if profile is None:
        return fn()
    import cProfile

    path = profile or default_path
    profiler = cProfile.Profile()
    try:
        return profiler.runcall(fn)
    finally:
        profiler.dump_stats(path)
        print(f"wrote profile to {path}", file=sys.stderr)


def _add_profile_arg(parser: argparse.ArgumentParser, default_path: str):
    parser.add_argument(
        "--profile",
        nargs="?",
        const="",
        default=None,
        metavar="PSTATS_PATH",
        help="wrap the run in cProfile and write a pstats dump "
        f"(default: {default_path})",
    )


def cmd_overhead(args: argparse.Namespace) -> int:
    if args.simulator == "none":
        print("overhead needs a real simulator (not 'none')", file=sys.stderr)
        return 2
    return _with_profile(
        args.profile, "profile_overhead.pstats", lambda: _run_overhead(args)
    )


def _run_overhead(args: argparse.Namespace) -> int:
    topology = _parse_topology(args.topology) if args.topology else None
    if topology is None:
        task_name, channel = "input-set", "correlated"
        simulator = args.simulator or "chunk"
        ns = args.ns or [4, 8, 16, 32]
        subject = "InputSet_n"
    else:
        # One-round neighborhood OR isolates the scheme's overhead; the
        # independent network channel is what local-broadcast calibrates
        # against (per-node flips at rate epsilon).
        task_name, channel = "neighbor-or", "independent"
        simulator = args.simulator or "local-broadcast"
        if args.ns:
            ns = args.ns
        else:
            ns = [topology.size] if topology.size is not None else [64, 256]
        subject = f"{task_name} @ {topology.label()}"
    rows = []
    overheads = []
    trials_per_s = []
    runner = make_runner(args.workers, backend=args.backend)
    try:
        for n in ns:
            pinned = None if topology is None else topology.with_n(n)
            task = _make_task(task_name, n, topology=pinned)
            # Picklable executor so --workers > 1 can fan trials out to a
            # process pool; results are identical for every worker count.
            executor = _make_executor(
                task, channel, args.epsilon, simulator, topology=pinned
            )
            point = run_sweep_point(
                task,
                executor,
                SweepSpec(
                    trials=args.trials, seed=args.seed + n, runner=runner
                ),
            )
            overheads.append(point.mean_overhead)
            trials_per_s.append(point.timing.get("trials_per_s", 0.0))
            rows.append(
                [
                    n,
                    task.noiseless_length(),
                    f"{point.mean_overhead:.1f}",
                    f"{point.success.value:.2f}",
                ]
            )
    finally:
        runner.close()
    print(format_table(
        ["n", "noiseless T", "overhead", "success"],
        rows,
        title=(
            f"{simulator} overhead on {subject} "
            f"(epsilon={args.epsilon})"
        ),
    ))
    if len(ns) >= 2:
        fit = fit_log(ns, overheads)
        print(
            f"fit: overhead = {fit.intercept:.1f} + "
            f"{fit.slope:.1f} * log2(n)   R^2 = {fit.r_squared:.3f}"
        )
    if args.workers > 1 and trials_per_s:
        print(
            f"runner: {args.workers} workers, "
            f"{sum(trials_per_s) / len(trials_per_s):.1f} trials/s "
            "per grid point"
        )
    return 0


def cmd_bench_calibrate(args: argparse.Namespace) -> int:
    from repro.parallel.calibrate import run_calibration, write_crossover
    from repro.parallel.planner import DEFAULT_CROSSOVER_PATH

    table = run_calibration(
        n_grid=tuple(args.ns),
        budget_s=args.budget,
        seed=args.seed,
        progress=lambda line: print(line, file=sys.stderr),
    )
    path = args.output or DEFAULT_CROSSOVER_PATH
    write_crossover(table, path)
    print(f"wrote {path}", file=sys.stderr)
    for scheme, entry in sorted(table["schemes"].items()):
        min_n = entry["vectorized_min_n"]
        shown = "never" if min_n > 4096 else str(min_n)
        print(f"{scheme}: vectorized from n >= {shown}")
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY

    experiments = [
        (module.ID, module.TITLE)
        for module in sorted(
            REGISTRY.values(), key=lambda m: int(m.ID[1:])
        )
    ]
    print(format_table(["id", "claim"], experiments, title="Experiments"))
    print("\nrun one :  python -m repro run-experiment E1")
    print("run all :  python -m pytest benchmarks/ --benchmark-only")
    print("results :  benchmarks/results/*.txt  (quoted in EXPERIMENTS.md)")
    return 0


def cmd_run_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment

    def run() -> int:
        result = run_experiment(
            args.experiment,
            seed=args.seed,
            scale=args.scale,
            workers=args.workers,
        )
        print(result.summary())
        return 0 if result.all_passed else 1

    return _with_profile(
        args.profile, f"profile_{args.experiment.upper()}.pstats", run
    )


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import generate_report

    report = generate_report(
        seed=args.seed,
        scale=args.scale,
        only=args.only,
        progress=lambda identifier: print(
            f"running {identifier} ...", file=sys.stderr
        ),
        workers=args.workers,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(report)
    return 0


_TASK_CHOICES = sorted(set(_TASKS) | set(_NETWORK_TASKS))


def add_common_run_args(
    parser: argparse.ArgumentParser, *, trials_default: int = 10
) -> None:
    """The execution knobs every trial-running subcommand shares.

    Mirrors :class:`~repro.analysis.sweep.SweepSpec`: ``--trials`` and
    ``--seed`` shape the numbers, ``--workers`` and ``--backend`` only
    the wall-clock.
    """
    parser.add_argument("--trials", type=int, default=trials_default)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial-runner workers (process pool when > 1; results are "
        "identical for any worker count)",
    )
    parser.add_argument(
        "--backend",
        choices=RUNNER_BACKENDS,
        default="auto",
        help="trial-runner backend (auto: calibrated per-batch planner "
        "over the measured crossover table — see 'repro bench "
        "calibrate'; vectorized: trial-batched numpy backend; "
        "vectorized-process: vectorized stripes over a process pool; "
        "results are identical for every choice)",
    )


def _add_topology_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        metavar="SPEC",
        default=None,
        help="run on a beeping network: kind:params shorthand resolved "
        "through the TOPOLOGIES registry (grid:8x8, "
        "geometric:n=10000,r=0.02,seed=7, scale-free:m=2,seed=1, "
        "ring, complete)",
    )


def _add_scenario_args(
    parser: argparse.ArgumentParser, *, include_simulator_none: bool = True
) -> None:
    """Task/channel/simulator selection shared by demo and trace.

    Defaults are ``None`` sentinels filled by :func:`_resolve_scenario`,
    because they depend on whether ``--topology`` was given.
    """
    parser.add_argument(
        "--task",
        choices=_TASK_CHOICES,
        default=None,
        help="default: input-set (single-hop) / mis (with --topology)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=None,
        help="party count (default: 8; with --topology: the spec's "
        "pinned size, or 64)",
    )
    _add_topology_arg(parser)
    parser.add_argument(
        "--channel",
        choices=sorted(set(_CHANNEL_SPECS) | set(_NETWORK_CHANNELS)),
        default=None,
        help="default: correlated (single-hop) / independent "
        "(with --topology)",
    )
    parser.add_argument("--epsilon", type=float, default=0.1)
    simulators = sorted(_SIMULATORS)
    if not include_simulator_none:
        simulators = [name for name in simulators if name != "none"]
    parser.add_argument(
        "--simulator",
        choices=simulators,
        default=None,
        help="default: chunk (single-hop) / local-broadcast "
        "(with --topology; 'none' at epsilon 0)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Noisy Beeps (PODC 2020) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="model and package summary")
    info.set_defaults(func=cmd_info)

    demo = subparsers.add_parser(
        "demo", help="run a task over a noisy channel"
    )
    _add_scenario_args(demo)
    add_common_run_args(demo, trials_default=10)
    demo.set_defaults(func=cmd_demo)

    trace = subparsers.add_parser(
        "trace",
        help="run with the observability layer attached and emit events",
    )
    _add_scenario_args(trace)
    add_common_run_args(trace, trials_default=1)
    trace.add_argument(
        "-o",
        "--output",
        help="write events as JSON lines to this file "
        "(default: print a summary table)",
    )
    trace.add_argument(
        "--summary",
        action="store_true",
        help="print the summary table even when writing --output",
    )
    trace.set_defaults(func=cmd_trace)

    overhead = subparsers.add_parser(
        "overhead", help="measure the Theta(log n) overhead curve"
    )
    overhead.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=None,
        help="party counts (default: 4 8 16 32; with --topology: the "
        "spec's pinned size, or 64 256)",
    )
    overhead.add_argument("--epsilon", type=float, default=0.1)
    _add_topology_arg(overhead)
    overhead.add_argument(
        "--simulator",
        choices=[name for name in sorted(_SIMULATORS) if name != "none"],
        default=None,
        help="default: chunk (single-hop) / local-broadcast "
        "(with --topology)",
    )
    add_common_run_args(overhead, trials_default=3)
    _add_profile_arg(overhead, "profile_overhead.pstats")
    overhead.set_defaults(func=cmd_overhead)

    add_sweep_parser(subparsers)

    bench = subparsers.add_parser(
        "bench", help="benchmark utilities (crossover calibration)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    calibrate = bench_sub.add_parser(
        "calibrate",
        help="measure the scalar vs vectorized crossover per scheme and "
        "write the table the auto planner routes on",
    )
    calibrate.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=[2, 4, 8, 16, 32],
        help="party counts to measure (crossovers are monotone in n)",
    )
    calibrate.add_argument(
        "--budget",
        type=float,
        default=0.25,
        help="wall-clock seconds per (scheme, n, engine) measurement; "
        "trial counts are derived from it, not hard-coded",
    )
    calibrate.add_argument("--seed", type=int, default=2026)
    calibrate.add_argument(
        "-o",
        "--output",
        help="where to write the table (default: the packaged "
        "crossover.json; $REPRO_CROSSOVER overrides reads)",
    )
    calibrate.set_defaults(func=cmd_bench_calibrate)

    experiments = subparsers.add_parser(
        "experiments", help="list the E1-E13 experiments"
    )
    experiments.set_defaults(func=cmd_experiments)

    run_exp = subparsers.add_parser(
        "run-experiment", help="run one experiment and print its checks"
    )
    run_exp.add_argument(
        "experiment", help="experiment id, e.g. E1 (case-insensitive)"
    )
    run_exp.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trial multiplier (< 1 for a quick look)",
    )
    run_exp.add_argument("--seed", type=int, default=0)
    run_exp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial-runner workers for the experiment's sweeps",
    )
    _add_profile_arg(run_exp, "profile_<ID>.pstats")
    run_exp.set_defaults(func=cmd_run_experiment)

    report = subparsers.add_parser(
        "report", help="run experiments and write a markdown report"
    )
    report.add_argument(
        "--only", nargs="+", help="experiment ids (default: all)"
    )
    report.add_argument(
        "--scale", type=float, default=1.0, help="trial multiplier"
    )
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial-runner workers shared by all experiments",
    )
    report.add_argument(
        "-o", "--output", help="output file (default: stdout)"
    )
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly like
        # a well-behaved Unix tool.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
