"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — package, model and scheme summary.
* ``demo`` — run one task over a noisy channel with a chosen simulator and
  print what happened (the quickstart, parameterised).
* ``overhead`` — measure the simulation overhead across a sweep of n and
  fit the Θ(log n) curve.
* ``experiments`` — list the benchmark experiments and how to run them.

Every command is a plain function taking parsed arguments and returning an
exit code, so the CLI is unit-testable without subprocesses.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Sequence

from repro import __version__
from repro.analysis import estimate_success, fit_log, format_table
from repro.channels import (
    BurstNoiseChannel,
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.tasks import (
    BitExchangeTask,
    InputSetTask,
    MaxIdTask,
    OrTask,
    ParityTask,
    PointerChasingTask,
    SizeEstimateTask,
)

__all__ = ["main", "build_parser"]

_CHANNELS = {
    "noiseless": lambda epsilon, seed: NoiselessChannel(),
    "correlated": lambda epsilon, seed: CorrelatedNoiseChannel(
        epsilon, rng=seed
    ),
    "one-sided": lambda epsilon, seed: OneSidedNoiseChannel(
        epsilon, rng=seed
    ),
    "suppression": lambda epsilon, seed: SuppressionNoiseChannel(
        epsilon, rng=seed
    ),
    "independent": lambda epsilon, seed: IndependentNoiseChannel(
        epsilon, rng=seed
    ),
    "burst": lambda epsilon, seed: BurstNoiseChannel.matched_to(
        epsilon, burst_length=8, rng=seed
    ),
}

_SIMULATORS = {
    "none": None,
    "repetition": RepetitionSimulator,
    "chunk": ChunkCommitSimulator,
    "hierarchical": HierarchicalSimulator,
    "rewind": RewindSimulator,
}


def _make_task(name: str, n: int):
    factories = {
        "input-set": lambda: InputSetTask(n),
        "or": lambda: OrTask(n),
        "parity": lambda: ParityTask(n),
        "max-id": lambda: MaxIdTask(n, id_bits=max(4, n.bit_length() + 2)),
        "bit-exchange": lambda: BitExchangeTask(max(2, n)),
        "size-estimate": lambda: SizeEstimateTask(n),
        "pointer-chasing": lambda: PointerChasingTask(
            depth=max(2, n), domain_bits=3
        ),
    }
    return factories[name]()


def cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} — reproduction of 'Noisy Beeps' "
          "(Efremenko, Kol, Saxena; PODC 2020)")
    print()
    print("Model: n-party beeping channel; every round delivers the OR of")
    print("the beeped bits, flipped with probability epsilon (correlated:")
    print("all parties receive the same flip).")
    print()
    print("Channels  :", ", ".join(sorted(_CHANNELS)))
    print("Simulators:", ", ".join(sorted(_SIMULATORS)))
    print("Tasks     : input-set, or, parity, max-id, bit-exchange, "
          "size-estimate, pointer-chasing")
    print()
    print("Headline results: simulation over noise costs Theta(log n) —")
    print("necessary (Theorem 1.1) and sufficient (Theorem 1.2).")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    task = _make_task(args.task, args.n)
    channel_factory = _CHANNELS[args.channel]
    simulator_cls = _SIMULATORS[args.simulator]
    rng = random.Random(args.seed)

    wins = 0
    rounds = 0
    overhead = 0.0
    for trial in range(args.trials):
        inputs = task.sample_inputs(rng)
        channel = channel_factory(args.epsilon, args.seed + 7919 * trial)
        if simulator_cls is None:
            from repro.core import run_protocol

            result = run_protocol(
                task.noiseless_protocol(), inputs, channel
            )
        else:
            result = simulator_cls().simulate(
                task.noiseless_protocol(), inputs, channel
            )
        wins += task.is_correct(inputs, result.outputs)
        rounds = result.rounds
        overhead = result.rounds / max(1, task.noiseless_length())
    print(
        f"task={args.task} n={task.n_parties} channel={args.channel} "
        f"epsilon={args.epsilon} simulator={args.simulator}"
    )
    print(
        f"success: {wins}/{args.trials}   rounds: {rounds} "
        f"(overhead x{overhead:.1f} vs {task.noiseless_length()} noiseless)"
    )
    return 0 if wins > args.trials // 2 else 1


def cmd_overhead(args: argparse.Namespace) -> int:
    from repro.parallel import (
        ChannelSpec,
        SimulationExecutor,
        SimulatorSpec,
        make_runner,
    )

    ns = args.ns
    simulator_cls = _SIMULATORS[args.simulator]
    if simulator_cls is None:
        print("overhead needs a real simulator (not 'none')", file=sys.stderr)
        return 2
    rows = []
    overheads = []
    trials_per_s = []
    runner = make_runner(args.workers)
    try:
        for n in ns:
            task = InputSetTask(n)
            # Picklable executor so --workers > 1 can fan trials out to a
            # process pool; results are identical for every worker count.
            executor = SimulationExecutor(
                task=task,
                channel=ChannelSpec.of(
                    CorrelatedNoiseChannel, args.epsilon
                ),
                simulator=SimulatorSpec.of(simulator_cls),
            )

            point = estimate_success(
                task,
                executor,
                trials=args.trials,
                seed=args.seed + n,
                runner=runner,
            )
            overheads.append(point.mean_overhead)
            trials_per_s.append(point.timing.get("trials_per_s", 0.0))
            rows.append(
                [
                    n,
                    2 * n,
                    f"{point.mean_overhead:.1f}",
                    f"{point.success.value:.2f}",
                ]
            )
    finally:
        runner.close()
    print(format_table(
        ["n", "noiseless T", "overhead", "success"],
        rows,
        title=(
            f"{args.simulator} overhead on InputSet_n "
            f"(epsilon={args.epsilon})"
        ),
    ))
    if len(ns) >= 2:
        fit = fit_log(ns, overheads)
        print(
            f"fit: overhead = {fit.intercept:.1f} + "
            f"{fit.slope:.1f} * log2(n)   R^2 = {fit.r_squared:.3f}"
        )
    if args.workers > 1 and trials_per_s:
        print(
            f"runner: {args.workers} workers, "
            f"{sum(trials_per_s) / len(trials_per_s):.1f} trials/s "
            "per grid point"
        )
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY

    experiments = [
        (module.ID, module.TITLE)
        for module in sorted(
            REGISTRY.values(), key=lambda m: int(m.ID[1:])
        )
    ]
    print(format_table(["id", "claim"], experiments, title="Experiments"))
    print("\nrun one :  python -m repro run-experiment E1")
    print("run all :  python -m pytest benchmarks/ --benchmark-only")
    print("results :  benchmarks/results/*.txt  (quoted in EXPERIMENTS.md)")
    return 0


def cmd_run_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment

    result = run_experiment(
        args.experiment,
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
    )
    print(result.summary())
    return 0 if result.all_passed else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import generate_report

    report = generate_report(
        seed=args.seed,
        scale=args.scale,
        only=args.only,
        progress=lambda identifier: print(
            f"running {identifier} ...", file=sys.stderr
        ),
        workers=args.workers,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Noisy Beeps (PODC 2020) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="model and package summary")
    info.set_defaults(func=cmd_info)

    demo = subparsers.add_parser(
        "demo", help="run a task over a noisy channel"
    )
    demo.add_argument(
        "--task",
        choices=[
            "input-set",
            "or",
            "parity",
            "max-id",
            "bit-exchange",
            "size-estimate",
            "pointer-chasing",
        ],
        default="input-set",
    )
    demo.add_argument("--n", type=int, default=8, help="party count")
    demo.add_argument(
        "--channel", choices=sorted(_CHANNELS), default="correlated"
    )
    demo.add_argument("--epsilon", type=float, default=0.1)
    demo.add_argument(
        "--simulator", choices=sorted(_SIMULATORS), default="chunk"
    )
    demo.add_argument("--trials", type=int, default=10)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_demo)

    overhead = subparsers.add_parser(
        "overhead", help="measure the Theta(log n) overhead curve"
    )
    overhead.add_argument(
        "--ns", type=int, nargs="+", default=[4, 8, 16, 32]
    )
    overhead.add_argument("--epsilon", type=float, default=0.1)
    overhead.add_argument(
        "--simulator",
        choices=[name for name in sorted(_SIMULATORS) if name != "none"],
        default="chunk",
    )
    overhead.add_argument("--trials", type=int, default=3)
    overhead.add_argument("--seed", type=int, default=0)
    overhead.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial-runner workers (process pool when > 1; results are "
        "identical for any worker count)",
    )
    overhead.set_defaults(func=cmd_overhead)

    experiments = subparsers.add_parser(
        "experiments", help="list the E1-E13 experiments"
    )
    experiments.set_defaults(func=cmd_experiments)

    run_exp = subparsers.add_parser(
        "run-experiment", help="run one experiment and print its checks"
    )
    run_exp.add_argument(
        "experiment", help="experiment id, e.g. E1 (case-insensitive)"
    )
    run_exp.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trial multiplier (< 1 for a quick look)",
    )
    run_exp.add_argument("--seed", type=int, default=0)
    run_exp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial-runner workers for the experiment's sweeps",
    )
    run_exp.set_defaults(func=cmd_run_experiment)

    report = subparsers.add_parser(
        "report", help="run experiments and write a markdown report"
    )
    report.add_argument(
        "--only", nargs="+", help="experiment ids (default: all)"
    )
    report.add_argument(
        "--scale", type=float, default=1.0, help="trial multiplier"
    )
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial-runner workers shared by all experiments",
    )
    report.add_argument(
        "-o", "--output", help="output file (default: stdout)"
    )
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly like
        # a well-behaved Unix tool.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
