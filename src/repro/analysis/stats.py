"""Basic statistics for Monte-Carlo estimates.

Success probabilities are binomial proportions, reported with Wilson score
intervals (well-behaved near 0 and 1, unlike the normal approximation —
which matters because good schemes sit very close to success probability 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["mean", "sample_std", "wilson_interval", "ProportionEstimate"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ConfigurationError("mean of an empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased sample standard deviation (0.0 for fewer than 2 values)."""
    if len(values) < 2:
        return 0.0
    center = mean(values)
    variance = sum((value - center) ** 2 for value in values) / (
        len(values) - 1
    )
    return math.sqrt(variance)


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: Number of successes observed.
        trials: Number of trials (must be positive).
        z: Normal quantile (1.96 ≈ 95% coverage).

    Returns:
        ``(low, high)`` bounds in [0, 1].
    """
    if trials <= 0:
        raise ConfigurationError("wilson_interval needs trials > 0")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes {successes} outside [0, {trials}]"
        )
    proportion = successes / trials
    denominator = 1.0 + z * z / trials
    center = (proportion + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(
            proportion * (1.0 - proportion) / trials
            + z * z / (4.0 * trials * trials)
        )
        / denominator
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


@dataclass(frozen=True)
class ProportionEstimate:
    """A binomial proportion with its Wilson interval.

    Attributes:
        successes: Observed successes.
        trials: Observed trials.
    """

    successes: int
    trials: int

    @property
    def value(self) -> float:
        """The point estimate."""
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    @property
    def interval(self) -> tuple[float, float]:
        """95% Wilson interval."""
        return wilson_interval(self.successes, self.trials)

    def __str__(self) -> str:
        low, high = self.interval
        return (
            f"{self.value:.3f} "
            f"[{low:.3f}, {high:.3f}] "
            f"({self.successes}/{self.trials})"
        )
