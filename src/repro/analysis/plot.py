"""Terminal-friendly ASCII plots.

The benchmark harness and examples run in terminals and CI logs, so the
"figures" of this reproduction are ASCII: a scatter/line canvas with
axis labels, suitable for overhead-vs-log-n curves and success-vs-budget
thresholds.  Deliberately tiny — one mark style, automatic ranging — but
fully deterministic and therefore testable.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["ascii_plot"]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if 0.01 <= magnitude < 10_000:
        return f"{value:.4g}"
    return f"{value:.1e}"


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 16,
    mark: str = "*",
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render points as an ASCII scatter plot.

    Args:
        xs, ys: The data (equal, non-zero lengths).
        width, height: Canvas size in characters (minimum 8 × 4).
        mark: Single character used for data points.
        title: Optional caption line.
        x_label, y_label: Axis labels (y label is printed above the axis).
        log_x: Plot against log₂(x) (the natural scale for overhead
            curves; x must then be positive).

    Returns:
        The plot as a multi-line string.
    """
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have equal length")
    if not xs:
        raise ConfigurationError("nothing to plot")
    if width < 8 or height < 4:
        raise ConfigurationError("canvas must be at least 8 x 4")
    if len(mark) != 1:
        raise ConfigurationError("mark must be a single character")
    if log_x:
        if any(x <= 0 for x in xs):
            raise ConfigurationError("log_x requires positive x values")
        plot_xs = [math.log2(x) for x in xs]
    else:
        plot_xs = list(xs)
    plot_ys = list(ys)

    x_low, x_high = min(plot_xs), max(plot_xs)
    y_low, y_high = min(plot_ys), max(plot_ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(plot_xs, plot_ys):
        column = round((x - x_low) / x_span * (width - 1))
        row = round((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = mark

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top = {_format_tick(y_high)})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    axis_note = f"{x_label}: {_format_tick(min(xs))} .. {_format_tick(max(xs))}"
    if log_x:
        axis_note += " (log2 scale)"
    lines.append(
        axis_note + f"   {y_label}: bottom = {_format_tick(y_low)}"
    )
    return "\n".join(lines)
