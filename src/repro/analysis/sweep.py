"""Monte-Carlo sweep drivers.

The benchmarks all share one loop: sample task inputs, run some executor
(a raw protocol or a simulator) over a freshly seeded channel, check the
outputs, aggregate.  :func:`estimate_success` is that loop;
:func:`success_curve`/:func:`overhead_curve` run it across a parameter grid.

Executors receive ``(inputs, trial_seed)`` and return an
:class:`~repro.core.result.ExecutionResult`; they are expected to construct
their own channel from ``trial_seed`` so every trial is independent and the
whole sweep is reproducible from one master seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.stats import ProportionEstimate, mean
from repro.core.result import ExecutionResult
from repro.errors import ConfigurationError
from repro.rng import derive_seed, spawn
from repro.tasks.base import Task

__all__ = ["SweepPoint", "estimate_success", "success_curve", "overhead_curve"]

Executor = Callable[[Sequence[Any], int], ExecutionResult]


@dataclass
class SweepPoint:
    """One grid point of a sweep.

    Attributes:
        params: The grid coordinates (e.g. ``{"n": 16, "epsilon": 0.1}``).
        success: Success-probability estimate with its Wilson interval.
        mean_rounds: Mean channel rounds per trial.
        mean_overhead: Mean ``rounds / noiseless_length`` per trial.
        extras: Aggregated simulator metadata (mean retries etc.).
    """

    params: dict[str, Any]
    success: ProportionEstimate
    mean_rounds: float
    mean_overhead: float
    extras: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable view (for results artifacts and logs)."""
        low, high = self.success.interval
        return {
            "params": dict(self.params),
            "success": self.success.value,
            "success_interval": [low, high],
            "successes": self.success.successes,
            "trials": self.success.trials,
            "mean_rounds": self.mean_rounds,
            "mean_overhead": self.mean_overhead,
            "extras": dict(self.extras),
        }


def estimate_success(
    task: Task,
    executor: Executor,
    trials: int,
    *,
    seed: int = 0,
    params: dict[str, Any] | None = None,
) -> SweepPoint:
    """Run ``trials`` independent executions and aggregate.

    Each trial gets inputs from ``task.sample_inputs`` (seeded sub-stream)
    and a distinct ``trial_seed`` for the executor's channel/protocol
    randomness.  Success is ``task.is_correct(inputs, outputs)``.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    noiseless_length = max(1, task.noiseless_length())
    successes = 0
    rounds: list[float] = []
    retry_totals: list[float] = []
    completed = 0
    for trial in range(trials):
        inputs = task.sample_inputs(spawn(seed, f"inputs[{trial}]"))
        trial_seed = derive_seed(seed, f"trial[{trial}]")
        result = executor(inputs, trial_seed)
        if task.is_correct(inputs, result.outputs):
            successes += 1
        rounds.append(float(result.rounds))
        report = result.metadata.get("report")
        if report is not None:
            retry_totals.append(float(report.chunk_attempts))
            if report.completed:
                completed += 1
    extras: dict[str, float] = {}
    if retry_totals:
        extras["mean_chunk_attempts"] = mean(retry_totals)
        extras["completion_rate"] = completed / trials
    return SweepPoint(
        params=dict(params or {}),
        success=ProportionEstimate(successes=successes, trials=trials),
        mean_rounds=mean(rounds),
        mean_overhead=mean(rounds) / noiseless_length,
        extras=extras,
    )


PointBuilder = Callable[[Any], tuple[Task, Executor, dict[str, Any]]]


def success_curve(
    values: Iterable[Any],
    point_builder: PointBuilder,
    trials: int,
    *,
    seed: int = 0,
) -> list[SweepPoint]:
    """Sweep a grid: ``point_builder(value) -> (task, executor, params)``.

    Each grid point gets a derived seed so points are independent but the
    curve is reproducible.
    """
    points: list[SweepPoint] = []
    for index, value in enumerate(values):
        task, executor, params = point_builder(value)
        points.append(
            estimate_success(
                task,
                executor,
                trials,
                seed=derive_seed(seed, f"point[{index}]"),
                params=params,
            )
        )
    return points


def overhead_curve(
    values: Iterable[Any],
    point_builder: PointBuilder,
    trials: int,
    *,
    seed: int = 0,
) -> list[tuple[Any, float]]:
    """Like :func:`success_curve` but return ``(value, mean_overhead)``
    pairs — the series the Θ(log n) fits consume."""
    values = list(values)
    points = success_curve(values, point_builder, trials, seed=seed)
    return [
        (value, point.mean_overhead)
        for value, point in zip(values, points)
    ]
