"""Monte-Carlo sweep drivers.

The benchmarks all share one loop: sample task inputs, run some executor
(a raw protocol or a simulator) over a freshly seeded channel, check the
outputs, aggregate.  :class:`SweepSpec` names the loop's execution knobs
once — ``trials``, ``seed``, ``runner``, ``observe`` — and
:func:`run_sweep_point`/:func:`run_sweep` are the loop over one grid point
and over a whole grid.  :func:`estimate_success`,
:func:`success_curve` and :func:`overhead_curve` are thin compatibility
wrappers that keep the historical flat-keyword signatures (now extended
with the same ``observe=`` keyword); see ``docs/api.md`` for the exact
old-to-new mapping.

Executors receive ``(inputs, trial_seed)`` and return an
:class:`~repro.core.result.ExecutionResult`; they are expected to construct
their own channel from ``trial_seed`` so every trial is independent and the
whole sweep is reproducible from one master seed.

Trial execution is delegated to a pluggable
:class:`~repro.parallel.runner.TrialRunner` (pass ``runner=`` or install a
process-wide default with :func:`repro.parallel.use_runner`).  Because a
trial's randomness depends only on ``(seed, trial index)`` and aggregation
happens here in index order, every backend — serial or process pool, any
worker count, any chunk size — produces bitwise identical
:class:`SweepPoint` values.  Wall-clock measurements go to
:attr:`SweepPoint.timing`, which ``to_dict()`` excludes by default so
serialized results stay backend-independent.  The same invariance holds
for tracing: an :class:`~repro.observe.Observer` receives ``trial`` /
``sweep_batch`` / ``sweep_point`` events derived from the records, never
influences them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe import Observer

from repro.analysis.stats import ProportionEstimate, mean
from repro.core.result import ExecutionResult
from repro.errors import ConfigurationError
from repro.parallel import TrialBatch, TrialRunner, get_default_runner
from repro.rng import derive_seed
from repro.tasks.base import Task

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "run_sweep_point",
    "run_sweep",
    "estimate_success",
    "success_curve",
    "overhead_curve",
]

Executor = Callable[[Sequence[Any], int], ExecutionResult]


@dataclass
class SweepPoint:
    """One grid point of a sweep.

    Attributes:
        params: The grid coordinates (e.g. ``{"n": 16, "epsilon": 0.1}``).
        success: Success-probability estimate with its Wilson interval.
        mean_rounds: Mean channel rounds per trial.
        mean_overhead: Mean ``rounds / noiseless_length`` per trial.
        extras: Aggregated simulator metadata (mean retries etc.) and
            per-trial channel-stat means — deterministic, backend-agnostic.
        timing: Runner wall-clock bookkeeping (``trials_per_s``,
            ``utilization``, ``fallback`` ...).  Excluded from
            :meth:`to_dict` by default: timing differs run to run, the
            measurement must not.
    """

    params: dict[str, Any]
    success: ProportionEstimate
    mean_rounds: float
    mean_overhead: float
    extras: dict[str, float] = field(default_factory=dict)
    timing: dict[str, float] = field(default_factory=dict)

    def to_dict(self, include_timing: bool = False) -> dict[str, Any]:
        """A JSON-serialisable view (for results artifacts and logs).

        Deterministic for a fixed seed regardless of the trial runner;
        opt into the wall-clock numbers with ``include_timing=True``.
        """
        low, high = self.success.interval
        payload: dict[str, Any] = {
            "params": dict(self.params),
            "success": self.success.value,
            "success_interval": [low, high],
            "successes": self.success.successes,
            "trials": self.success.trials,
            "mean_rounds": self.mean_rounds,
            "mean_overhead": self.mean_overhead,
            "extras": dict(self.extras),
        }
        if include_timing:
            payload["timing"] = dict(self.timing)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepPoint":
        """Rebuild a point from a :meth:`to_dict` payload.

        Exact inverse for everything :meth:`to_dict` emits: ``success``
        and ``success_interval`` are derived from ``successes``/``trials``
        on reconstruction, and JSON floats round-trip bitwise (``repr``
        precision), so ``from_dict(json.loads(json.dumps(p.to_dict())))``
        equals ``p`` minus the (deliberately unserialized) wall-clock
        ``timing`` — the property the result cache depends on.
        """
        return cls(
            params=dict(payload["params"]),
            success=ProportionEstimate(
                successes=int(payload["successes"]),
                trials=int(payload["trials"]),
            ),
            mean_rounds=float(payload["mean_rounds"]),
            mean_overhead=float(payload["mean_overhead"]),
            extras=dict(payload.get("extras", {})),
            timing=dict(payload.get("timing", {})),
        )


def _aggregate_batch(
    batch: TrialBatch,
    trials: int,
    noiseless_length: int,
    params: dict[str, Any] | None,
) -> SweepPoint:
    """Fold a batch of trial records into a :class:`SweepPoint`.

    Shared by every runner backend — aggregation order is trial-index
    order, so identical records give identical floats.
    """
    records = batch.records
    successes = sum(1 for record in records if record.success)
    rounds = [record.rounds for record in records]
    retry_totals = [
        record.chunk_attempts
        for record in records
        if record.chunk_attempts is not None
    ]
    completed = sum(1 for record in records if record.completed)
    extras: dict[str, float] = {}
    if retry_totals:
        extras["mean_chunk_attempts"] = mean(retry_totals)
        extras["completion_rate"] = completed / trials
    # Channel-counter aggregates: computed from the same records on every
    # backend, so a runner that mishandled trials could not drift silently.
    extras["mean_channel_flips"] = mean(
        [float(record.flips) for record in records]
    )
    extras["mean_beeps_sent"] = mean(
        [float(record.beeps_sent) for record in records]
    )
    return SweepPoint(
        params=dict(params or {}),
        success=ProportionEstimate(successes=successes, trials=trials),
        mean_rounds=mean(rounds),
        mean_overhead=mean(rounds) / noiseless_length,
        extras=extras,
        timing=dict(batch.timing),
    )


@dataclass
class SweepSpec:
    """The execution knobs every sweep entry point shares.

    One spec names *how* a sweep runs — how many trials per point, the
    master seed, which :class:`~repro.parallel.runner.TrialRunner`
    backend, and an optional :class:`~repro.observe.Observer` — separate
    from *what* runs (the task/executor pair or grid).  Every field is
    orthogonal: the estimate is bitwise independent of ``runner`` and
    ``observe``; only ``trials`` and ``seed`` shape the numbers.

    Attributes:
        trials: Independent trials per grid point (>= 1).
        seed: Master seed; grid point ``i`` derives
            ``derive_seed(seed, f"point[{i}]")``, and trial ``j`` within a
            point draws from the labels in
            :func:`repro.parallel.runner.run_trial`.
        runner: Execution backend; ``None`` means the process-wide
            default (see :func:`repro.parallel.get_default_runner`).
        observe: Trace-event observer; ``None`` (or a disabled observer)
            is free.
    """

    trials: int = 100
    seed: int = 0
    runner: TrialRunner | None = None
    observe: "Observer | None" = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}"
            )

    def resolve_runner(self) -> TrialRunner:
        """The backend this spec actually uses."""
        return self.runner if self.runner is not None else get_default_runner()

    def with_seed(self, seed: int) -> "SweepSpec":
        """A copy of this spec with a different master seed."""
        return SweepSpec(
            trials=self.trials,
            seed=seed,
            runner=self.runner,
            observe=self.observe,
        )

    #: Version of the serialized form.  Bump on any change to the field
    #: set or meaning; :meth:`from_json` rejects other versions so stale
    #: payloads (and cache keys built from them) fail loudly.
    SCHEMA_VERSION = 1

    def to_json(self) -> str:
        """Canonical JSON for this spec: the fields that shape results.

        Only ``trials`` and ``seed`` appear — ``runner`` and ``observe``
        are execution knobs the determinism contract makes irrelevant to
        the numbers, so two specs that differ only there serialize (and
        cache) identically.  Keys are sorted and separators fixed, so the
        string is byte-stable and safe to hash.
        """
        return json.dumps(
            {
                "schema": self.SCHEMA_VERSION,
                "trials": self.trials,
                "seed": self.seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(
        cls,
        payload: str | Mapping[str, Any],
        *,
        runner: TrialRunner | None = None,
        observe: "Observer | None" = None,
    ) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_json` output (string or dict).

        The execution-only fields are not serialized; pass ``runner=`` /
        ``observe=`` to attach them to the revived spec.
        """
        data = json.loads(payload) if isinstance(payload, str) else payload
        schema = data.get("schema")
        if schema != cls.SCHEMA_VERSION:
            raise ConfigurationError(
                f"SweepSpec schema {schema!r} is not supported "
                f"(expected {cls.SCHEMA_VERSION})"
            )
        return cls(
            trials=int(data["trials"]),
            seed=int(data["seed"]),
            runner=runner,
            observe=observe,
        )


def run_sweep_point(
    task: Task,
    executor: Executor,
    spec: SweepSpec,
    *,
    params: dict[str, Any] | None = None,
) -> SweepPoint:
    """Run one grid point under ``spec`` and aggregate.

    Each trial gets inputs from ``task.sample_inputs`` (seeded sub-stream)
    and a distinct ``trial_seed`` for the executor's channel/protocol
    randomness.  Success is ``task.is_correct(inputs, outputs)``.

    When ``spec.observe`` is enabled, the runner's ``trial`` /
    ``sweep_batch`` events are followed by one ``sweep_point`` event with
    the aggregated numbers.
    """
    noiseless_length = max(1, task.noiseless_length())
    observe = spec.observe
    batch = spec.resolve_runner().run_trials(
        task, executor, spec.trials, seed=spec.seed, observe=observe
    )
    point = _aggregate_batch(batch, spec.trials, noiseless_length, params)
    if observe is not None and observe.enabled:
        observe.emit(
            "sweep_point",
            params=dict(point.params),
            trials=point.success.trials,
            successes=point.success.successes,
            mean_rounds=point.mean_rounds,
            mean_overhead=point.mean_overhead,
        )
    return point


PointBuilder = Callable[[Any], tuple[Task, Executor, dict[str, Any]]]


def run_sweep(
    values: Iterable[Any],
    point_builder: PointBuilder,
    spec: SweepSpec,
) -> list[SweepPoint]:
    """Sweep a grid under ``spec``:
    ``point_builder(value) -> (task, executor, params)``.

    Each grid point gets a derived seed so points are independent but the
    curve is reproducible.  A pooled runner is reused across grid points,
    so worker startup is paid once per curve.
    """
    points: list[SweepPoint] = []
    for index, value in enumerate(values):
        task, executor, params = point_builder(value)
        points.append(
            run_sweep_point(
                task,
                executor,
                spec.with_seed(derive_seed(spec.seed, f"point[{index}]")),
                params=params,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Compatibility wrappers: the historical flat-keyword signatures.  They
# build a SweepSpec and delegate; see docs/api.md for the mapping.
# ---------------------------------------------------------------------------


def estimate_success(
    task: Task,
    executor: Executor,
    trials: int,
    *,
    seed: int = 0,
    params: dict[str, Any] | None = None,
    runner: TrialRunner | None = None,
    observe: "Observer | None" = None,
) -> SweepPoint:
    """Run ``trials`` independent executions and aggregate.

    Compatibility wrapper over :func:`run_sweep_point` —
    ``run_sweep_point(task, executor, SweepSpec(trials, seed, runner,
    observe), params=params)``.
    """
    return run_sweep_point(
        task,
        executor,
        SweepSpec(trials=trials, seed=seed, runner=runner, observe=observe),
        params=params,
    )


def success_curve(
    values: Iterable[Any],
    point_builder: PointBuilder,
    trials: int,
    *,
    seed: int = 0,
    runner: TrialRunner | None = None,
    observe: "Observer | None" = None,
) -> list[SweepPoint]:
    """Sweep a grid: ``point_builder(value) -> (task, executor, params)``.

    Compatibility wrapper over :func:`run_sweep` —
    ``run_sweep(values, point_builder, SweepSpec(trials, seed, runner,
    observe))``.
    """
    return run_sweep(
        values,
        point_builder,
        SweepSpec(trials=trials, seed=seed, runner=runner, observe=observe),
    )


def overhead_curve(
    values: Iterable[Any],
    point_builder: PointBuilder,
    trials: int,
    *,
    seed: int = 0,
    runner: TrialRunner | None = None,
    observe: "Observer | None" = None,
) -> list[tuple[Any, float]]:
    """Like :func:`success_curve` but return ``(value, mean_overhead)``
    pairs — the series the Θ(log n) fits consume."""
    values = list(values)
    points = run_sweep(
        values,
        point_builder,
        SweepSpec(trials=trials, seed=seed, runner=runner, observe=observe),
    )
    return [
        (value, point.mean_overhead)
        for value, point in zip(values, points)
    ]
