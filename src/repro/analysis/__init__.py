"""Measurement utilities: Monte-Carlo sweeps, statistics, fits, tables.

The benchmarks estimate success probabilities and overheads by repeated
simulation; this package supplies the shared tooling:

* :mod:`~repro.analysis.stats` — means, Wilson score intervals for
  proportions, summary aggregates;
* :mod:`~repro.analysis.fitting` — least-squares fits of ``a + b·log₂ n``
  (the overhead shape Theorems 1.1/1.2 predict) and goodness-of-fit;
* :mod:`~repro.analysis.sweep` — drive a (simulator, task, channel) triple
  over parameter grids, collecting success/overhead estimates;
* :mod:`~repro.analysis.tables` — the ASCII tables printed by the
  benchmark harness and recorded in EXPERIMENTS.md.
"""

from repro.analysis.stats import (
    ProportionEstimate,
    mean,
    sample_std,
    wilson_interval,
)
from repro.analysis.fitting import LogFit, fit_log, fit_linear
from repro.analysis.sweep import (
    SweepPoint,
    SweepSpec,
    estimate_success,
    overhead_curve,
    run_sweep,
    run_sweep_point,
    success_curve,
)
from repro.analysis.tables import format_table
from repro.analysis.plot import ascii_plot
from repro.analysis.reporting import generate_report

__all__ = [
    "ProportionEstimate",
    "mean",
    "sample_std",
    "wilson_interval",
    "LogFit",
    "fit_log",
    "fit_linear",
    "SweepPoint",
    "SweepSpec",
    "run_sweep_point",
    "run_sweep",
    "estimate_success",
    "success_curve",
    "overhead_curve",
    "format_table",
    "ascii_plot",
    "generate_report",
]
