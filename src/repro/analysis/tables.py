"""ASCII tables for the benchmark harness.

The benchmarks print their result rows (the "tables" of EXPERIMENTS.md)
through :func:`format_table`, which right-aligns numbers, left-aligns text,
and renders a separator under the header — readable both in a terminal and
pasted into Markdown as a code block.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table"]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table.

    Args:
        headers: Column names.
        rows: Cell values; each row must match the header width.  Floats
            are shown with 4 significant digits.
        title: Optional caption printed above the table.

    Returns:
        The table as a single string (no trailing newline).
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    for index, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(header), *(len(row[col]) for row in rendered))
        if rendered
        else len(header)
        for col, header in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(
            header.ljust(widths[col]) for col, header in enumerate(headers)
        )
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[col]) for col, cell in enumerate(row))
        )
    return "\n".join(lines)
