"""Least-squares fits for the overhead curves.

Theorem 1.2 predicts simulation overhead ``a + b·log₂ n`` with ``b > 0``;
the constant-overhead claim for suppression noise predicts ``b ≈ 0``.
:func:`fit_log` performs the corresponding 1-D linear regression (on
``log₂ n``) and reports ``R²`` so benchmark tables can show both the slope
and how well the logarithm explains the data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LogFit", "fit_linear", "fit_log"]


@dataclass(frozen=True)
class LogFit:
    """Result of fitting ``y ≈ intercept + slope · t``.

    ``t`` is the (possibly transformed) regressor — ``log₂ n`` for
    :func:`fit_log`, raw ``x`` for :func:`fit_linear`.

    Attributes:
        intercept: Fitted ``a``.
        slope: Fitted ``b``.
        r_squared: Coefficient of determination in [0, 1] (1.0 when the
            responses are constant and perfectly predicted).
    """

    intercept: float
    slope: float
    r_squared: float

    def predict(self, t: float) -> float:
        """The fitted value at regressor ``t``."""
        return self.intercept + self.slope * t


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LogFit:
    """Ordinary least squares ``y ≈ a + b·x``."""
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ConfigurationError("need at least two points to fit a line")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    design = np.column_stack([np.ones_like(x), x])
    coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    predictions = design @ coefficients
    residual = float(np.sum((y - predictions) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    if total == 0.0:
        # Constant responses: the fit is perfect up to float noise.
        scale = max(1.0, float(np.sum(y * y)))
        r_squared = 1.0 if residual <= 1e-12 * scale else 0.0
    else:
        r_squared = 1.0 - residual / total
    return LogFit(
        intercept=float(coefficients[0]),
        slope=float(coefficients[1]),
        r_squared=r_squared,
    )


def fit_log(ns: Sequence[float], ys: Sequence[float]) -> LogFit:
    """Least squares ``y ≈ a + b·log₂ n`` (n must be positive)."""
    if any(n <= 0 for n in ns):
        raise ConfigurationError("fit_log needs positive n values")
    return fit_linear([math.log2(n) for n in ns], ys)
