"""Bit-vector helpers used by channels, codes, and protocols.

Bits throughout the package are plain Python ``int`` values 0/1 (never
``bool``), and bit words are tuples of such ints.  Tuples are hashable, so
codewords can be dictionary keys, and immutability rules out accidental
aliasing between transcripts.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.errors import ChannelError

__all__ = [
    "BitWord",
    "validate_bit",
    "validate_bits",
    "or_reduce",
    "majority_bit",
    "hamming_distance",
    "int_to_bits",
    "bits_to_int",
]

BitWord = Tuple[int, ...]


def validate_bit(value: object) -> int:
    """Return ``value`` as an ``int`` bit, raising :class:`ChannelError` otherwise.

    Accepts 0, 1 and ``bool``; rejects everything else, including other
    integers, so that a party yielding e.g. ``2`` fails loudly at the round
    in which it happened.
    """
    if value is True:
        return 1
    if value is False:
        return 0
    if isinstance(value, int) and value in (0, 1):
        return value
    raise ChannelError(f"expected a bit (0 or 1), got {value!r}")


def validate_bits(values: Iterable[object]) -> BitWord:
    """Validate an iterable of bits and return them as a tuple."""
    return tuple(validate_bit(value) for value in values)


def or_reduce(bits: Sequence[int]) -> int:
    """The OR of a bit sequence — the beeping channel's combining function.

    An empty sequence ORs to 0 (nobody beeped).
    """
    for bit in bits:
        if bit:
            return 1
    return 0


def majority_bit(bits: Sequence[int]) -> int:
    """Majority vote over a bit sequence; ties (and empty input) go to 0.

    Ties-to-0 is the right convention for the beeping simulators: silence is
    the channel's default state, and a tie means the repetition coding gave
    no evidence of a beep.
    """
    ones = sum(bits)
    return 1 if 2 * ones > len(bits) else 0


def hamming_distance(word_a: Sequence[int], word_b: Sequence[int]) -> int:
    """Number of positions at which two equal-length words differ."""
    if len(word_a) != len(word_b):
        raise ChannelError(
            f"hamming_distance: length mismatch ({len(word_a)} vs {len(word_b)})"
        )
    return sum(1 for bit_a, bit_b in zip(word_a, word_b) if bit_a != bit_b)


def int_to_bits(value: int, width: int) -> BitWord:
    """Encode ``value`` as ``width`` bits, most significant bit first.

    >>> int_to_bits(5, 4)
    (0, 1, 0, 1)
    """
    if value < 0:
        raise ChannelError(f"cannot encode negative value {value}")
    if value >= (1 << width):
        raise ChannelError(f"value {value} does not fit in {width} bits")
    return tuple((value >> shift) & 1 for shift in range(width - 1, -1, -1))


def bits_to_int(bits: Sequence[int]) -> int:
    """Decode a most-significant-bit-first bit sequence to an integer.

    >>> bits_to_int((0, 1, 0, 1))
    5
    """
    value = 0
    for bit in bits:
        value = (value << 1) | validate_bit(bit)
    return value
