"""Small generic utilities shared across the package."""

from repro.util.bits import (
    BitWord,
    bits_to_int,
    hamming_distance,
    int_to_bits,
    majority_bit,
    or_reduce,
    validate_bit,
    validate_bits,
)

__all__ = [
    "BitWord",
    "bits_to_int",
    "hamming_distance",
    "int_to_bits",
    "majority_bit",
    "or_reduce",
    "validate_bit",
    "validate_bits",
]
