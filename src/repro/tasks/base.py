"""The task interface.

A task is a distributional communication problem: it samples inputs, defines
the reference output, and provides the canonical noiseless protocol.  The
analysis layer (:mod:`repro.analysis.sweep`) estimates a scheme's success
probability by sampling inputs from the task, running a (possibly simulated)
protocol, and checking outputs with :meth:`Task.is_correct`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Sequence

from repro.core.protocol import Protocol

__all__ = ["Task"]


class Task(ABC):
    """A distributional communication task for ``n_parties`` parties."""

    def __init__(self, n_parties: int) -> None:
        self.n_parties = n_parties

    @abstractmethod
    def sample_inputs(self, rng: random.Random) -> list[Any]:
        """Draw one input vector from the task's input distribution."""

    @abstractmethod
    def reference_output(self, inputs: Sequence[Any]) -> Any:
        """The value every party must output on ``inputs``."""

    @abstractmethod
    def noiseless_protocol(self) -> Protocol:
        """The canonical protocol solving the task over the noiseless
        beeping channel."""

    def is_correct(self, inputs: Sequence[Any], outputs: Sequence[Any]) -> bool:
        """Whether an execution solved the task.

        Default: *every* party output the reference value.  Tasks with
        per-party outputs override this.
        """
        expected = self.reference_output(inputs)
        return all(output == expected for output in outputs)

    def noiseless_length(self) -> int:
        """Rounds of the canonical noiseless protocol (denominator of every
        overhead measurement)."""
        length = self.noiseless_protocol().length()
        if length is None:  # pragma: no cover - defensive
            raise ValueError("noiseless protocol must have a fixed length")
        return length
