"""The parity task — round-robin broadcast of one bit per party.

Parity (XOR of all input bits) is the classic hard function of the noisy
broadcast literature ([Gal88], cited in §1.2 for the O(log log n)
independent-noise upper bound).  The natural noiseless beeping protocol is
non-adaptive round-robin: party ``i`` beeps its bit in round ``i`` and is
silent otherwise, so the transcript *is* the input vector and every party
can output its parity.

Because each round is "owned" by exactly one party, this protocol is also
the cleanest example of the non-adaptive ownership structure the [EKS18]
verification phase relies on (§2.1).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.protocol import FunctionalProtocol, Protocol
from repro.tasks.base import Task

__all__ = ["ParityTask", "parity_noiseless_protocol"]


def parity_noiseless_protocol(n_parties: int) -> Protocol:
    """n rounds: party ``i`` beeps its bit in round ``i``; output the parity
    of the received transcript."""

    def broadcast(party: int, input_value: int, prefix: Sequence[int]) -> int:
        return input_value if len(prefix) == party else 0

    def output(_party: int, _input_value: int, received: Sequence[int]) -> int:
        return sum(received) & 1

    return FunctionalProtocol(
        n_parties=n_parties,
        length=n_parties,
        broadcast=broadcast,
        output=output,
    )


class ParityTask(Task):
    """Compute the XOR of one uniform bit per party."""

    def sample_inputs(self, rng: random.Random) -> list[int]:
        return [rng.getrandbits(1) for _ in range(self.n_parties)]

    def reference_output(self, inputs: Sequence[int]) -> int:
        return sum(inputs) & 1

    def noiseless_protocol(self) -> Protocol:
        return parity_noiseless_protocol(self.n_parties)
