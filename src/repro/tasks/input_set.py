"""The ``InputSet_n`` task (Appendix A.2) — the paper's hard instance.

Every party ``i`` holds a uniform, independent ``x^i ∈ [2n]`` and all parties
must output the set ``L(x) = {x^i | i ∈ [n]}``.

The task has a trivial 2n-round noiseless protocol: in round ``m`` party
``i`` beeps iff ``x^i = m``, so ``π_m = 1 ⟺ m ∈ L(x)`` and every party can
read the answer off the transcript.  Theorem C.1 shows that over the
one-sided ε-noisy channel, *any* protocol needs Ω(n log n) rounds — the
multiplicative Ω(log n) separation of Theorem 1.1.

The function's hardness stems from its sensitivity (§2.3): for a constant
fraction of inputs, Θ(n) parties hold *unique* values, and changing any one
of them changes the output.  The helpers :meth:`InputSetTask.unique_holders`
and the neighbor machinery in :mod:`repro.lowerbound.neighbors` quantify
this.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.formal import FormalProtocol
from repro.core.protocol import FunctionalProtocol, Protocol
from repro.errors import ConfigurationError, TaskError
from repro.tasks.base import Task

__all__ = [
    "InputSetTask",
    "input_set_noiseless_protocol",
    "input_set_formal_protocol",
]


def input_set_noiseless_protocol(n_parties: int) -> Protocol:
    """The 2n-round noiseless protocol: party ``i`` beeps in round ``x^i``.

    Rounds are numbered 1..2n to match the paper; the protocol's round
    ``m`` (0-based index ``m-1``) carries the indicator of ``m ∈ L(x)``.
    The output is the set of 1-rounds, read off the received transcript.
    """
    length = 2 * n_parties

    def broadcast(
        _party: int, input_value: int, prefix: Sequence[int]
    ) -> int:
        current_round = len(prefix) + 1  # 1-based round number m
        return 1 if input_value == current_round else 0

    def output(
        _party: int, _input_value: int, received: Sequence[int]
    ) -> frozenset[int]:
        return frozenset(
            m + 1 for m, bit in enumerate(received) if bit == 1
        )

    return FunctionalProtocol(
        n_parties=n_parties,
        length=length,
        broadcast=broadcast,
        output=output,
    )


def input_set_formal_protocol(
    n_parties: int, repetitions: int = 1, decision: str = "majority"
) -> FormalProtocol:
    """The noiseless ``InputSet`` protocol as a :class:`FormalProtocol`.

    This is the exact-analysis twin of
    :func:`input_set_noiseless_protocol`, consumable by the Appendix C
    machinery (feasible sets, ζ, entropy).  With ``repetitions > 1`` every
    round is beeped that many times back-to-back — the repetition-hardened
    protocol family whose correctness-vs-length tradeoff experiment E5
    charts against the Theorem C.2/C.3 bounds.

    Args:
        n_parties: Number of parties.
        repetitions: Back-to-back copies of each virtual round.
        decision: How the output aggregates a virtual round's votes —
            ``"majority"`` (ties to 0; the right rule for two-sided noise)
            or ``"unanimous"`` (round is 1 only when every vote is 1; the
            maximum-likelihood rule under *one-sided* 0→1 noise, where a
            true 1 is never suppressed and a single 0 vote proves the
            round was silent).  Majority is non-monotone in ``repetitions``
            under one-sided ε = 1/3 (ties break toward 0, and flips only
            point up), which is why the E5 sweep uses ``"unanimous"``.
    """
    if repetitions < 1:
        raise ConfigurationError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    if decision not in ("majority", "unanimous"):
        raise ConfigurationError(
            f"decision must be 'majority' or 'unanimous', got {decision!r}"
        )
    universe = range(1, 2 * n_parties + 1)
    length = 2 * n_parties * repetitions

    def broadcast(_party: int, x: int, prefix) -> int:
        virtual_round = len(prefix) // repetitions + 1
        return 1 if x == virtual_round else 0

    def output(pi) -> frozenset[int]:
        members = []
        for m in range(2 * n_parties):
            votes = pi[m * repetitions : (m + 1) * repetitions]
            if decision == "majority":
                is_member = 2 * sum(votes) > repetitions
            else:
                is_member = all(votes)
            if is_member:
                members.append(m + 1)
        return frozenset(members)

    return FormalProtocol(
        n_parties=n_parties,
        length=length,
        input_spaces=[universe] * n_parties,
        broadcast=broadcast,
        output=output,
    )


class InputSetTask(Task):
    """``InputSet_n``: compute ``{x^i}`` from uniform ``x^i ∈ [2n]``."""

    def __init__(self, n_parties: int) -> None:
        if n_parties < 1:
            raise ConfigurationError(
                f"InputSet needs at least one party, got {n_parties}"
            )
        super().__init__(n_parties)
        self.universe_size = 2 * n_parties

    @property
    def universe(self) -> range:
        """The input domain ``[2n] = {1, ..., 2n}``."""
        return range(1, self.universe_size + 1)

    def sample_inputs(self, rng: random.Random) -> list[int]:
        return [
            rng.randint(1, self.universe_size)
            for _ in range(self.n_parties)
        ]

    def validate_inputs(self, inputs: Sequence[int]) -> None:
        """Raise :class:`TaskError` on inputs outside ``[2n]``."""
        if len(inputs) != self.n_parties:
            raise TaskError(
                f"expected {self.n_parties} inputs, got {len(inputs)}"
            )
        for index, value in enumerate(inputs):
            if not 1 <= value <= self.universe_size:
                raise TaskError(
                    f"input of party {index} is {value}, outside "
                    f"[1, {self.universe_size}]"
                )

    def reference_output(self, inputs: Sequence[int]) -> frozenset[int]:
        """``L(x) = {x^i | i ∈ [n]}``."""
        self.validate_inputs(inputs)
        return frozenset(inputs)

    def noiseless_protocol(self) -> Protocol:
        return input_set_noiseless_protocol(self.n_parties)

    def unique_holders(self, inputs: Sequence[int]) -> frozenset[int]:
        """``G_1(x)``: parties whose input no other party shares (§C.2).

        These are the parties whose input change is guaranteed to change
        ``L(x)`` — the sensitivity core of the lower bound.
        """
        self.validate_inputs(inputs)
        counts: dict[int, int] = {}
        for value in inputs:
            counts[value] = counts.get(value, 0) + 1
        return frozenset(
            index
            for index, value in enumerate(inputs)
            if counts[value] == 1
        )
