"""The n-party OR task — the beeping channel's native operation.

Each party holds one bit; all must output the OR.  The noiseless protocol is
a single round (everyone beeps their bit), which is the "(extremely)
efficient protocol for the 'or' of n bits" the paper points to in §2.1 when
explaining why a constant-rate coding scheme seems within reach — and why
the actual obstruction is verifying 1s, not computing ORs.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.protocol import FunctionalProtocol, Protocol
from repro.errors import TaskError
from repro.tasks.base import Task
from repro.util.bits import or_reduce

__all__ = ["OrTask", "or_noiseless_protocol"]


def or_noiseless_protocol(n_parties: int) -> Protocol:
    """One round: everyone beeps their bit; output the received bit."""

    def broadcast(_party: int, input_value: int, _prefix: Sequence[int]) -> int:
        return input_value

    def output(_party: int, _input_value: int, received: Sequence[int]) -> int:
        return received[0]

    return FunctionalProtocol(
        n_parties=n_parties, length=1, broadcast=broadcast, output=output
    )


class OrTask(Task):
    """Compute the OR of one uniform bit per party.

    Args:
        n_parties: Number of parties.
        one_probability: Bernoulli parameter of each party's bit (default
            1/2).  Skewed settings are useful for stressing the noise
            direction that matters: with mostly-zero inputs, 0→1 channel
            flips dominate the error.
    """

    def __init__(self, n_parties: int, one_probability: float = 0.5) -> None:
        if not 0.0 <= one_probability <= 1.0:
            raise TaskError(
                f"one_probability must be in [0, 1], got {one_probability}"
            )
        super().__init__(n_parties)
        self.one_probability = one_probability

    def sample_inputs(self, rng: random.Random) -> list[int]:
        return [
            1 if rng.random() < self.one_probability else 0
            for _ in range(self.n_parties)
        ]

    def reference_output(self, inputs: Sequence[int]) -> int:
        return or_reduce(list(inputs))

    def noiseless_protocol(self) -> Protocol:
        return or_noiseless_protocol(self.n_parties)
