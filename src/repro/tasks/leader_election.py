"""Adaptive maximum-finding (leader election) in the beeping model.

Classic beeping-model primitive (cf. [FSW14, DBB18] in the paper's related
work): parties hold distinct identifiers and elect the maximum by bit-by-bit
elimination.  Scanning the identifier from the most significant bit, every
still-active candidate beeps its current bit; hearing a 1 eliminates the
candidates whose bit was 0.  After ``ceil(log2 id_bound)`` rounds the
received transcript spells out the maximum identifier.

Unlike ``InputSet`` and parity, this protocol is *adaptive* — what a party
beeps depends on the transcript it received — which makes it the key test
for the chunk-commit simulator's replay machinery (§2.2 points out that
general interactive coding must handle exactly this dependence).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.protocol import FunctionalProtocol, Protocol
from repro.errors import ConfigurationError, TaskError
from repro.tasks.base import Task
from repro.util.bits import bits_to_int, int_to_bits

__all__ = ["MaxIdTask", "max_id_noiseless_protocol"]


def max_id_noiseless_protocol(n_parties: int, id_bits: int) -> Protocol:
    """Bit-by-bit maximum election over ``id_bits`` rounds.

    A party stays a candidate while its identifier prefix matches the
    received prefix; candidates beep their next identifier bit.  The
    received transcript equals the binary expansion of ``max(x)``, which is
    every party's output.
    """

    def broadcast(
        _party: int, input_value: int, prefix: Sequence[int]
    ) -> int:
        my_bits = int_to_bits(input_value, id_bits)
        round_index = len(prefix)
        # Candidate iff my bits so far match the winning prefix.
        for position in range(round_index):
            if my_bits[position] != prefix[position]:
                return 0
        return my_bits[round_index]

    def output(_party: int, _input_value: int, received: Sequence[int]) -> int:
        return bits_to_int(received)

    return FunctionalProtocol(
        n_parties=n_parties,
        length=id_bits,
        broadcast=broadcast,
        output=output,
    )


class MaxIdTask(Task):
    """Elect the maximum of distinct uniform identifiers in ``[0, 2^id_bits)``.

    Args:
        n_parties: Number of parties.
        id_bits: Identifier width; must satisfy ``2^id_bits >= n_parties``
            so that distinct identifiers exist.
    """

    def __init__(self, n_parties: int, id_bits: int) -> None:
        if id_bits < 1:
            raise ConfigurationError(f"id_bits must be >= 1, got {id_bits}")
        if (1 << id_bits) < n_parties:
            raise ConfigurationError(
                f"2^{id_bits} identifiers cannot be distinct for "
                f"{n_parties} parties"
            )
        super().__init__(n_parties)
        self.id_bits = id_bits

    def sample_inputs(self, rng: random.Random) -> list[int]:
        # Rejection sampling: random.sample would materialise the whole
        # range, which is infeasible for wide identifiers (id_bits >= 60).
        chosen: list[int] = []
        seen: set[int] = set()
        while len(chosen) < self.n_parties:
            candidate = rng.getrandbits(self.id_bits)
            if candidate not in seen:
                seen.add(candidate)
                chosen.append(candidate)
        return chosen

    def reference_output(self, inputs: Sequence[int]) -> int:
        if len(set(inputs)) != len(inputs):
            raise TaskError("identifiers must be distinct")
        return max(inputs)

    def noiseless_protocol(self) -> Protocol:
        return max_id_noiseless_protocol(self.n_parties, self.id_bits)
