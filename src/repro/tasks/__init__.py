"""Communication tasks for the beeping model.

A :class:`Task` bundles an input distribution, the function the parties must
compute, and the canonical *noiseless* beeping protocol that computes it.
The star of the paper is :class:`InputSetTask` (Appendix A.2): every party
holds a uniform number in ``[2n]`` and all must output the set of numbers
held — the task whose noisy complexity is Θ(n log n) while its noiseless
complexity is 2n.

The other tasks exercise different protocol shapes:

* :class:`OrTask` — the 1-round primitive the beeping channel computes
  natively (and the reason a constant-rate scheme seems plausible at first,
  §2.1);
* :class:`ParityTask` — a non-adaptive round-robin protocol, the classic
  hard function of the noisy-broadcast literature [Gal88];
* :class:`BitExchangeTask` — a 2-party protocol over the channel viewed as
  Blackwell's multiplication channel (§1, "multi-party generalization");
* :class:`MaxIdTask` — adaptive bit-by-bit leader election, exercising
  protocols whose beeps depend on the received transcript;
* :class:`SizeEstimateTask` — network-size estimation by geometric beeping
  ([BKK+16] in the paper's related work), exercising private randomness
  modelled as coin-tape inputs;
* :class:`PointerChasingTask` — two-party alternating pointer chasing, the
  instance §1.2 nominates for a future independent-noise lower bound, and
  the most deeply adaptive protocol in the zoo.
"""

from repro.tasks.base import Task
from repro.tasks.input_set import InputSetTask
from repro.tasks.or_task import OrTask
from repro.tasks.parity import ParityTask
from repro.tasks.multiplication import BitExchangeTask
from repro.tasks.leader_election import MaxIdTask
from repro.tasks.counting import SizeEstimateTask
from repro.tasks.pointer_chasing import PointerChasingTask

__all__ = [
    "Task",
    "InputSetTask",
    "OrTask",
    "ParityTask",
    "BitExchangeTask",
    "MaxIdTask",
    "SizeEstimateTask",
    "PointerChasingTask",
]
