"""Two-party bit exchange over Blackwell's multiplication channel.

The introduction notes that the beeping model generalizes Blackwell's binary
*multiplication channel*: with two parties, each round delivers the OR
(equivalently, by complementing, the AND) of the two sent bits.  When the
parties take turns — the listener stays silent (beeps 0) — the OR is exactly
the speaker's bit, so the channel degenerates to alternating noiseless
broadcast.

:class:`BitExchangeTask` uses this to have two parties exchange ``k``-bit
strings in ``2k`` rounds: even rounds carry party 0's next bit, odd rounds
party 1's.  Both parties output the pair of strings.  The task gives the
simulators a protocol whose transcript is *dense in meaningful 0s* —
the regime in which 0→1 noise flips are maximally damaging (§2.4.2).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.protocol import FunctionalProtocol, Protocol
from repro.errors import ConfigurationError, TaskError
from repro.tasks.base import Task

__all__ = ["BitExchangeTask", "bit_exchange_noiseless_protocol"]


def bit_exchange_noiseless_protocol(word_length: int) -> Protocol:
    """2·word_length rounds of alternating broadcast between two parties.

    Inputs are bit tuples of length ``word_length``; the output is the pair
    ``(x^0, x^1)`` reconstructed from the transcript (party 0's bits sit in
    even rounds, party 1's in odd rounds).
    """
    length = 2 * word_length

    def broadcast(
        party: int, input_value: Sequence[int], prefix: Sequence[int]
    ) -> int:
        round_index = len(prefix)
        speaker = round_index % 2
        if party != speaker:
            return 0
        return input_value[round_index // 2]

    def output(
        _party: int, _input_value: Sequence[int], received: Sequence[int]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        word_0 = tuple(received[2 * t] for t in range(word_length))
        word_1 = tuple(received[2 * t + 1] for t in range(word_length))
        return (word_0, word_1)

    return FunctionalProtocol(
        n_parties=2, length=length, broadcast=broadcast, output=output
    )


class BitExchangeTask(Task):
    """Two parties exchange uniform ``word_length``-bit strings."""

    def __init__(self, word_length: int) -> None:
        if word_length < 1:
            raise ConfigurationError(
                f"word_length must be >= 1, got {word_length}"
            )
        super().__init__(n_parties=2)
        self.word_length = word_length

    def sample_inputs(self, rng: random.Random) -> list[tuple[int, ...]]:
        return [
            tuple(rng.getrandbits(1) for _ in range(self.word_length))
            for _ in range(2)
        ]

    def reference_output(
        self, inputs: Sequence[Sequence[int]]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if len(inputs) != 2:
            raise TaskError(f"expected 2 inputs, got {len(inputs)}")
        return (tuple(inputs[0]), tuple(inputs[1]))

    def noiseless_protocol(self) -> Protocol:
        return bit_exchange_noiseless_protocol(self.word_length)
