"""Two-party pointer chasing over the beeping channel.

§1.2 of the paper singles out pointer chasing as the candidate instance
for a super-constant *independent-noise* lower bound ("it is our belief
that with a different example (e.g., a variant of pointer chasing), a
super-constant lower bound on the blowup can be proved for independent
noise as well").  This module provides the task so that future-work
experiments have their instance ready.

The classic problem: party 0 holds a function ``f : [N] → [N]``, party 1
holds ``g : [N] → [N]``; starting from node 0 they must compute the node
reached after ``depth`` alternating applications ``g(f(g(f(...0...))))``
— wait, order: step 1 applies ``f``, step 2 applies ``g``, and so on.
The natural protocol alternates: the party owning the next function
transmits the next pointer bit by bit (the other stays silent, so the OR
channel carries the bits faithfully), each step consuming ``log₂ N``
rounds.  Every transmitted pointer depends on everything received so far,
making this the package's most deeply *adaptive* protocol — information
flows through a chain of dependent hops, which is exactly why it is a
natural hard instance for noise.

The final pointer is read off the transcript's last ``log₂ N`` rounds, so
outputs are transcript-determined (the §C.2 normalisation holds for free).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.protocol import FunctionalProtocol, Protocol
from repro.errors import ConfigurationError, TaskError
from repro.tasks.base import Task
from repro.util.bits import bits_to_int, int_to_bits

__all__ = ["PointerChasingTask", "pointer_chasing_noiseless_protocol"]


def pointer_chasing_noiseless_protocol(
    depth: int, domain_bits: int
) -> Protocol:
    """``depth`` alternating pointer transmissions of ``domain_bits`` each.

    Step ``s`` (0-based) is owned by party ``s % 2`` (party 0 applies its
    function first).  During step ``s`` the owner beeps the binary
    expansion of its function applied to the previous pointer; the other
    party is silent.  The output is the last transmitted pointer.
    """
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    if domain_bits < 1:
        raise ConfigurationError(
            f"domain_bits must be >= 1, got {domain_bits}"
        )
    length = depth * domain_bits

    def current_pointer(prefix: Sequence[int]) -> int:
        """The pointer as of the last *completed* step (0 initially)."""
        completed = len(prefix) // domain_bits
        if completed == 0:
            return 0
        start = (completed - 1) * domain_bits
        return bits_to_int(prefix[start : start + domain_bits])

    def broadcast(
        party: int, function: Sequence[int], prefix: Sequence[int]
    ) -> int:
        step = len(prefix) // domain_bits
        if step % 2 != party:
            return 0  # not my step: stay silent
        pointer = current_pointer(prefix)
        value = function[pointer]
        position = len(prefix) % domain_bits
        return int_to_bits(value, domain_bits)[position]

    def output(
        _party: int, _function: Sequence[int], received: Sequence[int]
    ) -> int:
        return bits_to_int(received[-domain_bits:])

    return FunctionalProtocol(
        n_parties=2, length=length, broadcast=broadcast, output=output
    )


class PointerChasingTask(Task):
    """Chase ``depth`` alternating pointers through two private functions.

    Args:
        depth: Number of pointer hops (party 0 moves first).
        domain_bits: log₂ of the domain size N.

    Inputs are uniform functions ``[N] → [N]`` (one per party, as tuples);
    the reference output is the node after ``depth`` hops from node 0.
    """

    def __init__(self, depth: int, domain_bits: int) -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if domain_bits < 1:
            raise ConfigurationError(
                f"domain_bits must be >= 1, got {domain_bits}"
            )
        super().__init__(n_parties=2)
        self.depth = depth
        self.domain_bits = domain_bits
        self.domain_size = 1 << domain_bits

    def sample_inputs(self, rng: random.Random) -> list[tuple[int, ...]]:
        return [
            tuple(
                rng.randrange(self.domain_size)
                for _ in range(self.domain_size)
            )
            for _ in range(2)
        ]

    def reference_output(self, inputs: Sequence[Sequence[int]]) -> int:
        if len(inputs) != 2:
            raise TaskError(f"expected 2 functions, got {len(inputs)}")
        for function in inputs:
            if len(function) != self.domain_size:
                raise TaskError(
                    f"functions must have {self.domain_size} entries"
                )
            if any(
                not 0 <= value < self.domain_size for value in function
            ):
                raise TaskError("function values outside the domain")
        pointer = 0
        for step in range(self.depth):
            pointer = inputs[step % 2][pointer]
        return pointer

    def noiseless_protocol(self) -> Protocol:
        return pointer_chasing_noiseless_protocol(
            self.depth, self.domain_bits
        )
