"""Network-size estimation by geometric beeping.

Approximating the number of participants is a flagship beeping-model
primitive (the paper cites [BKK⁺16], "Approximating the size of a radio
network in beeping model").  The classic single-hop protocol: in phase
``k`` every party beeps with probability ``2^{-k}``; the first *silent*
phase ``k*`` satisfies ``2^{k*} ≈ n``, because the OR of ``n`` coins of
bias ``2^{-k}`` flips from almost-surely-1 to almost-surely-0 around
``k ≈ log₂ n``.

Randomness is modelled the clean way for this package's deterministic
protocol formalism: each party's *input* is its private coin tape (the
``t^i_k ~ Bernoulli(2^{-k})`` draws), sampled by
:meth:`SizeEstimateTask.sample_inputs`.  The protocol itself is then
deterministic and non-adaptive — and therefore directly consumable by
every simulator in :mod:`repro.simulation`.

Noise interacts with this task in a particularly clean way: a single 0→1
flip in a late phase inflates the estimate by the remaining-phase
structure, and a 1→0 flip in an early phase collapses it — making the task
a sensitive probe for the simulators (it is used in the example suite and
the integration tests).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.core.protocol import FunctionalProtocol, Protocol
from repro.errors import ConfigurationError, TaskError
from repro.tasks.base import Task

__all__ = ["SizeEstimateTask", "size_estimate_noiseless_protocol"]


def size_estimate_noiseless_protocol(
    n_parties: int, phases: int
) -> Protocol:
    """``phases`` rounds; party ``i`` beeps its coin tape bit in phase k.

    The output is ``2^{k*}`` for the first silent phase ``k*`` (or
    ``2^{phases}`` if every phase beeped).
    """

    def broadcast(
        _party: int, tape: Sequence[int], prefix: Sequence[int]
    ) -> int:
        return tape[len(prefix)]

    def output(
        _party: int, _tape: Sequence[int], received: Sequence[int]
    ) -> int:
        for phase, bit in enumerate(received):
            if bit == 0:
                return 1 << phase
        return 1 << len(received)

    return FunctionalProtocol(
        n_parties=n_parties,
        length=phases,
        broadcast=broadcast,
        output=output,
    )


class SizeEstimateTask(Task):
    """Estimate the participant count within a multiplicative tolerance.

    Args:
        n_parties: The true network size (what the estimate targets).
        tolerance: Success means every party outputs the same estimate
            within a factor ``tolerance`` of ``n_parties``.  The geometric
            protocol concentrates within a small constant factor, so the
            default 32 succeeds with high probability even for small n.
        extra_phases: Phases beyond ``log₂ n`` (headroom so that the first
            silent phase exists with overwhelming probability).
    """

    def __init__(
        self,
        n_parties: int,
        tolerance: float = 32.0,
        extra_phases: int = 6,
    ) -> None:
        if n_parties < 1:
            raise ConfigurationError(
                f"need at least one party, got {n_parties}"
            )
        if tolerance < 1.0:
            raise ConfigurationError(
                f"tolerance must be >= 1, got {tolerance}"
            )
        if extra_phases < 1:
            raise ConfigurationError(
                f"extra_phases must be >= 1, got {extra_phases}"
            )
        super().__init__(n_parties)
        self.tolerance = tolerance
        self.phases = (
            max(1, math.ceil(math.log2(max(n_parties, 2)))) + extra_phases
        )

    def sample_inputs(self, rng: random.Random) -> list[tuple[int, ...]]:
        """Each party's input is its private coin tape:
        ``tape[k] ~ Bernoulli(2^{-k})`` (phase 0 always beeps)."""
        return [
            tuple(
                1 if rng.random() < 2.0 ** (-phase) else 0
                for phase in range(self.phases)
            )
            for _ in range(self.n_parties)
        ]

    def reference_output(self, inputs: Sequence[Sequence[int]]) -> int:
        """The estimate the *noiseless* execution would produce.

        Deterministic in the coin tapes: the OR of the tapes per phase,
        scanned for the first silence.
        """
        if len(inputs) != self.n_parties:
            raise TaskError(
                f"expected {self.n_parties} tapes, got {len(inputs)}"
            )
        for phase in range(self.phases):
            if not any(tape[phase] for tape in inputs):
                return 1 << phase
        return 1 << self.phases

    def is_correct(
        self, inputs: Sequence[Sequence[int]], outputs: Sequence[int]
    ) -> bool:
        """All parties agree AND the estimate is within tolerance of n.

        Note this is stricter than matching the noiseless execution: a
        simulated run must both faithfully reproduce the transcript *and*
        the transcript must actually estimate well — the task-level
        success probability therefore factors as
        Pr[good tapes]·Pr[faithful simulation].
        """
        if not outputs:
            return False
        estimate = outputs[0]
        if any(output != estimate for output in outputs):
            return False
        return (
            self.n_parties / self.tolerance
            <= estimate
            <= self.n_parties * self.tolerance
        )

    def noiseless_protocol(self) -> Protocol:
        return size_estimate_noiseless_protocol(
            self.n_parties, self.phases
        )
