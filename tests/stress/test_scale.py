"""Scale confidence tests — the largest instances the suite exercises.

These run the heavy configurations the benchmarks rely on, as plain tests,
so a performance or correctness regression at scale fails CI rather than
silently inflating benchmark times.
"""

import random

import pytest

from repro.channels import CorrelatedNoiseChannel, SuppressionNoiseChannel
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RewindSimulator,
)
from repro.tasks import InputSetTask, MaxIdTask, OrTask


class TestLargeInstances:
    def test_chunk_commit_n64(self):
        task = InputSetTask(64)
        inputs = task.sample_inputs(random.Random(0))
        result = ChunkCommitSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.1, rng=1),
        )
        assert task.is_correct(inputs, result.outputs)
        report = result.metadata["report"]
        assert report.completed
        # Θ(log n) budget sanity: overhead ≈ 20·log2(64) ≈ 140 (E1's
        # fit), far below anything polynomial in n.
        assert report.overhead < 300

    def test_hierarchical_n32_long_protocol(self):
        task = MaxIdTask(32, id_bits=64)
        inputs = task.sample_inputs(random.Random(1))
        result = HierarchicalSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.1, rng=2),
        )
        assert task.is_correct(inputs, result.outputs)
        assert result.metadata["report"].completed

    def test_rewind_long_protocol(self):
        task = MaxIdTask(8, id_bits=128)
        inputs = task.sample_inputs(random.Random(2))
        result = RewindSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            SuppressionNoiseChannel(0.1, rng=3),
        )
        assert task.is_correct(inputs, result.outputs)
        # Constant overhead even at T = 128.
        assert result.rounds <= 2 * (3 * 128 + 32)

    def test_engine_round_throughput_floor(self):
        """The engine must sustain a sane rounds/sec floor at n = 64
        (guards against accidental quadratic behaviour per round)."""
        import time

        task = InputSetTask(64)
        inputs = task.sample_inputs(random.Random(3))
        from repro.core import run_protocol
        from repro.simulation.repetition_sim import (
            RepetitionWrappedProtocol,
        )

        protocol = RepetitionWrappedProtocol(
            task.noiseless_protocol(), repetitions=40
        )
        channel = CorrelatedNoiseChannel(0.1, rng=4)
        start = time.perf_counter()
        result = run_protocol(
            protocol, inputs, channel, record_sent=False
        )
        elapsed = time.perf_counter() - start
        assert result.rounds == 128 * 40
        rate = result.rounds / elapsed
        assert rate > 5_000  # rounds/sec at 64 parties (CI-safe floor)


@pytest.mark.slow
class TestParallelSweepAtScale:
    """The runner equivalence contract at benchmark-scale trial counts.

    Marked ``slow`` (skipped unless RUN_SLOW=1): 10k trials each on two
    backends is deliberately heavier than the CI fast path.
    """

    def test_10k_trial_parallel_sweep_matches_serial_exactly(self):
        from repro.analysis import estimate_success
        from repro.parallel import (
            ChannelSpec,
            ProcessPoolRunner,
            ProtocolExecutor,
            SerialRunner,
        )

        task = OrTask(2)
        executor = ProtocolExecutor(
            task=task,
            channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.2),
        )
        trials = 10_000
        serial = estimate_success(
            task, executor, trials, seed=7, runner=SerialRunner()
        )
        with ProcessPoolRunner(workers=4, chunk_size=512) as runner:
            parallel = estimate_success(
                task, executor, trials, seed=7, runner=runner
            )
            assert runner.last_fallback_reason is None
        # Bitwise equality of the whole point, Wilson interval included.
        assert parallel.to_dict() == serial.to_dict()
        assert parallel.success.interval == serial.success.interval
        assert parallel.success.trials == trials


class TestSerializationAtScale:
    def test_execution_to_dict_round_trips(self):
        import json

        task = InputSetTask(8)
        inputs = task.sample_inputs(random.Random(4))
        result = ChunkCommitSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.1, rng=5),
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["rounds"] == result.rounds
        assert payload["report"]["completed"] is True
        assert payload["total_energy"] == result.total_energy

    def test_transcript_included_on_request(self):
        import json

        from repro.channels import NoiselessChannel
        from repro.core import run_protocol

        task = InputSetTask(3)
        inputs = [1, 3, 5]
        result = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        payload = json.loads(
            json.dumps(result.to_dict(include_transcript=True))
        )
        assert payload["transcript"]["or_values"] == [
            1, 0, 1, 0, 1, 0,
        ]
        assert len(payload["transcript"]["received"]) == 3
