"""Statistical agreement between the vectorized and scalar backends.

The unit-level equivalence suite pins same-seed trials bitwise; these
RUN_SLOW tests make the stronger empirical claim at scale: *independent*
large samples from the two backends estimate the same success
distribution.  For chunk-commit and rewind at n ∈ {8, 32, 128}, and
repetition and hierarchical at n ∈ {8, 32}, the two backends run
disjoint seed ranges and must produce

* overlapping 95% Wilson confidence intervals on the success rate, and
* a chi-square test on the success/failure contingency table that does
  not reject homogeneity (p > 0.001).

Trial counts scale down with n (per-trial cost grows superlinearly —
chunked at n=128 runs ~43k scalar rounds per trial); the n=8 configs run
the full 10k trials per backend.  Run with ``RUN_SLOW=1``; the whole
suite takes a few minutes.
"""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")

from repro.channels import CorrelatedNoiseChannel, SuppressionNoiseChannel
from repro.parallel import (
    ChannelSpec,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.tasks import InputSetTask
from repro.vectorized import VectorizedRunner

# scheme -> (simulator spec, channel spec); the benchmark's pairings.
SCHEMES = {
    "chunked": (
        SimulatorSpec.of(ChunkCommitSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
    "rewind": (
        SimulatorSpec.of(RewindSimulator),
        ChannelSpec.of(SuppressionNoiseChannel, 0.1),
    ),
    "repetition": (
        SimulatorSpec.of(RepetitionSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
    "hierarchical": (
        SimulatorSpec.of(HierarchicalSimulator),
        ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
    ),
}

#: (scheme, n) grid: chunk/rewind keep their historical n=128 point; the
#: newer repetition/hierarchical collapses stop at n=32 (hierarchical's
#: scalar reference alone runs minutes per backend at n=128).
CONFIGS = [
    (scheme, n)
    for scheme in sorted(SCHEMES)
    for n in ([8, 32, 128] if scheme in ("chunked", "rewind") else [8, 32])
]

#: Trials per backend.  ~10k at n=8; scaled by per-trial cost above.
TRIALS = {8: 10_000, 32: 1_500, 128: 150}

#: Disjoint master seeds so the two samples are independent draws.
SERIAL_SEED = 20_260_807
VECTORIZED_SEED = SERIAL_SEED + 104_729


def _wilson_interval(successes: int, trials: int, z: float = 1.96):
    """95% Wilson score interval for a binomial proportion."""
    if trials == 0:
        return 0.0, 1.0
    phat = successes / trials
    denom = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials**2))
        / denom
    )
    return center - margin, center + margin


def _successes(runner, executor, task, trials, seed):
    batch = runner.run_trials(task, executor, trials, seed=seed)
    return sum(record.success for record in batch.records)


@pytest.mark.slow
@pytest.mark.parametrize("scheme,n", CONFIGS)
def test_backends_statistically_agree(scheme, n):
    scipy_stats = pytest.importorskip("scipy.stats")
    simulator, channel = SCHEMES[scheme]
    task = InputSetTask(n)
    executor = SimulationExecutor(
        task=task, channel=channel, simulator=simulator
    )
    trials = TRIALS[n]

    serial_wins = _successes(
        SerialRunner(), executor, task, trials, SERIAL_SEED
    )
    vectorized_runner = VectorizedRunner()
    vectorized_wins = _successes(
        vectorized_runner, executor, task, trials, VECTORIZED_SEED
    )
    assert vectorized_runner.last_fallback_reason is None

    serial_ci = _wilson_interval(serial_wins, trials)
    vectorized_ci = _wilson_interval(vectorized_wins, trials)
    assert serial_ci[0] <= vectorized_ci[1] and vectorized_ci[0] <= serial_ci[1], (
        f"{scheme} n={n}: non-overlapping CIs "
        f"serial={serial_ci} vectorized={vectorized_ci}"
    )

    table = np.array(
        [
            [serial_wins, trials - serial_wins],
            [vectorized_wins, trials - vectorized_wins],
        ]
    )
    if (table.sum(axis=0) == 0).any():
        # A degenerate column (all-success or all-failure on both
        # backends) makes chi-square undefined; the distributions are
        # identical, which is agreement.
        assert serial_wins == vectorized_wins
        return
    result = scipy_stats.chi2_contingency(table)
    assert result.pvalue > 0.001, (
        f"{scheme} n={n}: chi-square rejects homogeneity "
        f"(p={result.pvalue:.2e}, table={table.tolist()})"
    )
