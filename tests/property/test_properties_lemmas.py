"""Property-based tests for the paper's lemmas and tasks."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import NoiselessChannel
from repro.core import run_protocol
from repro.core.formal import NoiseModel
from repro.lowerbound import theory
from repro.lowerbound.good_players import (
    sample_unique_counts,
    unique_input_players,
)
from repro.lowerbound.neighbors import differing_neighbors, neighbor_inputs
from repro.tasks import InputSetTask, MaxIdTask, ParityTask

positive_floats = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestLemmaB7:
    """Lemma B.7: (Σa)²/Σb ≤ Σ a²/b for positive sequences."""

    @given(
        pairs=st.lists(
            st.tuples(positive_floats, positive_floats),
            min_size=1,
            max_size=12,
        )
    )
    def test_inequality_holds(self, pairs):
        numerators = [a for a, _ in pairs]
        denominators = [b for _, b in pairs]
        gap = theory.cauchy_schwarz_ratio_gap(numerators, denominators)
        assert gap >= -1e-9 * max(numerators) ** 2 / min(denominators)


class TestLemmaB8:
    @given(
        k=st.integers(min_value=2, max_value=20),
        multiplier=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_empirical_tail_below_bound(self, k, multiplier, seed):
        universe = k * multiplier  # ensures k < |S|
        counts = sample_unique_counts(k, universe, trials=400, rng=seed)
        empirical = sum(1 for c in counts if c <= k / 3) / len(counts)
        bound = theory.lemma_b8_probability_bound(k, universe)
        # Allow sampling slack of 3 standard deviations.
        slack = 3 * math.sqrt(0.25 / 400)
        assert empirical <= bound + slack


class TestInputSetProperties:
    @given(
        n=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_noiseless_protocol_always_correct(self, n, data):
        task = InputSetTask(n)
        inputs = [
            data.draw(st.integers(min_value=1, max_value=2 * n))
            for _ in range(n)
        ]
        result = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        assert task.is_correct(inputs, result.outputs)

    @given(n=st.integers(min_value=1, max_value=6), data=st.data())
    @settings(max_examples=40)
    def test_unique_holders_match_sensitivity(self, n, data):
        """A player is a unique holder iff every change of its input
        changes L(x)."""
        task = InputSetTask(n)
        inputs = [
            data.draw(st.integers(min_value=1, max_value=2 * n))
            for _ in range(n)
        ]
        unique = task.unique_holders(inputs)
        reference = frozenset(inputs)
        for player in range(n):
            fully_sensitive = all(
                frozenset(neighbor) != reference
                for neighbor in neighbor_inputs(inputs, task.universe)
                if neighbor[player] != inputs[player]
                and all(
                    neighbor[j] == inputs[j]
                    for j in range(n)
                    if j != player
                )
            )
            if player in unique:
                assert fully_sensitive

    @given(n=st.integers(min_value=2, max_value=6), data=st.data())
    @settings(max_examples=30)
    def test_differing_neighbors_change_output(self, n, data):
        task = InputSetTask(n)
        inputs = tuple(
            data.draw(st.integers(min_value=1, max_value=2 * n))
            for _ in range(n)
        )
        for neighbor in differing_neighbors(inputs, task.universe):
            assert frozenset(neighbor) != frozenset(inputs)

    @given(n=st.integers(min_value=1, max_value=8), data=st.data())
    @settings(max_examples=30)
    def test_unique_players_definition(self, n, data):
        inputs = [
            data.draw(st.integers(min_value=1, max_value=2 * n))
            for _ in range(n)
        ]
        unique = unique_input_players(inputs)
        for player in range(n):
            others = [inputs[j] for j in range(n) if j != player]
            assert (player in unique) == (inputs[player] not in others)


class TestOtherTaskProperties:
    @given(data=st.data(), n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30)
    def test_parity_protocol_always_correct(self, data, n):
        task = ParityTask(n)
        inputs = [data.draw(st.integers(0, 1)) for _ in range(n)]
        result = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        assert task.is_correct(inputs, result.outputs)

    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30)
    def test_max_id_protocol_always_correct(self, n, seed):
        task = MaxIdTask(n, id_bits=5)
        inputs = task.sample_inputs(random.Random(seed))
        result = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        assert result.outputs == [max(inputs)] * n


class TestNoiseModelProperties:
    @given(
        up=st.floats(min_value=0.0, max_value=0.99),
        down=st.floats(min_value=0.0, max_value=0.99),
        or_value=st.integers(min_value=0, max_value=1),
    )
    def test_round_probabilities_normalise(self, up, down, or_value):
        model = NoiseModel(up=up, down=down)
        total = model.round_probability(or_value, 0) + model.round_probability(
            or_value, 1
        )
        assert total == 1.0
