"""Property-based tests for the finding-owners phase (Theorem D.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import NoiselessChannel
from repro.core import run_protocol
from repro.core.formal import NoiseModel
from repro.network import complete  # noqa: F401  (documents availability)
from repro.simulation.owners import OwnersProtocol, build_owners_code

NOISELESS = NoiseModel(up=0.0, down=0.0)

beep_matrices = st.integers(min_value=2, max_value=6).flatmap(
    lambda n: st.lists(
        st.lists(
            st.integers(min_value=0, max_value=1), min_size=n, max_size=n
        ),
        min_size=n,
        max_size=n,
    )
)


@st.composite
def matrices_with_phantoms(draw):
    """A beep matrix plus a transcript with extra (phantom) ones."""
    n = draw(st.integers(min_value=2, max_value=5))
    bits = [
        tuple(
            draw(st.integers(min_value=0, max_value=1)) for _ in range(n)
        )
        for _ in range(n)
    ]
    pi = [max(column) for column in zip(*bits)]
    # Flip some zeros of pi up (phantom ones nobody beeped).
    for m in range(n):
        if pi[m] == 0 and draw(st.booleans()):
            pi[m] = 1
    return bits, tuple(pi)


class TestOwnersInvariants:
    @given(bits=beep_matrices)
    @settings(max_examples=30, deadline=None)
    def test_noiseless_owners_consistent_valid_covering(self, bits):
        n = len(bits)
        bits = [tuple(row) for row in bits]
        pi = tuple(max(column) for column in zip(*bits))
        protocol = OwnersProtocol(n, pi, NOISELESS)
        result = run_protocol(protocol, bits, NoiselessChannel())
        reference = result.outputs[0].owners
        # Theorem D.1, deterministically over a noiseless channel:
        assert all(out.owners == reference for out in result.outputs)
        for position, owner in reference.items():
            assert bits[owner][position] == 1
        assert set(reference) == {m for m in range(n) if pi[m] == 1}

    @given(data=matrices_with_phantoms())
    @settings(max_examples=30, deadline=None)
    def test_phantom_ones_stay_ownerless(self, data):
        """A 1 in π that nobody beeped can never acquire an owner — the
        detection property the verification phases build on (§2.1)."""
        bits, pi = data
        n = len(bits)
        protocol = OwnersProtocol(n, pi, NOISELESS)
        result = run_protocol(protocol, bits, NoiselessChannel())
        owners = result.outputs[0].owners
        for position in range(n):
            beeped = any(bits[i][position] for i in range(n))
            if pi[position] == 1 and not beeped:
                assert position not in owners
            if pi[position] == 1 and beeped:
                assert position in owners

    @given(bits=beep_matrices)
    @settings(max_examples=20, deadline=None)
    def test_claimed_by_me_partitions_owned_rounds(self, bits):
        """Each owned position is claimed by exactly its owner."""
        n = len(bits)
        bits = [tuple(row) for row in bits]
        pi = tuple(max(column) for column in zip(*bits))
        protocol = OwnersProtocol(n, pi, NOISELESS)
        result = run_protocol(protocol, bits, NoiselessChannel())
        owners = result.outputs[0].owners
        for position, owner in owners.items():
            for party, output in enumerate(result.outputs):
                if party == owner:
                    assert position in output.claimed_by_me
                else:
                    assert position not in output.claimed_by_me

    @given(
        bits=beep_matrices,
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_round_count_formula(self, bits, seed):
        """The phase costs exactly (|J| + n) · L rounds."""
        n = len(bits)
        bits = [tuple(row) for row in bits]
        pi = tuple(max(column) for column in zip(*bits))
        code = build_owners_code(n, seed=seed)
        protocol = OwnersProtocol(n, pi, NOISELESS, code=code)
        result = run_protocol(protocol, bits, NoiselessChannel())
        ones = sum(pi)
        assert result.rounds == (ones + n) * code.codeword_length
