"""Property-based tests for the sweep layer's seeding and bookkeeping.

The parallel runner's determinism contract rests on three properties,
checked here over random seeds and grids:

1. trial seeds derived by the runner are pairwise distinct;
2. trial records depend only on ``(seed, index)``, never on dispatch
   order;
3. ``estimate_success`` bookkeeping matches a hand-rolled reference loop.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import estimate_success
from repro.analysis.stats import mean
from repro.channels import CorrelatedNoiseChannel
from repro.parallel import (
    ChannelSpec,
    ProtocolExecutor,
    SerialRunner,
    run_trial,
)
from repro.rng import derive_seed, spawn
from repro.tasks import OrTask

seeds = st.integers(min_value=0, max_value=2**63 - 1)
epsilons = st.sampled_from([0.0, 0.1, 0.3])


def _executor(epsilon: float):
    task = OrTask(2)
    return task, ProtocolExecutor(
        task=task,
        channel=ChannelSpec.of(CorrelatedNoiseChannel, epsilon),
    )


class TestTrialSeedDerivation:
    @given(seed=seeds, trials=st.integers(min_value=2, max_value=300))
    @settings(max_examples=60)
    def test_trial_seeds_pairwise_distinct(self, seed, trials):
        trial_seeds = [
            derive_seed(seed, f"trial[{index}]") for index in range(trials)
        ]
        assert len(set(trial_seeds)) == trials

    @given(seed=seeds, trials=st.integers(min_value=2, max_value=300))
    @settings(max_examples=60)
    def test_input_and_trial_streams_disjoint(self, seed, trials):
        input_seeds = {
            derive_seed(seed, f"inputs[{index}]") for index in range(trials)
        }
        trial_seeds = {
            derive_seed(seed, f"trial[{index}]") for index in range(trials)
        }
        assert not input_seeds & trial_seeds

    @given(seed=seeds, points=st.integers(min_value=2, max_value=100))
    @settings(max_examples=60)
    def test_grid_point_seeds_pairwise_distinct(self, seed, points):
        point_seeds = [
            derive_seed(seed, f"point[{index}]") for index in range(points)
        ]
        assert len(set(point_seeds)) == points


class TestDispatchOrderIndependence:
    @given(
        seed=seeds,
        epsilon=epsilons,
        order=st.permutations(list(range(8))),
    )
    @settings(max_examples=25, deadline=None)
    def test_records_identical_under_any_dispatch_order(
        self, seed, epsilon, order
    ):
        task, executor = _executor(epsilon)
        in_order = [
            run_trial(task, executor, seed, index) for index in range(8)
        ]
        shuffled = [
            run_trial(task, executor, seed, index) for index in order
        ]
        shuffled.sort(key=lambda record: record.index)
        assert shuffled == in_order


class TestEstimateSuccessBookkeeping:
    @given(
        seed=seeds,
        epsilon=epsilons,
        trials=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_hand_rolled_loop(self, seed, epsilon, trials):
        task, executor = _executor(epsilon)
        point = estimate_success(
            task, executor, trials, seed=seed, runner=SerialRunner()
        )

        # The historical reference loop, character for character.
        successes = 0
        rounds = []
        for trial in range(trials):
            inputs = task.sample_inputs(spawn(seed, f"inputs[{trial}]"))
            trial_seed = derive_seed(seed, f"trial[{trial}]")
            result = executor(inputs, trial_seed)
            if task.is_correct(inputs, result.outputs):
                successes += 1
            rounds.append(float(result.rounds))

        assert point.success.successes == successes
        assert point.success.trials == trials
        assert point.mean_rounds == mean(rounds)
        assert point.mean_overhead == mean(rounds) / max(
            1, task.noiseless_length()
        )
