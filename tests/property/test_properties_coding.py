"""Property-based tests for the coding layer."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.coding import (
    GreedyRandomCode,
    HadamardCode,
    MLDecoder,
    RepetitionCode,
)
from repro.core.formal import NoiseModel
from repro.util.bits import hamming_distance


class TestCodeInvariants:
    @given(
        num_symbols=st.integers(min_value=2, max_value=24),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30)
    def test_greedy_code_injective_and_floored(self, num_symbols, seed):
        code = GreedyRandomCode(num_symbols, 48, seed=seed)
        code.validate_injective()
        assert code.min_distance() >= code.min_distance_floor

    @given(num_symbols=st.integers(min_value=2, max_value=64))
    def test_hadamard_pairwise_distance_exactly_half(self, num_symbols):
        code = HadamardCode(num_symbols)
        words = code.codewords
        for a in range(min(len(words), 8)):
            for b in range(a + 1, min(len(words), 8)):
                assert (
                    hamming_distance(words[a], words[b])
                    == code.codeword_length // 2
                )

    @given(
        num_symbols=st.integers(min_value=1, max_value=32),
        repetitions=st.integers(min_value=1, max_value=8),
    )
    def test_repetition_code_length_formula(self, num_symbols, repetitions):
        code = RepetitionCode(num_symbols, repetitions)
        assert code.codeword_length == code.width * repetitions


class TestMLDecoderProperties:
    @given(
        symbol=st.integers(min_value=0, max_value=9),
        up=st.floats(min_value=0.0, max_value=0.45),
        down=st.floats(min_value=0.0, max_value=0.45),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40)
    def test_clean_word_decodes_to_itself(self, symbol, up, down, seed):
        """For up + down < 1 the true codeword strictly maximises the
        likelihood of its own (uncorrupted) reception."""
        code = GreedyRandomCode(10, 40, seed=seed)
        decoder = MLDecoder(code, NoiseModel(up=up, down=down))
        assert decoder.decode(code.encode(symbol)) == symbol

    @given(
        symbol=st.integers(min_value=0, max_value=7),
        flips=st.lists(
            st.integers(min_value=0, max_value=39),
            min_size=0,
            max_size=4,
            unique=True,
        ),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40)
    def test_few_flips_still_decode(self, symbol, flips, seed):
        """Flipping at most 4 of 40 positions stays within half the
        distance floor of the greedy code, so decoding must succeed."""
        code = GreedyRandomCode(8, 40, seed=seed)
        assume(len(flips) * 2 < code.min_distance())
        decoder = MLDecoder(code, NoiseModel.two_sided(0.2))
        word = list(code.encode(symbol))
        for index in flips:
            word[index] ^= 1
        assert decoder.decode(word) == symbol

    @given(
        up=st.floats(min_value=0.01, max_value=0.45),
        down=st.floats(min_value=0.01, max_value=0.45),
    )
    def test_log_likelihood_monotone_in_agreement(self, up, down):
        """More agreement with the codeword means higher likelihood."""
        code = HadamardCode(4)
        decoder = MLDecoder(code, NoiseModel(up=up, down=down))
        word = code.encode(3)
        exact = decoder.log_likelihood(3, word)
        corrupted = list(word)
        corrupted[0] ^= 1
        assert decoder.log_likelihood(3, corrupted) < exact
