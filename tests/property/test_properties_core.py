"""Property-based tests (hypothesis) for bits, channels, and the engine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import (
    CorrelatedNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.core import FunctionalProtocol, run_protocol
from repro.util.bits import (
    bits_to_int,
    hamming_distance,
    int_to_bits,
    majority_bit,
    or_reduce,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=32)


class TestBitProperties:
    @given(value=st.integers(min_value=0, max_value=2**16 - 1))
    def test_int_bits_round_trip(self, value):
        assert bits_to_int(int_to_bits(value, 16)) == value

    @given(bits=bit_lists)
    def test_or_reduce_matches_builtin(self, bits):
        assert or_reduce(bits) == (1 if any(bits) else 0)

    @given(bits=bit_lists)
    def test_majority_definition(self, bits):
        expected = 1 if 2 * sum(bits) > len(bits) else 0
        assert majority_bit(bits) == expected

    @given(bits=bit_lists)
    def test_hamming_distance_identity(self, bits):
        assert hamming_distance(bits, bits) == 0

    @given(a=bit_lists, b=bit_lists, c=bit_lists)
    def test_hamming_triangle_inequality(self, a, b, c):
        size = min(len(a), len(b), len(c))
        a, b, c = a[:size], b[:size], c[:size]
        assert hamming_distance(a, c) <= hamming_distance(
            a, b
        ) + hamming_distance(b, c)


class TestChannelInvariants:
    @given(bits=bit_lists, seed=st.integers(min_value=0, max_value=10**6))
    def test_one_sided_never_suppresses(self, bits, seed):
        channel = OneSidedNoiseChannel(0.49, rng=seed)
        outcome = channel.transmit(bits)
        if any(bits):
            assert outcome.common == 1

    @given(bits=bit_lists, seed=st.integers(min_value=0, max_value=10**6))
    def test_suppression_never_creates(self, bits, seed):
        channel = SuppressionNoiseChannel(0.49, rng=seed)
        outcome = channel.transmit(bits)
        if not any(bits):
            assert outcome.common == 0

    @given(
        bits=bit_lists,
        seed=st.integers(min_value=0, max_value=10**6),
        epsilon=st.floats(min_value=0.0, max_value=0.99),
    )
    def test_correlated_views_always_agree(self, bits, seed, epsilon):
        channel = CorrelatedNoiseChannel(epsilon, rng=seed)
        outcome = channel.transmit(bits)
        assert len(set(outcome.received)) == 1

    @given(bits=bit_lists)
    def test_noiseless_is_exact(self, bits):
        outcome = NoiselessChannel().transmit(bits)
        assert outcome.common == or_reduce(bits)
        assert not outcome.noisy


class TestEngineProperties:
    @given(
        table=st.lists(
            st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=2),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=40)
    def test_transcript_or_matches_sent_bits(self, table):
        """For a fixed beep table the noiseless transcript is the row OR."""
        length = len(table)
        protocol = FunctionalProtocol(
            n_parties=2,
            length=length,
            broadcast=lambda i, x, prefix: table[len(prefix)][i],
            output=lambda i, x, received: tuple(received),
        )
        result = run_protocol(protocol, [None, None], NoiselessChannel())
        expected = tuple(1 if any(row) else 0 for row in table)
        assert result.transcript.common_view() == expected
        assert result.rounds == length

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        epsilon=st.floats(min_value=0.0, max_value=0.45),
    )
    @settings(max_examples=25)
    def test_execution_reproducible_from_seeds(self, seed, epsilon):
        protocol = FunctionalProtocol(
            n_parties=3,
            length=6,
            broadcast=lambda i, x, prefix: (x >> len(prefix)) & 1,
            output=lambda i, x, received: tuple(received),
        )
        inputs = [5, 9, 18]
        first = run_protocol(
            protocol, inputs, CorrelatedNoiseChannel(epsilon, rng=seed)
        )
        second = run_protocol(
            protocol, inputs, CorrelatedNoiseChannel(epsilon, rng=seed)
        )
        assert first.outputs == second.outputs
        assert (
            first.transcript.common_view()
            == second.transcript.common_view()
        )
