"""Property-based tests (hypothesis) for topology generators and specs.

The generator contract the sweep service leans on: every family builds a
simple undirected graph (symmetric adjacency, no self-loops, no
duplicates), seeded families are deterministic in their seed, and specs
survive JSON/label round trips unchanged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Topology, TopologySpec, parse_topology


def _assert_simple_symmetric(topology: Topology) -> None:
    assert topology.symmetric
    for node in range(topology.n):
        neighbors = topology.in_neighbors(node)
        assert node not in neighbors  # no self-loops
        assert len(set(neighbors)) == len(neighbors)  # no duplicates
        for neighbor in neighbors:
            assert node in topology.in_neighbors(neighbor)


class TestGeneratorProperties:
    @given(n=st.integers(min_value=1, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_complete_structure(self, n):
        topology = TopologySpec.of("complete", n=n).build()
        _assert_simple_symmetric(topology)
        assert topology.max_in_degree == max(0, n - 1)
        assert topology.edges == n * (n - 1)  # directed count

    @given(n=st.integers(min_value=3, max_value=80))
    @settings(max_examples=30, deadline=None)
    def test_ring_structure(self, n):
        topology = TopologySpec.of("ring", n=n).build()
        _assert_simple_symmetric(topology)
        assert all(
            topology.in_degree(node) == 2 for node in range(n)
        )

    @given(
        rows=st.integers(min_value=1, max_value=9),
        cols=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=30, deadline=None)
    def test_grid_structure(self, rows, cols):
        topology = TopologySpec.of("grid", rows=rows, cols=cols).build()
        _assert_simple_symmetric(topology)
        assert topology.n == rows * cols
        assert topology.max_in_degree <= 4
        # Exact 4-neighbor count: two directed edges per adjacent pair.
        assert topology.edges == 2 * (rows * (cols - 1) + cols * (rows - 1))

    @given(
        n=st.integers(min_value=1, max_value=120),
        radius=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_geometric_simple_and_seed_deterministic(self, n, radius, seed):
        spec = TopologySpec.of("geometric", n=n, radius=radius, seed=seed)
        topology = spec.build()
        _assert_simple_symmetric(topology)
        rebuilt = TopologySpec.of(
            "geometric", n=n, radius=radius, seed=seed
        ).build()
        assert topology.adjacency_lists() == rebuilt.adjacency_lists()

    @given(
        n=st.integers(min_value=6, max_value=100),
        m=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_scale_free_simple_and_degree_bounded(self, n, m, seed):
        spec = TopologySpec.of("scale-free", n=n, m=m, seed=seed)
        topology = spec.build()
        _assert_simple_symmetric(topology)
        # Each arriving node contributes at most m undirected edges.
        assert topology.edges <= 2 * m * n
        assert (
            topology.adjacency_lists()
            == TopologySpec.of(
                "scale-free", n=n, m=m, seed=seed
            ).build().adjacency_lists()
        )


class TestSpecProperties:
    @given(
        n=st.integers(min_value=1, max_value=10**6),
        radius=st.floats(min_value=0.001, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=50, deadline=None)
    def test_dict_and_label_round_trips(self, n, radius, seed):
        spec = TopologySpec.of("geometric", n=n, radius=radius, seed=seed)
        assert TopologySpec.from_dict(spec.to_dict()) == spec
        assert parse_topology(spec.label()) == spec

    @given(
        rows=st.integers(min_value=1, max_value=1000),
        cols=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_grid_spec_pins_size(self, rows, cols):
        spec = TopologySpec.of("grid", rows=rows, cols=cols)
        assert spec.size == rows * cols
        assert spec.with_n(rows * cols) is spec
