"""Property-based tests for channel statistics and analysis invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ProportionEstimate, wilson_interval
from repro.channels import (
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    SuppressionNoiseChannel,
)
from repro.errors import ConfigurationError
from repro.simulation.base import infer_noise_model

bit_rows = st.lists(
    st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=3),
    min_size=1,
    max_size=40,
)


class TestChannelStatsInvariants:
    @given(
        rows=bit_rows,
        epsilon=st.floats(min_value=0.0, max_value=0.45),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40)
    def test_correlated_counter_bounds(self, rows, epsilon, seed):
        channel = CorrelatedNoiseChannel(epsilon, rng=seed)
        for row in rows:
            channel.transmit(row)
        stats = channel.stats
        assert stats.rounds == len(rows)
        assert stats.beeps_sent == sum(sum(row) for row in rows)
        assert stats.or_ones == sum(1 for row in rows if any(row))
        # Correlated: at most one flip event per round, per direction.
        assert stats.flips_up <= stats.rounds - stats.or_ones
        assert stats.flips_down <= stats.or_ones
        assert 0.0 <= stats.empirical_flip_rate <= 1.0

    @given(
        rows=bit_rows,
        epsilon=st.floats(min_value=0.0, max_value=0.45),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30)
    def test_independent_counter_bounds(self, rows, epsilon, seed):
        channel = IndependentNoiseChannel(epsilon, rng=seed)
        for row in rows:
            channel.transmit(row)
        stats = channel.stats
        # Independent noise counts per-party receptions.
        assert stats.flips <= stats.rounds * 3

    @given(
        rows=bit_rows,
        epsilon=st.floats(min_value=0.0, max_value=0.45),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30)
    def test_suppression_never_flips_up(self, rows, epsilon, seed):
        channel = SuppressionNoiseChannel(epsilon, rng=seed)
        for row in rows:
            channel.transmit(row)
        assert channel.stats.flips_up == 0

    @given(rows=bit_rows)
    @settings(max_examples=20)
    def test_noiseless_never_flips(self, rows):
        channel = NoiselessChannel()
        for row in rows:
            channel.transmit(row)
        assert channel.stats.flips == 0

    @given(rows=bit_rows, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20)
    def test_snapshot_deltas_add_up(self, rows, seed):
        channel = CorrelatedNoiseChannel(0.3, rng=seed)
        midpoint = len(rows) // 2
        for row in rows[:midpoint]:
            channel.transmit(row)
        snapshot = channel.stats.snapshot()
        for row in rows[midpoint:]:
            channel.transmit(row)
        assert channel.stats.rounds == snapshot.rounds + (
            len(rows) - midpoint
        )
        assert channel.stats.flips >= snapshot.flips


class TestWilsonProperties:
    @given(
        successes=st.integers(min_value=0, max_value=200),
        extra=st.integers(min_value=0, max_value=200),
    )
    def test_interval_contains_point_estimate(self, successes, extra):
        trials = successes + extra
        if trials == 0:
            return
        low, high = wilson_interval(successes, trials)
        proportion = successes / trials
        assert low - 1e-12 <= proportion <= high + 1e-12
        assert 0.0 <= low <= high <= 1.0

    @given(
        successes=st.integers(min_value=0, max_value=50),
        trials=st.integers(min_value=1, max_value=50),
    )
    def test_estimate_str_is_stable(self, successes, trials):
        if successes > trials:
            return
        estimate = ProportionEstimate(successes, trials)
        assert f"{successes}/{trials}" in str(estimate)


class TestInferNoiseModelFailure:
    def test_scripted_channel_needs_explicit_model(self):
        from repro.channels import ScriptedChannel

        try:
            infer_noise_model(ScriptedChannel(flip_rounds=[0]))
        except ConfigurationError:
            pass
        else:  # pragma: no cover - would be a bug
            raise AssertionError(
                "scripted noise has no stochastic law to infer"
            )
