"""Property-based tests for the simulators and the lower-bound machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import NoiselessChannel
from repro.core import FunctionalProtocol, run_protocol
from repro.core.formal import FormalProtocol, NoiseModel
from repro.lowerbound.feasible import feasible_set
from repro.lowerbound.zeta import LowerBoundAnalyzer
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
    SimulationParameters,
)

# A random non-adaptive 2-party protocol given by a beep table: the party
# beeps table[round][party]; the output is the received transcript.
beep_tables = st.lists(
    st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=2),
    min_size=1,
    max_size=6,
)

# A random *adaptive* protocol: party beeps
# table[round][party] XOR (last received bit), coupling beeps to the
# transcript so replay correctness is genuinely exercised.
def _make_adaptive_protocol(table):
    length = len(table)

    def broadcast(i, x, prefix):
        base = table[len(prefix)][i]
        last = prefix[-1] if prefix else 0
        return base ^ last

    return FunctionalProtocol(
        n_parties=2,
        length=length,
        broadcast=broadcast,
        output=lambda i, x, received: tuple(received),
    )


def _make_plain_protocol(table):
    return FunctionalProtocol(
        n_parties=2,
        length=len(table),
        broadcast=lambda i, x, prefix: table[len(prefix)][i],
        output=lambda i, x, received: tuple(received),
    )


SIMULATORS = [
    RepetitionSimulator(SimulationParameters(repetitions=3)),
    ChunkCommitSimulator(
        SimulationParameters(repetitions=3, verification_repetitions=3)
    ),
    HierarchicalSimulator(
        SimulationParameters(repetitions=3, verification_repetitions=3)
    ),
    RewindSimulator(),
]


class TestNoiselessFaithfulness:
    """Over a noiseless channel every simulator must reproduce the direct
    execution's outputs exactly, for arbitrary protocols — the core
    simulation contract."""

    @given(table=beep_tables)
    @settings(max_examples=15, deadline=None)
    def test_plain_protocols(self, table):
        protocol = _make_plain_protocol(table)
        direct = run_protocol(protocol, [None, None], NoiselessChannel())
        for simulator in SIMULATORS:
            simulated = simulator.simulate(
                protocol, [None, None], NoiselessChannel()
            )
            assert simulated.outputs == direct.outputs, type(
                simulator
            ).__name__

    @given(table=beep_tables)
    @settings(max_examples=15, deadline=None)
    def test_adaptive_protocols(self, table):
        protocol = _make_adaptive_protocol(table)
        direct = run_protocol(protocol, [None, None], NoiselessChannel())
        for simulator in SIMULATORS:
            simulated = simulator.simulate(
                protocol, [None, None], NoiselessChannel()
            )
            assert simulated.outputs == direct.outputs, type(
                simulator
            ).__name__


class TestFeasibleSetProperties:
    def _protocol(self):
        # 2 parties, inputs in {0..3}; party beeps bit (x >> round) & 1.
        return FormalProtocol(
            n_parties=2,
            length=2,
            input_spaces=[range(4)] * 2,
            broadcast=lambda i, x, prefix: (x >> len(prefix)) & 1,
            output=lambda pi: tuple(pi),
        )

    @given(
        prefix=st.lists(
            st.integers(min_value=0, max_value=1), min_size=0, max_size=2
        )
    )
    def test_monotone_under_extension(self, prefix):
        """Extending the transcript can only shrink feasible sets."""
        protocol = self._protocol()
        for party in range(2):
            longer = feasible_set(protocol, party, prefix)
            shorter = feasible_set(protocol, party, prefix[:-1] or ())
            assert set(longer) <= set(shorter)

    @given(
        prefix=st.lists(
            st.integers(min_value=0, max_value=1), min_size=0, max_size=2
        )
    )
    def test_ones_do_not_constrain(self, prefix):
        """Replacing any 0 with a 1 in the prefix grows (or keeps) the
        feasible set: only zeros rule inputs out."""
        protocol = self._protocol()
        all_ones = [1] * len(prefix)
        for party in range(2):
            constrained = feasible_set(protocol, party, prefix)
            free = feasible_set(protocol, party, all_ones)
            assert set(constrained) <= set(free)


class TestZetaMassConservation:
    @given(
        up=st.floats(min_value=0.0, max_value=0.45),
        down=st.floats(min_value=0.0, max_value=0.45),
    )
    @settings(max_examples=10, deadline=None)
    def test_total_probability_is_one(self, up, down):
        protocol = FormalProtocol(
            n_parties=2,
            length=2,
            input_spaces=[(0, 1)] * 2,
            broadcast=lambda i, x, prefix: x if len(prefix) == i else 0,
            output=lambda pi: tuple(pi),
        )
        analyzer = LowerBoundAnalyzer(
            protocol, NoiseModel(up=up, down=down)
        )
        summary = analyzer.summary()
        assert abs(summary.total_mass - 1.0) < 1e-9
