"""Property-based tests for batch-token equivalence.

The engine contract: a party yielding ``Burst(b, k)`` / ``Silence(k)`` is
*bitwise identical* to the same party yielding ``b`` for ``k`` consecutive
rounds — transcript columns, outputs, ``beeps_per_party`` and channel-stats
deltas all match, for every channel family, both ``record_sent`` modes, and
both runner backends.  Hypothesis generates random per-party mixes of
plain-bit rounds and batch tokens (all parties agreeing on the total round
count, as the lock-step model demands) and random channel seeds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import (
    BudgetedAdversaryChannel,
    BurstNoiseChannel,
    CorrectingAdversaryChannel,
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    ScriptedChannel,
    SharedFlipReductionChannel,
    SuppressionNoiseChannel,
)
from repro import SweepSpec, run_sweep_point
from repro.core import Burst, Party, Protocol, Silence, run_protocol
from repro.parallel import (
    ChannelSpec,
    ProcessPoolRunner,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.simulation import ChunkCommitSimulator, RewindSimulator
from repro.simulation.primitives import batch_tokens
from repro.tasks import ParityTask

CHANNEL_FACTORIES = {
    "noiseless": lambda seed: NoiselessChannel(),
    "correlated": lambda seed: CorrelatedNoiseChannel(0.15, rng=seed),
    "one-sided": lambda seed: OneSidedNoiseChannel(1 / 3, rng=seed),
    "suppression": lambda seed: SuppressionNoiseChannel(0.2, rng=seed),
    "independent": lambda seed: IndependentNoiseChannel(0.15, rng=seed),
    "burst": lambda seed: BurstNoiseChannel(0.01, 0.5, 0.05, 0.2, rng=seed),
    "reduction": lambda seed: SharedFlipReductionChannel(rng=seed),
    "correcting": lambda seed: CorrectingAdversaryChannel(0.25, rng=seed),
    "budgeted": lambda seed: BudgetedAdversaryChannel(5, rng=seed),
    "scripted": lambda seed: ScriptedChannel([2, 5, 9]),
}


class _StepParty(Party):
    """Replays ``('bit', b)`` / ('burst', b, k)`` / ('silence', k)`` steps
    and outputs everything heard plus how it heard it."""

    def __init__(self, steps):
        self.steps = steps

    def run(self):
        heard = []
        for step in self.steps:
            kind = step[0]
            if kind == "bit":
                heard.append((yield step[1]))
            elif kind == "burst":
                heard.extend((yield Burst(step[1], step[2])))
            else:
                heard.extend((yield Silence(step[1])))
        return tuple(heard)


class _StepProtocol(Protocol):
    def __init__(self, scripts):
        super().__init__(len(scripts))
        self.scripts = scripts

    def create_parties(self, inputs, shared_seed=None):
        return [_StepParty(steps) for steps in self.scripts]


def _desugar_steps(steps):
    """The per-round ('bit', b) expansion of a step list."""
    flat = []
    for step in steps:
        if step[0] == "bit":
            flat.append(("bit", step[1]))
        elif step[0] == "burst":
            flat.extend([("bit", step[1])] * step[2])
        else:
            flat.extend([("bit", 0)] * step[1])
    return flat


@st.composite
def token_scripts(draw):
    """A party count and per-party step lists covering one shared total
    round count, with a random mix of bits and tokens per party."""
    n = draw(st.integers(min_value=1, max_value=5))
    total = draw(st.integers(min_value=1, max_value=24))
    scripts = []
    for _ in range(n):
        steps = []
        remaining = total
        while remaining > 0:
            kind = draw(st.sampled_from(["bit", "burst", "silence"]))
            if kind == "bit":
                steps.append(("bit", draw(st.integers(0, 1))))
                remaining -= 1
            else:
                count = draw(st.integers(min_value=1, max_value=remaining))
                if kind == "burst":
                    steps.append(("burst", draw(st.integers(0, 1)), count))
                else:
                    steps.append(("silence", count))
                remaining -= count
        scripts.append(steps)
    return scripts


def _assert_bitwise_equal(tokened, desugared):
    assert tokened.outputs == desugared.outputs
    assert tokened.rounds == desugared.rounds
    assert tokened.beeps_per_party == desugared.beeps_per_party
    assert tokened.channel_stats == desugared.channel_stats
    token_t, plain_t = tokened.transcript, desugared.transcript
    assert len(token_t) == len(plain_t)
    assert token_t.or_values() == plain_t.or_values()
    assert token_t.noisy_count == plain_t.noisy_count
    assert token_t.noise_positions() == plain_t.noise_positions()
    for party in range(token_t.n_parties):
        assert token_t.view(party) == plain_t.view(party)


class TestTokenDesugarEquivalence:
    @given(
        scripts=token_scripts(),
        channel_name=st.sampled_from(sorted(CHANNEL_FACTORIES)),
        seed=st.integers(min_value=0, max_value=2**16),
        record_sent=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_engine_equivalence(
        self, scripts, channel_name, seed, record_sent
    ):
        make_channel = CHANNEL_FACTORIES[channel_name]
        inputs = [None] * len(scripts)
        tokened = run_protocol(
            _StepProtocol(scripts),
            inputs,
            make_channel(seed),
            record_sent=record_sent,
        )
        desugared = run_protocol(
            _StepProtocol([_desugar_steps(s) for s in scripts]),
            inputs,
            make_channel(seed),
            record_sent=record_sent,
        )
        _assert_bitwise_equal(tokened, desugared)
        if record_sent:
            for party in range(len(scripts)):
                assert tokened.transcript.sent_bits(
                    party
                ) == desugared.transcript.sent_bits(party)

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        epsilon=st.sampled_from([0.0, 0.05, 0.15]),
    )
    @settings(max_examples=10, deadline=None)
    def test_simulation_equivalence(self, seed, epsilon):
        # The primitives' token emission end to end through a simulator.
        task = ParityTask(4)
        inputs = [1, 0, 1, 0]

        def simulate():
            return ChunkCommitSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                CorrelatedNoiseChannel(epsilon, rng=seed),
                shared_seed=seed + 1,
            )

        tokened = simulate()
        with batch_tokens(False):
            desugared = simulate()
        _assert_bitwise_equal(tokened, desugared)


class TestTokenRunnerBackends:
    def test_sweep_points_identical_across_backends_and_modes(self):
        # Token mode across both runner backends, and serial desugared:
        # all three sweep points must be identical.  (Pool workers run in
        # fresh interpreters where the primitives default to token mode.)
        task = ParityTask(4)
        executor = SimulationExecutor(
            task=task,
            channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.05),
            simulator=SimulatorSpec.of(ChunkCommitSimulator),
        )
        spec = SweepSpec(trials=4, seed=17)
        serial_tokens = run_sweep_point(task, executor, spec)
        with batch_tokens(False):
            serial_plain = run_sweep_point(task, executor, spec)
        with ProcessPoolRunner(workers=2) as runner:
            pool_tokens = run_sweep_point(
                task, executor, SweepSpec(trials=4, seed=17, runner=runner)
            )
        assert serial_tokens.to_dict() == serial_plain.to_dict()
        assert serial_tokens.to_dict() == pool_tokens.to_dict()

    def test_serial_runner_explicit(self):
        task = ParityTask(3)
        executor = SimulationExecutor(
            task=task,
            channel=ChannelSpec.of(SuppressionNoiseChannel, 0.1),
            simulator=SimulatorSpec.of(RewindSimulator),
        )
        spec_a = SweepSpec(trials=3, seed=5, runner=SerialRunner())
        spec_b = SweepSpec(trials=3, seed=5, runner=SerialRunner())
        tokens = run_sweep_point(task, executor, spec_a)
        with batch_tokens(False):
            plain = run_sweep_point(task, executor, spec_b)
        assert tokens.to_dict() == plain.to_dict()
