"""Property-based tests for the columnar transcript storage.

The columns are an internal representation; the contract is that every
lazily-materialized :class:`RoundRecord` round-trips exactly what was
appended — sent bits, received word, true OR, and noisy flag — no matter
how shared-bit and word-path appends, recorded and unrecorded rounds, are
interleaved.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transcript import RoundRecord, Transcript

bits = st.integers(min_value=0, max_value=1)


@st.composite
def transcript_rounds(draw):
    """A party count plus a mixed batch of appended rounds.

    Each round is (sent | None, or_value, received) where received is
    either a shared int (fast path) or a full word (word path).
    """
    n = draw(st.integers(min_value=1, max_value=6))
    n_rounds = draw(st.integers(min_value=0, max_value=30))
    rounds = []
    for _ in range(n_rounds):
        sent = draw(
            st.one_of(
                st.none(),
                st.lists(bits, min_size=n, max_size=n),
            )
        )
        or_value = 1 if sent and any(sent) else draw(bits)
        if draw(st.booleans()):
            received = draw(bits)  # shared fast path
        else:
            received = tuple(
                draw(st.lists(bits, min_size=n, max_size=n))
            )
        rounds.append((sent, or_value, received))
    return n, rounds


class TestRoundRecordRoundTrip:
    @given(data=transcript_rounds())
    @settings(max_examples=200)
    def test_materialized_records_round_trip(self, data):
        n, rounds = data
        transcript = Transcript(n)
        expected = []
        for sent, or_value, received in rounds:
            transcript.append_raw(sent, or_value, received)
            word = (
                (received,) * n
                if isinstance(received, int)
                else tuple(received)
            )
            expected.append(
                RoundRecord(
                    sent=tuple(sent) if sent is not None else None,
                    or_value=or_value,
                    received=word,
                )
            )

        assert len(transcript) == len(expected)
        # Indexing, iteration and slicing all materialize the same records.
        assert list(transcript) == expected
        assert transcript[:] == expected
        for index, record in enumerate(expected):
            materialized = transcript[index]
            assert materialized.sent == record.sent
            assert materialized.received == record.received
            assert materialized.or_value == record.or_value
            assert materialized.noisy == record.noisy

    @given(data=transcript_rounds())
    @settings(max_examples=100)
    def test_column_accessors_agree_with_records(self, data):
        n, rounds = data
        transcript = Transcript(n)
        for sent, or_value, received in rounds:
            transcript.append_raw(sent, or_value, received)

        records = list(transcript)
        assert transcript.or_values() == tuple(
            r.or_value for r in records
        )
        assert transcript.noisy_count == sum(r.noisy for r in records)
        assert transcript.noise_positions() == tuple(
            i for i, r in enumerate(records) if r.noisy
        )
        for party in range(n):
            assert transcript.view(party) == tuple(
                r.received[party] for r in records
            )
