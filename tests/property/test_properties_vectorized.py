"""Property-based tests of the vectorized backend's building blocks.

The collapsed simulations rest on three representational claims, each
checked here over randomized instances:

1. **Packing** — ``pack_rows``/``unpack_rows`` round-trip the trial×round
   bit-matrix, popcounts survive packing, and ``mask_int`` produces the
   scalar ML decoder's exact integer-mask packing (byte per position,
   big-endian).
2. **Noise streams** — a :class:`FlipStream` (and every row of a
   :class:`BatchFlips` prefetch) serves the same flip indicators, in the
   same draw order, as the scalar channel's ``random()`` comparisons —
   including mid-stream handoff from a partially consumed generator.
3. **Decoding** — :class:`VectorizedMLDecoder` agrees with the scalar
   memoized :class:`MLDecoder` symbol-for-symbol on random codebooks,
   noise models and received words, across the finite-weights fast path,
   the ``-inf``-guarded path, and the min-distance fallback regime.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import (
    CorrelatedNoiseChannel,
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.coding import GreedyRandomCode, MLDecoder
from repro.coding.ml import _word_to_int
from repro.core.formal import NoiseModel
from repro.vectorized import (
    BatchFlips,
    FlipStream,
    VectorizedMLDecoder,
    bits_from_mask,
    mask_int,
    numpy_stream,
    pack_rows,
    popcount_rows,
    unpack_rows,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


# ----------------------------------------------------------------------
# 1. Packed bit-matrices
# ----------------------------------------------------------------------


@given(seed=seeds, rows=st.integers(1, 7), columns=st.integers(1, 80))
@settings(max_examples=60, deadline=None)
def test_pack_unpack_round_trip(seed, rows, columns):
    rng = np.random.RandomState(seed)
    bits = (rng.random_sample((rows, columns)) < 0.4).astype(np.uint8)
    packed = pack_rows(bits)
    assert packed.shape == (rows, -(-columns // 8))
    assert (unpack_rows(packed, columns) == bits).all()
    assert (popcount_rows(packed) == bits.sum(axis=1)).all()


@given(seed=seeds, length=st.integers(1, 48))
@settings(max_examples=60, deadline=None)
def test_mask_int_matches_scalar_word_packing(seed, length):
    rng = np.random.RandomState(seed)
    bits = (rng.random_sample(length) < 0.5).astype(np.uint8)
    mask = mask_int(bits)
    assert mask == _word_to_int([int(bit) for bit in bits])
    assert (bits_from_mask(mask, length) == bits).all()


# ----------------------------------------------------------------------
# 2. Noise streams vs scalar channels
# ----------------------------------------------------------------------


@given(seed=seeds, draws=st.integers(1, 400))
@settings(max_examples=40, deadline=None)
def test_numpy_stream_continues_random_random(seed, draws):
    scalar = random.Random(seed)
    scalar.random()  # consume mid-stream before the transfer
    stream = numpy_stream(scalar)
    expected = [scalar.random() for _ in range(draws)]
    assert list(stream.random_sample(draws)) == expected


@given(
    seed=seeds,
    epsilon=st.sampled_from([0.0, 0.1, 0.3, 0.5]),
    pattern=st.lists(st.integers(0, 1), min_size=1, max_size=120),
)
@settings(max_examples=60, deadline=None)
def test_flipstream_matches_correlated_channel(seed, epsilon, pattern):
    """Round for round, FlipStream-reconstructed delivery equals the
    scalar correlated channel's (which draws every round)."""
    channel = CorrelatedNoiseChannel(epsilon, rng=seed)
    flips = FlipStream(channel._rng, epsilon)
    for or_value in pattern:
        expected = channel.transmit_shared(or_value, beeps=or_value)
        assert (or_value ^ flips.take1()) == expected


@given(seed=seeds, pattern=st.lists(st.integers(0, 1), min_size=1, max_size=120))
@settings(max_examples=40, deadline=None)
def test_flipstream_matches_one_sided_and_suppression(seed, pattern):
    """The conditional-draw channels (one-sided: silent rounds only,
    suppression: beeping rounds only) consume the same stream."""
    epsilon = 0.3
    one_sided = OneSidedNoiseChannel(epsilon, rng=seed)
    flips = FlipStream(one_sided._rng, epsilon)
    for or_value in pattern:
        expected = one_sided.transmit_shared(or_value, beeps=or_value)
        got = 1 if or_value else flips.take1()
        assert got == expected

    suppression = SuppressionNoiseChannel(epsilon, rng=seed)
    flips = FlipStream(suppression._rng, epsilon)
    for or_value in pattern:
        expected = suppression.transmit_shared(or_value, beeps=or_value)
        got = (0 if flips.take1() else 1) if or_value else 0
        assert got == expected


@given(seed=seeds, trials=st.integers(1, 6), columns=st.integers(0, 70))
@settings(max_examples=40, deadline=None)
def test_batchflips_rows_match_per_trial_streams(seed, trials, columns):
    """Every row of a batched prefetch serves the identical indicator
    sequence as a freshly transferred per-trial FlipStream — across the
    prefetch boundary."""
    epsilon = 0.25
    total = columns + 13  # cross the prefetch boundary
    rngs = [random.Random(seed + index) for index in range(trials)]
    batch = BatchFlips(rngs, epsilon, columns=columns)
    for index in range(trials):
        reference = FlipStream(random.Random(seed + index), epsilon)
        row = batch.stream(index)
        for _ in range(total):
            assert row.take1() == reference.take1()


@given(seed=seeds, chunks=st.lists(st.integers(1, 40), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_flipstream_access_patterns_agree(seed, chunks):
    """take1 / count / take are three views of one stream: consuming the
    same windows through any of them yields consistent indicators."""
    epsilon = 0.35
    reference = FlipStream(random.Random(seed), epsilon)
    counted = FlipStream(random.Random(seed), epsilon)
    taken = FlipStream(random.Random(seed), epsilon)
    for rounds in chunks:
        singles = [reference.take1() for _ in range(rounds)]
        assert counted.count(rounds) == sum(singles)
        assert list(taken.take(rounds)) == singles


# ----------------------------------------------------------------------
# 3. Vectorized ML decode vs the scalar memoized decoder
# ----------------------------------------------------------------------


def _random_word(rng, length):
    return [rng.randint(0, 1) for _ in range(length)]


@given(
    seed=seeds,
    num_symbols=st.integers(2, 12),
    up=st.sampled_from([0.0, 0.05, 0.2, 0.45]),
    down=st.sampled_from([0.0, 0.05, 0.2, 0.45]),
)
@settings(max_examples=60, deadline=None)
def test_vectorized_decode_matches_scalar(seed, num_symbols, up, down):
    """Symbol-for-symbol agreement on random received words, covering the
    finite path (up, down > 0), the guarded path (a zero probability
    makes some transitions forbidden) and the min-distance fallback
    (words forbidden under every codeword)."""
    code = GreedyRandomCode(num_symbols, 24, seed=seed)
    noise = NoiseModel(up=up, down=down)
    scalar = MLDecoder(code, noise)
    vectorized = VectorizedMLDecoder(code, noise)
    rng = random.Random(seed ^ 0xABCDEF)
    words = [_random_word(rng, code.codeword_length) for _ in range(20)]
    # Include every codeword and near-codewords (single-bit corruptions).
    for symbol in range(num_symbols):
        word = list(code.encode(symbol))
        words.append(word)
        corrupted = list(word)
        corrupted[rng.randrange(len(word))] ^= 1
        words.append(corrupted)
    for word in words:
        expected = scalar.decode(tuple(word))
        array = np.array(word, dtype=np.uint8)
        assert vectorized.decode(array) == expected
        # Memoized second decode agrees too.
        assert vectorized.decode(array) == expected
    matrix = np.array(words, dtype=np.uint8)
    assert list(vectorized.decode_batch(matrix)) == [
        scalar.decode(tuple(word)) for word in words
    ]
