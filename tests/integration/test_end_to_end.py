"""Integration tests: simulators × tasks × channels, end to end."""

import pytest

from repro.analysis import estimate_success
from repro.channels import (
    CorrelatedNoiseChannel,
    OneSidedNoiseChannel,
    SharedFlipReductionChannel,
    SuppressionNoiseChannel,
)
from repro.simulation import (
    ChunkCommitSimulator,
    RepetitionSimulator,
    RewindSimulator,
    SimulationParameters,
)
from repro.tasks import (
    BitExchangeTask,
    InputSetTask,
    MaxIdTask,
    OrTask,
    ParityTask,
)


def _executor(task, simulator, channel_factory):
    def run(inputs, trial_seed):
        channel = channel_factory(trial_seed)
        return simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )

    return run


@pytest.mark.parametrize(
    "task",
    [
        InputSetTask(5),
        ParityTask(6),
        BitExchangeTask(4),
        MaxIdTask(4, id_bits=5),
        OrTask(6),
    ],
    ids=["input-set", "parity", "bit-exchange", "max-id", "or"],
)
class TestAllTasksAllSimulators:
    def test_repetition_over_two_sided(self, task):
        point = estimate_success(
            task,
            _executor(
                task,
                RepetitionSimulator(),
                lambda seed: CorrelatedNoiseChannel(0.1, rng=seed),
            ),
            trials=15,
            seed=11,
        )
        assert point.success.value >= 0.85

    def test_chunk_commit_over_two_sided(self, task):
        point = estimate_success(
            task,
            _executor(
                task,
                ChunkCommitSimulator(),
                lambda seed: CorrelatedNoiseChannel(0.1, rng=seed),
            ),
            trials=15,
            seed=13,
        )
        assert point.success.value >= 0.85

    def test_rewind_over_suppression(self, task):
        point = estimate_success(
            task,
            _executor(
                task,
                RewindSimulator(),
                lambda seed: SuppressionNoiseChannel(0.1, rng=seed),
            ),
            trials=15,
            seed=17,
        )
        assert point.success.value >= 0.85


class TestChunkCommitOverReductionChannel:
    """The A.1.2 reduction channel behaves like two-sided ε = 1/4 — the
    chunk simulator configured for that law succeeds over it."""

    def test_success(self):
        task = InputSetTask(4)
        simulator = ChunkCommitSimulator(
            SimulationParameters(code_rate_constant=20.0)
        )
        point = estimate_success(
            task,
            _executor(
                task,
                simulator,
                lambda seed: SharedFlipReductionChannel(rng=seed),
            ),
            trials=10,
            seed=23,
        )
        assert point.success.value >= 0.7


class TestNoiseHurtsUnprotectedProtocols:
    """Sanity direction check: the raw noiseless protocol fails badly
    over noise while simulators restore correctness."""

    def test_raw_protocol_fails(self):
        from repro.core import run_protocol

        task = InputSetTask(5)

        def raw(inputs, trial_seed):
            channel = CorrelatedNoiseChannel(0.2, rng=trial_seed)
            return run_protocol(
                task.noiseless_protocol(), inputs, channel
            )

        point = estimate_success(task, raw, trials=30, seed=29)
        assert point.success.value <= 0.3

    def test_simulator_restores_correctness(self):
        task = InputSetTask(5)
        point = estimate_success(
            task,
            _executor(
                task,
                ChunkCommitSimulator(),
                lambda seed: CorrelatedNoiseChannel(0.2, rng=seed),
            ),
            trials=15,
            seed=31,
        )
        assert point.success.value >= 0.8


class TestOverheadAccounting:
    def test_chunk_overhead_matches_report(self):
        task = InputSetTask(6)
        executor = _executor(
            task,
            ChunkCommitSimulator(),
            lambda seed: CorrelatedNoiseChannel(0.1, rng=seed),
        )
        inputs = task.sample_inputs(__import__("random").Random(0))
        result = executor(inputs, 0)
        report = result.metadata["report"]
        assert report.simulated_rounds == result.rounds
        assert report.overhead == result.rounds / 12

    def test_rewind_overhead_is_fixed(self):
        """The rewind scheme's round count is input- and noise-independent
        (a fixed budget) — the structural 'constant overhead' claim."""
        task = InputSetTask(5)
        simulator = RewindSimulator()
        rounds = set()
        import random as _random

        for seed in range(5):
            inputs = task.sample_inputs(_random.Random(seed))
            channel = SuppressionNoiseChannel(0.15, rng=seed)
            result = simulator.simulate(
                task.noiseless_protocol(), inputs, channel
            )
            rounds.add(result.rounds)
        assert len(rounds) == 1


class TestAsymmetryEndToEnd:
    """§1.1: suppression noise is cheap to defeat, upward noise is not."""

    def test_rewind_succeeds_down_fails_up(self):
        task = InputSetTask(6)
        simulator = RewindSimulator()
        down = estimate_success(
            task,
            _executor(
                task,
                simulator,
                lambda seed: SuppressionNoiseChannel(0.2, rng=seed),
            ),
            trials=20,
            seed=37,
        )
        up = estimate_success(
            task,
            _executor(
                task,
                simulator,
                lambda seed: OneSidedNoiseChannel(0.2, rng=seed),
            ),
            trials=20,
            seed=37,
        )
        assert down.success.value >= 0.9
        assert up.success.value <= 0.5

    def test_chunk_commit_handles_upward_noise(self):
        """The owners machinery is exactly what fixes the hard direction."""
        task = InputSetTask(6)
        point = estimate_success(
            task,
            _executor(
                task,
                ChunkCommitSimulator(),
                lambda seed: OneSidedNoiseChannel(0.2, rng=seed),
            ),
            trials=15,
            seed=41,
        )
        assert point.success.value >= 0.85
