"""Crash-safety integration: SIGTERM a live ``repro sweep run``, resume,
and land bitwise on the uninterrupted result.

The unit suite injects exceptions to interrupt the driver at exact
points (both runner backends); this test kills a real subprocess at an
*arbitrary* instant — whatever the OS delivers — so it exercises the
atomic-rename checkpointing under genuinely unplanned death: no
``finally`` blocks, no flushes, the process just stops.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.sweep import run_sweep
from repro.service import ResultStore, SweepGrid, run_sweep_resumable

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="POSIX signals required"
)

REPO_ROOT = Path(__file__).resolve().parents[2]

# Big enough that the sweep takes a few seconds (a wide kill window),
# small enough that the post-kill resume stays cheap.
GRID = SweepGrid(
    task="parity", ns=(4, 5, 6, 7, 8, 9), trials=8, seed=3, simulator="chunk"
)


def _sweep_cmd(cache_dir: Path) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        "run",
        "--task",
        GRID.task,
        "--ns",
        *[str(n) for n in GRID.ns],
        "--trials",
        str(GRID.trials),
        "--seed",
        str(GRID.seed),
        "--simulator",
        GRID.simulator,
        "--cache-dir",
        str(cache_dir),
    ]


def test_sigterm_mid_sweep_then_resume_bitwise_equal(tmp_path):
    cache_dir = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        _sweep_cmd(cache_dir),
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    store = ResultStore(cache_dir)
    try:
        # Wait until at least one point is checkpointed, then kill the
        # process wherever it happens to be.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if proc.poll() is not None or any(True for _ in store.keys()):
                break
            time.sleep(0.05)
        else:
            pytest.fail("sweep never checkpointed a point")
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
            assert proc.returncode != 0  # it really was killed mid-run
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)

    # Resume in-process: cached points are reused (when the kill landed
    # before completion there is a missing tail to compute), and the
    # final curve is bitwise the uninterrupted one.
    resumed = run_sweep_resumable(
        GRID.ns,
        GRID.build_point,
        GRID.spec(),
        store=store,
        workload=GRID.workload(),
    )
    cold = run_sweep(GRID.ns, GRID.build_point, GRID.spec())
    assert [p.to_dict() for p in resumed] == [p.to_dict() for p in cold]
    assert store.counters["hits"] >= 1  # the pre-kill checkpoints served
